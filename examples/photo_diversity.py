"""Photo search scenario: diversified image retrieval (Section 6).

A content-based image search over edge-histogram descriptors should
return pictures *similar to the query yet different from each other*.
This example runs the paper's k-diversification query for several values
of the relevance/diversity weight lambda and shows how the result set and
the distributed cost change — including the cost gap between RIPPLE and
the CAN-flooding baseline.

Run with::

    python examples/photo_diversity.py
"""

import numpy as np

from repro import MidasOverlay
from repro.baselines.div_baseline import FloodingDiversifier
from repro.data.mirflickr import mirflickr_dataset
from repro.overlays.can import CanOverlay
from repro.queries.diversify import (DiversificationObjective,
                                     RippleDiversifier, greedy_diversify)


def main() -> None:
    rng = np.random.default_rng(9)
    photos = mirflickr_dataset(rng, 8_000)
    query = photos[123]
    print(f"collection: {len(photos)} edge-histogram descriptors; "
          f"query photo = {np.round(query, 3)}\n")

    midas = MidasOverlay(dims=5, seed=11, join_policy="data",
                         split_rule="midpoint")
    midas.load(photos)
    midas.grow_to(256)
    can = CanOverlay(dims=5, seed=11, join_policy="data")
    can.load(photos)
    can.grow_to(256)

    for lam in (0.2, 0.5, 0.8):
        objective = DiversificationObjective(query, lam, p=1)
        ripple = RippleDiversifier(midas, midas.random_peer(), r=0)
        result = greedy_diversify(ripple, objective, k=6)
        members, value = result.answer
        baseline = FloodingDiversifier(can, can.random_peer())
        base_result = greedy_diversify(baseline, objective, k=6)

        assert sorted(base_result.answer[0]) == sorted(members), \
            "both engines follow the same greedy steps"
        rel = np.mean([np.abs(np.array(m) - query).sum() for m in members])
        pairwise = [np.abs(np.array(a) - np.array(b)).sum()
                    for i, a in enumerate(members) for b in members[i + 1:]]
        print(f"lambda={lam}:  f={value:+.3f}  "
              f"avg relevance dist={rel:.3f}  "
              f"min pairwise dist={min(pairwise):.3f}")
        print(f"  ripple-fast: {result.stats.latency} hops, "
              f"{result.stats.processed} peer visits")
        print(f"  baseline:    {base_result.stats.latency} hops, "
              f"{base_result.stats.processed} peer visits "
              f"({base_result.stats.processed / result.stats.processed:.1f}x"
              " the load)\n")


if __name__ == "__main__":
    main()
