"""Vertical top-k middleware: FA vs TA vs TPUT vs KLEE (Section 2.1).

The other distribution axis: each peer holds *one attribute of every
tuple* instead of every attribute of some tuples.  The classical
middleware algorithms interact with the attribute peers through sorted
and random accesses; this example compares their access costs on data
with different correlation structure.

Run with::

    python examples/vertical_middleware.py
"""

import numpy as np

from repro.vertical import (VerticalNetwork, fagin, klee,
                            threshold_algorithm, tput)


def make_data(kind: str, n: int, m: int, rng) -> np.ndarray:
    if kind == "independent":
        return rng.random((n, m))
    if kind == "correlated":
        base = rng.random((n, 1))
        return np.clip(base + rng.normal(0, 0.05, (n, m)), 0, 1)
    base = rng.random((n, 1))
    columns = [base if j % 2 == 0 else 1 - base for j in range(m)]
    return np.clip(np.hstack(columns) + rng.normal(0, 0.05, (n, m)), 0, 1)


def main() -> None:
    rng = np.random.default_rng(4)
    k = 10
    for kind in ("independent", "correlated", "anticorrelated"):
        data = make_data(kind, 5_000, 3, rng)
        reference = VerticalNetwork(data).reference_topk(k, [1, 1, 1])
        print(f"--- {kind} attributes "
              f"(true top-{k} score {reference[0][0]:.3f}) ---")
        for name, algorithm in [("FA  ", fagin),
                                ("TA  ", threshold_algorithm),
                                ("TPUT", tput),
                                ("KLEE", klee)]:
            network = VerticalNetwork(data)
            result = algorithm(network, k)
            exact = ([s for s, _ in result.answer]
                     == [s for s, _ in reference])
            stats = result.stats
            print(f"  {name} exact={str(exact):5s} "
                  f"sorted={stats.sorted_accesses:6d} "
                  f"random={stats.random_accesses:6d} "
                  f"rounds={stats.rounds}")
        print()


if __name__ == "__main__":
    main()
