"""Anatomy of a MIDAS overlay: the paper's Figures 1-3 in ASCII.

* Figure 1 — the virtual k-d tree, peer identifiers, zones, and the links
  of one peer.
* Figure 2 — the boundary identifier patterns of Section 5.2.
* Figure 3 — the wavefront of a fast skyline query, hop by hop.

Run with::

    python examples/midas_anatomy.py
"""

import numpy as np

from repro import MidasOverlay
from repro.core import framework
from repro.overlays.patterns import matches_any_pattern
from repro.queries.skyline import SkylineHandler


def zone_string(rect) -> str:
    lo = ", ".join(f"{v:.2f}" for v in rect.lo)
    hi = ", ".join(f"{v:.2f}" for v in rect.hi)
    return f"[{lo}] - [{hi}]"


def main() -> None:
    overlay = MidasOverlay(dims=2, size=12, seed=5,
                           link_policy="boundary")

    # --- Figure 1: ids, zones, links --------------------------------------
    print("=== Figure 1: the virtual k-d tree ===")
    peers = sorted(overlay.peers(), key=lambda p: p.path)
    for peer in peers:
        marker = "*" if matches_any_pattern(peer.path, 2) else " "
        print(f"  id={peer.id_string():8s}{marker} "
              f"zone {zone_string(peer.zone)}")
    print("  (* = identifier matches a boundary pattern, Section 5.2)")

    some = peers[0]
    print(f"\nlinks of peer {some.id_string()} "
          f"(one per sibling subtree depth):")
    for i, link in enumerate(some.links(), 1):
        print(f"  link {i}: -> peer {link.peer.id_string():8s} "
              f"region {zone_string(link.region.rect)}")

    # --- Figure 2: boundary patterns ---------------------------------------
    print("\n=== Figure 2: boundary-pattern identifiers ===")
    print("2-d patterns: p_h = (X0)*X?  and  p_v = (0X)*0?")
    for peer in peers:
        if matches_any_pattern(peer.path, 2):
            print(f"  {peer.id_string() or '(root)'}: "
                  f"zone touches a lower domain boundary "
                  f"at {zone_string(peer.zone)}")

    # --- Figure 3: fast skyline wavefront ----------------------------------
    print("\n=== Figure 3: fast skyline processing, hop by hop ===")
    data = np.random.default_rng(0).random((240, 2)) * 0.999
    overlay.load(data)

    hops: list[tuple[int, str]] = []
    original = framework._process

    def traced(ctx, handler, peer, state, restriction, r, **kwargs):
        depth = kwargs.pop("_depth", 0)
        hops.append((depth, peer.id_string()))
        return original(ctx, handler, peer, state, restriction, r, **kwargs)

    # wrap to track the recursion depth via the call structure
    def depth_tracking(ctx, handler, peer, state, restriction, r, **kwargs):
        hops.append((len(ctx.processed), peer.id_string()))
        return original(ctx, handler, peer, state, restriction, r, **kwargs)

    framework._process = depth_tracking
    try:
        result = framework.run_fast(peers[-1],
                                    SkylineHandler(2),
                                    restriction=overlay.domain())
    finally:
        framework._process = original

    print(f"query initiated at peer {peers[-1].id_string()}; "
          f"visit order (breadth across branches):")
    for order, peer_id in hops:
        flag = "*" if matches_any_pattern(
            tuple(int(b) for b in peer_id), 2) else " "
        print(f"  visit {order + 1:2d}: peer {peer_id or '(root)':8s}{flag}")
    print(f"\nskyline of {len(data)} tuples: {len(result.answer)} points, "
          f"{result.stats.latency} hops of latency, "
          f"{result.stats.processed}/{len(overlay)} peers visited")


if __name__ == "__main__":
    main()
