"""RIPPLE is overlay-generic (Section 3.1): one query, four DHTs.

The same top-k handler — untouched — runs over MIDAS (k-d tree regions),
Chord (finger-arc regions on a ring), CAN (pyramidal frustum regions)
and the rainbow skip graph (tower/skip-level arcs, constant degree),
because each overlay merely assigns its links regions that partition the
domain.  Only the cost profiles differ.

Run with::

    python examples/overlay_genericity.py
"""

import numpy as np

from repro import MidasOverlay, NearestScore, run_ripple
from repro.overlays.can import CanOverlay
from repro.overlays.chord import ChordOverlay
from repro.overlays.skipgraph import SkipGraphOverlay
from repro.queries.topk import TopKHandler, topk_reference


def main() -> None:
    rng = np.random.default_rng(21)
    k = 5

    # --- MIDAS: multidimensional, exact regions, strict single-visit -----
    data2d = rng.random((4_000, 2)) * 0.999
    midas = MidasOverlay(dims=2, seed=1, join_policy="data")
    midas.load(data2d)
    midas.grow_to(128)
    fn2 = NearestScore((0.3, 0.7))
    reference = [s for s, _ in topk_reference(data2d, fn2, k)]
    result = run_ripple(midas.random_peer(), TopKHandler(fn2, k), 2,
                        restriction=midas.domain())
    assert [s for s, _ in result.answer] == reference
    print(f"MIDAS  (128 peers, 2-d): correct; "
          f"latency={result.stats.latency}, "
          f"congestion={result.stats.processed}")

    # --- CAN: frustum regions are conservative covers -> lenient mode ----
    can = CanOverlay(dims=2, seed=1, join_policy="data")
    can.load(data2d)
    can.grow_to(128)
    result = run_ripple(can.random_peer(), TopKHandler(fn2, k), 2,
                        restriction=can.domain(), strict=False)
    assert [s for s, _ in result.answer] == reference
    print(f"CAN    (128 peers, 2-d): correct; "
          f"latency={result.stats.latency}, "
          f"congestion={result.stats.processed}")

    # --- Chord: a ring DHT; data is one-dimensional -----------------------
    data1d = rng.random((4_000, 1)) * 0.999
    chord = ChordOverlay(size=128, seed=1)
    chord.load(data1d)
    fn1 = NearestScore((0.42,))
    reference1 = [s for s, _ in topk_reference(data1d, fn1, k)]
    result = run_ripple(chord.random_peer(), TopKHandler(fn1, k), 2,
                        restriction=chord.domain())
    assert [s for s, _ in result.answer] == reference1
    print(f"Chord  (128 peers, 1-d): correct; "
          f"latency={result.stats.latency}, "
          f"congestion={result.stats.processed}")

    # --- Rainbow skip graph: constant-degree ring; exact arcs -> strict ---
    skip = SkipGraphOverlay(size=128, seed=1)
    skip.load(data1d)
    result = run_ripple(skip.random_peer(), TopKHandler(fn1, k), 2,
                        restriction=skip.domain(), strict=True)
    assert [s for s, _ in result.answer] == reference1
    assert skip.max_links() <= SkipGraphOverlay.MAX_DEGREE
    print(f"rainbow skip graph (128 peers, 1-d): correct; "
          f"latency={result.stats.latency}, "
          f"congestion={result.stats.processed}, "
          f"max-degree={skip.max_links()} (cap {SkipGraphOverlay.MAX_DEGREE})")

    print("\nsame handler, four overlays — only the region geometry "
          "changed.")


if __name__ == "__main__":
    main()
