"""NBA scenario: best all-around players (top-k) and specialists (skyline).

The workload the paper's evaluation motivates (Section 7.1): a collection
of per-game player-season stat lines.  A top-k query aggregates the
attributes into an "all-around" score; a skyline query finds every player
no one else beats across the board — the specialists.

Run with::

    python examples/nba_allstars.py
"""

import numpy as np

from repro import LinearScore, MidasOverlay
from repro.data.nba import NBA_ATTRIBUTES, nba_dataset, to_minimization
from repro.queries.skyline import distributed_skyline
from repro.queries.topk import distributed_topk


def describe(tup) -> str:
    return ", ".join(f"{name}={value:.2f}"
                     for name, value in zip(NBA_ATTRIBUTES, tup))


def main() -> None:
    rng = np.random.default_rng(2014)
    stats = nba_dataset(rng, 22_000)          # higher = better
    print(f"dataset: {len(stats)} player seasons, "
          f"{stats.shape[1]} per-game statistics")

    overlay = MidasOverlay(dims=6, seed=3, join_policy="data",
                           split_rule="midpoint")
    overlay.load(stats)
    overlay.grow_to(1024)
    print(f"network: {len(overlay)} peers\n")

    # --- Top-10 all-around players: weighted sum favoring scoring -------
    fn = LinearScore([3.0, 1.5, 2.0, 1.0, 1.0, 0.5])
    print("top-10 all-around players (weighted per-game stats):")
    for r, label in [(0, "ripple-fast"), (10 ** 9, "ripple-slow")]:
        result = distributed_topk(overlay.random_peer(), fn, 10,
                                  restriction=overlay.domain(), r=r)
        print(f"  {label}: latency={result.stats.latency} hops, "
              f"congestion={result.stats.processed} peers")
    for rank, (score, tup) in enumerate(result.answer, 1):
        print(f"  #{rank:2d} score={score:.2f}  {describe(tup)}")

    # --- Skyline: players who excel in some combination -----------------
    # dominance minimizes, so flip the orientation.
    flipped = to_minimization(stats)
    sky_overlay = MidasOverlay(dims=6, seed=3, join_policy="data",
                               split_rule="midpoint",
                               link_policy="boundary")
    sky_overlay.load(flipped)
    sky_overlay.grow_to(1024)
    result = distributed_skyline(sky_overlay.random_peer(), 6,
                                 restriction=sky_overlay.domain(), r=0)
    print(f"\nskyline: {len(result.answer)} non-dominated player seasons "
          f"({result.stats.latency} hops, "
          f"{result.stats.processed} peers)")
    # show the three most extreme specialists per attribute
    sky = np.array(result.answer)
    for axis, name in enumerate(NBA_ATTRIBUTES[:3]):
        best = sky[np.argmin(sky[:, axis])]
        print(f"  best {name}: {describe(1.0 - best)}")


if __name__ == "__main__":
    main()
