"""Quickstart: stand up a MIDAS network and run all three rank queries.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import LinearScore, MidasOverlay
from repro.queries.diversify import (DiversificationObjective,
                                     RippleDiversifier, greedy_diversify)
from repro.queries.skyline import distributed_skyline
from repro.queries.topk import distributed_topk


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. A dataset of 5,000 four-dimensional tuples in [0, 1)^4
    #    (lower = better on every attribute).
    data = rng.random((5_000, 4)) * 0.999

    # 2. A 256-peer MIDAS network.  Load the data first so that joins can
    #    follow the data distribution (data-adaptive splitting).
    overlay = MidasOverlay(dims=4, seed=7, join_policy="data",
                           split_rule="midpoint")
    overlay.load(data)
    overlay.grow_to(256)
    print(f"network: {len(overlay)} peers, diameter <= "
          f"{overlay.tree.max_depth()} hops, "
          f"{overlay.total_tuples()} tuples")

    # 3. Top-k: the 5 tuples minimizing the attribute sum.  Scores are
    #    maximized, so negative weights express minimization.
    fn = LinearScore([-1, -1, -1, -1])
    result = distributed_topk(overlay.random_peer(), fn, 5,
                              restriction=overlay.domain(), r=0)
    print("\ntop-5 (lowest attribute sum):")
    for score, tup in result.answer:
        print(f"  sum={-score:.3f}  {np.round(tup, 3)}")
    print(f"  cost: {result.stats.latency} hops on the critical path, "
          f"{result.stats.processed} peers involved")

    # 4. Skyline: all Pareto-optimal tuples.  The ripple parameter r
    #    trades latency for traffic; r=0 is the parallel extreme.
    result = distributed_skyline(overlay.random_peer(), 4,
                                 restriction=overlay.domain(), r=2)
    print(f"\nskyline: {len(result.answer)} tuples "
          f"({result.stats.latency} hops, "
          f"{result.stats.processed} peers, "
          f"{result.stats.tuples_shipped} tuples shipped)")

    # 5. k-diversification: 4 tuples relevant to a query point yet far
    #    from each other (lambda balances the two).
    objective = DiversificationObjective(query=data[0], lam=0.5, p=1)
    engine = RippleDiversifier(overlay, overlay.random_peer(), r=0)
    result = greedy_diversify(engine, objective, k=4)
    members, value = result.answer
    print(f"\n4-diversified set around {np.round(data[0], 3)} "
          f"(f = {value:.3f}):")
    for member in members:
        print(f"  {np.round(member, 3)}")
    print(f"  cost: {result.stats.latency} hops total over "
          f"{result.stats.processed} peer visits")


if __name__ == "__main__":
    main()
