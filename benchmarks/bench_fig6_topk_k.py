"""Figure 6: top-k performance vs result size k (NBA-like data).

Expected shape (Section 7.2.1): both latency and congestion grow with k,
as more peers hold contributing tuples.
"""

import pytest

from repro.common.scoring import LinearScore
from repro.queries.topk import distributed_topk, topk_reference

from .conftest import attach
from .bench_fig4_topk_scale import LEVELS, _resolve


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("k", (10, 40))
def test_fig6_topk_k(benchmark, overlays, config, rng, k, level):
    data = overlays.nba_raw()
    overlay = overlays.midas_for(data, "nba_raw", config.default_size)
    fn = LinearScore([1.0] * data.shape[1])
    reference = [s for s, _ in topk_reference(data, fn, k)]
    r = _resolve(level, overlay.max_links())

    def run():
        return distributed_topk(overlay.random_peer(rng), fn, k,
                                restriction=overlay.domain(), r=r)

    result = benchmark(run)
    assert [s for s, _ in result.answer] == reference
    attach(benchmark, result)
