"""Figure 9: k-diversification vs overlay size (MIRFLICKR-like data).

Methods: the RIPPLE-based greedy algorithm at both extremes over MIDAS,
and the CAN-flooding adaptation of incremental diversification.  All
three are forced through the same greedy driver, so they produce the same
result sets; the benchmark asserts it.  Expected shape (Section 7.2.3):
latency ripple-slow > baseline > ripple-fast; congestion baseline highest.
"""

import pytest

from repro.baselines.div_baseline import FloodingDiversifier
from repro.queries.diversify import (DiversificationObjective,
                                     RippleDiversifier, greedy_diversify)

from .conftest import attach

METHODS = ("ripple-fast", "ripple-slow", "baseline")


def make_engine(method, overlays, data, tag, size, rng):
    if method == "baseline":
        overlay = overlays.can_for(data, tag, size)
        return FloodingDiversifier(overlay, overlay.random_peer(rng))
    overlay = overlays.midas_for(data, tag, size)
    r = 0 if method == "ripple-fast" else 10 ** 9
    return RippleDiversifier(overlay, overlay.random_peer(rng), r=r)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("size", (2 ** 5, 2 ** 7))
def test_fig9_div_scale(benchmark, overlays, config, rng, size, method):
    data = overlays.mirflickr()
    objective = DiversificationObjective(data[17], config.default_lambda,
                                         p=1)
    engine = make_engine(method, overlays, data, "mir", size, rng)

    def run():
        return greedy_diversify(engine, objective, config.div_k,
                                max_iters=config.div_max_iters)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    members, value = result.answer
    assert len(members) == config.div_k
    benchmark.extra_info["objective_f"] = value
    attach(benchmark, result)
