"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's experiment index).  The wall-clock numbers produced by
pytest-benchmark measure the *simulator*; the paper's metrics — latency in
hops and congestion in peers — are attached to every benchmark as
``extra_info`` and printed in the summary line, so a benchmark run doubles
as a small-scale regeneration of the figure's series.

Benchmarks run at a reduced scale (networks of 2^6-2^10 peers); use
``python -m repro.experiments <figN> --scale default`` for the
EXPERIMENTS.md-scale series and ``--scale paper`` for the full Table 1
grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import builders
from repro.experiments.config import ExperimentConfig


def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        sizes=(2 ** 7, 2 ** 9),
        dims=(3, 6),
        ks=(10, 40),
        lambdas=(0.1, 0.5, 0.9),
        default_size=2 ** 8,
        nba_tuples=8_000,
        synth_tuples=8_000,
        mirflickr_tuples=4_000,
        synth_clusters=400,
        queries=3,
        network_seeds=(7,),
        div_sizes=(2 ** 5, 2 ** 7),
        div_queries=1,
        div_k=8,
        div_max_iters=3,
    )


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


class OverlayCache:
    """Build each (dataset, overlay, size) combination once per session."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._store: dict = {}

    def get(self, kind: str, builder, *key):
        cache_key = (kind, *key)
        if cache_key not in self._store:
            self._store[cache_key] = builder()
        return self._store[cache_key]

    def nba_raw(self):
        return self.get("nba_raw", lambda: builders.nba_raw(self.config, 7))

    def nba_min(self):
        return self.get("nba_min", lambda: builders.nba_min(self.config, 7))

    def synth(self, dims):
        return self.get("synth", lambda: builders.synth(self.config, dims, 7),
                        dims)

    def mirflickr(self):
        return self.get("mir", lambda: builders.mirflickr(self.config, 7))

    def midas(self, data_name, size, link_policy="random"):
        data = getattr(self, data_name)() if isinstance(data_name, str) \
            else data_name
        return self.get(
            "midas",
            lambda: builders.build_midas(data, size, 7,
                                         link_policy=link_policy),
            data_name, size, link_policy)

    def midas_for(self, data, tag, size, link_policy="random"):
        return self.get(
            "midas", lambda: builders.build_midas(data, size, 7,
                                                  link_policy=link_policy),
            tag, size, link_policy)

    def can_for(self, data, tag, size):
        return self.get("can", lambda: builders.build_can(data, size, 7),
                        tag, size)

    def baton_for(self, data, tag, size):
        return self.get("baton", lambda: builders.build_baton(data, size, 7),
                        tag, size)


@pytest.fixture(scope="session")
def overlays(config) -> OverlayCache:
    return OverlayCache(config)


def attach(benchmark, result) -> None:
    """Publish the paper's metrics on the benchmark record.

    Serializes the whole :meth:`QueryStats.as_dict` ledger so fault
    counters (timeouts, retries, completeness, ...) travel with the
    benchmark JSON automatically; the legacy key names are kept as
    aliases for existing tooling.
    """
    stats = result.stats
    benchmark.extra_info.update(stats.as_dict())
    benchmark.extra_info["latency_hops"] = stats.latency
    benchmark.extra_info["congestion_peers"] = stats.processed
    benchmark.extra_info["messages"] = stats.total_messages
