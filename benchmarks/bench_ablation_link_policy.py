"""Section 5.2 ablation: the boundary-pattern MIDAS link policy.

Compares skyline processing with the original (random) link targets
against the optimized policy that aims links at boundary-pattern peers.
The paper motivates the optimization by reduced message overhead; the
benchmark reports both policies' traffic so the effect is visible in the
extra_info columns.
"""

import pytest

from repro.queries.skyline import distributed_skyline, skyline_reference

from .conftest import attach


@pytest.mark.parametrize("mode", ("fast", "slow"))
@pytest.mark.parametrize("policy", ("random", "boundary"))
def test_ablation_link_policy(benchmark, overlays, config, rng, policy,
                              mode):
    data = overlays.nba_min()
    overlay = overlays.midas_for(data, "nba_min", config.default_size,
                                 link_policy=policy)
    reference = skyline_reference(data)
    r = 0 if mode == "fast" else 10 ** 9

    def run():
        return distributed_skyline(overlay.random_peer(rng), data.shape[1],
                                   restriction=overlay.domain(), r=r)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.answer == reference
    attach(benchmark, result)
