"""Section 3.2: worst-case latency of the three algorithms over MIDAS.

Runs never-pruning queries on complete overlays and asserts the measured
critical-path latency equals Lemma 1 (fast), Lemma 2 (slow) and Lemma 3
(ripple) exactly; the benchmark time measures the simulator's full-network
traversal.
"""

import pytest

from repro.common.scoring import LinearScore
from repro.core.analysis import fast_latency, ripple_latency, slow_latency
from repro.core.framework import SLOW, run_ripple
from repro.overlays.midas import MidasOverlay
from repro.queries.topk import TopKHandler

from .conftest import attach

CASES = [("fast", 0, fast_latency),
         ("ripple-r1", 1, lambda depth: ripple_latency(depth, 1)),
         ("ripple-r2", 2, lambda depth: ripple_latency(depth, 2)),
         ("slow", SLOW, slow_latency)]


@pytest.mark.parametrize("name,r,formula", CASES,
                         ids=[c[0] for c in CASES])
@pytest.mark.parametrize("depth", (5, 7))
def test_lemma_latency(benchmark, depth, name, r, formula):
    overlay = MidasOverlay.complete(2, depth, seed=0)
    handler = TopKHandler(LinearScore([1.0, 1.0]), 10 ** 9)

    def run():
        return run_ripple(overlay.peers()[0], handler, r,
                          restriction=overlay.domain())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.processed == 2 ** depth
    assert result.stats.latency == formula(depth)
    attach(benchmark, result)
