"""Figure 5: top-k performance vs dimensionality (SYNTH data).

Expected shape (Section 7.2.1): dimensionality affects performance only
slightly — the overlay structure, not the zone dimensionality, drives
cost.
"""

import pytest

from repro.common.scoring import LinearScore
from repro.queries.topk import distributed_topk, topk_reference

from .conftest import attach
from .bench_fig4_topk_scale import LEVELS, _resolve


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("dims", (3, 6))
def test_fig5_topk_dims(benchmark, overlays, config, rng, dims, level):
    data = overlays.synth(dims)
    overlay = overlays.midas_for(data, f"synth{dims}", config.default_size)
    fn = LinearScore([1.0] * dims)
    reference = [s for s, _ in topk_reference(data, fn, config.default_k)]
    r = _resolve(level, overlay.max_links())

    def run():
        return distributed_topk(overlay.random_peer(rng), fn,
                                config.default_k,
                                restriction=overlay.domain(), r=r)

    result = benchmark(run)
    assert [s for s, _ in result.answer] == reference
    attach(benchmark, result)
