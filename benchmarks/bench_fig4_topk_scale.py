"""Figure 4: top-k latency/congestion vs overlay size (NBA-like data).

Series: ripple parameter r in {0, D/3, 2D/3, D} over MIDAS networks of
increasing size.  Expected shape (Section 7.2.1): latency grows with r
and stays polylogarithmic in n; congestion shrinks with r.
"""

import pytest

from repro.common.scoring import LinearScore
from repro.queries.topk import distributed_topk, topk_reference

from .conftest import attach

LEVELS = ("r=0", "r=D/3", "r=2D/3", "r=D")


def _resolve(level: str, delta: int) -> int:
    return {"r=0": 0, "r=D/3": max(1, delta // 3),
            "r=2D/3": max(2, 2 * delta // 3), "r=D": delta}[level]


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("size", (2 ** 7, 2 ** 9))
def test_fig4_topk_scale(benchmark, overlays, config, rng, size, level):
    data = overlays.nba_raw()
    overlay = overlays.midas_for(data, "nba_raw", size)
    fn = LinearScore([1.0] * data.shape[1])
    reference = [s for s, _ in topk_reference(data, fn, config.default_k)]
    r = _resolve(level, overlay.max_links())

    def run():
        return distributed_topk(overlay.random_peer(rng), fn,
                                config.default_k,
                                restriction=overlay.domain(), r=r)

    result = benchmark(run)
    assert [s for s, _ in result.answer] == reference
    attach(benchmark, result)
