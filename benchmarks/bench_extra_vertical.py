"""Extra: the vertical top-k lineage (Section 2.1 background).

Not a figure of the paper — RIPPLE targets horizontal partitionings —
but the related-work algorithms are implemented and this bench records
their classical cost profile: TA beats FA on accesses, TPUT trades
accesses for a fixed three round-trips, KLEE approximates in two.
"""

import numpy as np
import pytest

from repro.vertical import (VerticalNetwork, fagin, klee,
                            threshold_algorithm, tput)

ALGORITHMS = {"fa": fagin, "ta": threshold_algorithm, "tput": tput,
              "klee": klee}


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(5).random((20_000, 4))


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_extra_vertical(benchmark, matrix, name):
    algorithm = ALGORITHMS[name]

    def run():
        return algorithm(VerticalNetwork(matrix), 10)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    stats = result.stats
    benchmark.extra_info["sorted_accesses"] = stats.sorted_accesses
    benchmark.extra_info["random_accesses"] = stats.random_accesses
    benchmark.extra_info["rounds"] = stats.rounds
    if name != "klee":
        reference = VerticalNetwork(matrix).reference_topk(10, [1] * 4)
        assert [s for s, _ in result.answer] == pytest.approx(
            [s for s, _ in reference])
