"""Figure 7: skyline computation vs overlay size (NBA-like data).

Methods: ripple-fast and ripple-slow over MIDAS (Section 5.2 boundary
links), DSL over CAN, SSP over BATON.  Expected shape (Section 7.2.2):
ripple-fast has the lowest latency, ripple-slow the lowest traffic; DSL
is slowest at low dimensionality.
"""

import pytest

from repro.baselines.dsl import dsl_skyline
from repro.baselines.ssp import ssp_skyline
from repro.queries.skyline import distributed_skyline, skyline_reference

from .conftest import attach

METHODS = ("ripple-fast", "ripple-slow", "dsl", "ssp")


def make_runner(method, overlays, data, tag, size, rng):
    dims = data.shape[1]
    if method in ("ripple-fast", "ripple-slow"):
        overlay = overlays.midas_for(data, tag, size, link_policy="boundary")
        r = 0 if method == "ripple-fast" else 10 ** 9
        return lambda: distributed_skyline(overlay.random_peer(rng), dims,
                                           restriction=overlay.domain(), r=r)
    if method == "dsl":
        overlay = overlays.can_for(data, tag, size)
        return lambda: dsl_skyline(overlay, overlay.random_peer(rng))
    overlay = overlays.baton_for(data, tag, size)
    return lambda: ssp_skyline(overlay, overlay.random_peer(rng))


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("size", (2 ** 7, 2 ** 9))
def test_fig7_skyline_scale(benchmark, overlays, config, rng, size, method):
    data = overlays.nba_min()
    reference = skyline_reference(data)
    run = make_runner(method, overlays, data, "nba_min", size, rng)
    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.answer == reference
    attach(benchmark, result)
