"""Result-cache benchmark: warm == cold bit-identity and traffic saved.

Three row families, all on zero-fault networks (the only configuration
the engine consults the cache on):

* **repeat rows** (overlay x handler family): the same query issued
  ``repeats`` times from rotating initiators, once on an engine without
  a cache (``cold_messages``) and once with a
  :class:`~repro.net.resultcache.CacheDirectory` (``warm_messages``).
  Every repeat after the first must be an exact hit, the warm answer
  stream must be checksum-identical to the cold one, and total traffic
  must drop.
* **semantic rows**: a priming query followed by a *different* query the
  cache can serve from it — a top-k prefix of a cached top-k' on the
  same scope, a superset-region top-k / skyline seeding the subset
  query's state, and a sub-box range scan filtered from a cached
  superset scan.  The reused answer is compared against a cold run of
  the same query on a cache-less engine.
* **workload rows**: the skewed open-loop mix
  (``WorkloadSpec.population`` + Zipf ``skew``) run cold and warm over
  the same overlay, gating the headline claim — at least half the
  network messages disappear on the skewed row — plus one adaptive-``r``
  row pinning that :class:`~repro.net.adaptive.AdaptiveFanout` changes
  costs, never answers.

Everything is simulated and seeded, so every recorded fact (message
counts, hit counts, answer checksums) is deterministic and the compare
gate runs at tolerance 0.

Usage::

    # refresh the committed baseline (BENCH_cache.json)
    PYTHONPATH=src python -m benchmarks.bench_cache --record

    # CI gate: rerun the smoke config, compare against the baseline
    PYTHONPATH=src python -m benchmarks.bench_cache --smoke \
        --compare BENCH_cache.json --out bench_cache_smoke.json
"""

import argparse
import hashlib
import json
import sys

import numpy as np
import pytest

from repro import (CacheDirectory, LinearScore, QueryEngine, RangeHandler,
                   Rect, RectRegion, SkylineHandler, TopKHandler,
                   WorkloadSpec, run_workload)

from ._gate import add_gate_arguments, gate, log, write_json
from .bench_churn import build_overlay

BASELINE_PATH = "BENCH_cache.json"

OVERLAYS = ("midas", "chord", "can", "skipgraph")
FAMILIES = ("topk", "skyline", "range")

#: Deterministic facts the compare gate pins exactly (whichever of them
#: a recorded row carries).
GATED_FIELDS = ("cold_messages", "warm_messages", "hits", "semantic_hits",
                "answers_match", "checksum", "hit_rate", "reduction",
                "messages_fixed", "messages_adaptive", "completed")


def _dims(kind):
    return 1 if kind in ("chord", "skipgraph") else 2


def family_handler(kind, family):
    dims = _dims(kind)
    if family == "topk":
        return TopKHandler(LinearScore([1.0] * dims), 8)
    if family == "skyline":
        return SkylineHandler(dims)
    return RangeHandler(Rect((0.1,) * dims, (0.8,) * dims))


def _canon(value):
    """JSON-serializable canonical form of an answer (numpy-free)."""
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    return value


def checksum(answers):
    """Short deterministic digest of an answer stream."""
    payload = json.dumps(_canon(answers), separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _run_series(overlay, submissions, *, cache=None, strict=None):
    """Run ``submissions = [(initiator, handler, r)]`` sequentially on a
    fresh engine; returns (answers, total messages, engine)."""
    engine = QueryEngine(capacity=1, queue_limit=len(submissions),
                         cache=cache)
    answers, messages = [], 0
    for initiator, handler, r in submissions:
        job_id = engine.submit(initiator, handler, r,
                               restriction=overlay.domain(), strict=strict)
        engine.run()
        outcome = engine.result_of(job_id)
        answers.append(outcome.answer)
        messages += outcome.stats.total_messages
    return answers, messages, engine


def repeat_row(kind, family, *, peers, tuples, repeats, seed):
    """The same query ``repeats`` times: cold engine vs cached engine."""
    overlay = build_overlay(kind, peers=peers, tuples=tuples, seed=seed)
    strict = False if kind == "can" else None
    all_peers = overlay.peers()
    submissions = [(all_peers[i % len(all_peers)],
                    family_handler(kind, family), i % 2)
                   for i in range(repeats)]
    cold_answers, cold_messages, _ = _run_series(overlay, submissions,
                                                 strict=strict)
    cache = CacheDirectory(overlay)
    warm_answers, warm_messages, _ = _run_series(overlay, submissions,
                                                 cache=cache, strict=strict)
    counters = cache.snapshot()
    return {
        "key": f"repeat-{kind}-{family}-n{repeats}-p{peers}-s{seed}",
        "mode": "repeat", "overlay": kind, "family": family,
        "repeats": repeats, "peers": peers, "seed": seed,
        "cold_messages": cold_messages, "warm_messages": warm_messages,
        "hits": counters["hits"],
        "semantic_hits": counters["semantic_hits"],
        "answers_match": int(checksum(warm_answers)
                             == checksum(cold_answers)),
        "checksum": checksum(cold_answers),
        "reduction": round(1.0 - warm_messages / max(1, cold_messages), 6),
    }


def _semantic_cases(kind):
    """(name, priming handler, reused handler, reused restriction) rows.

    The reused restriction ``None`` means "same domain as the priming
    query"; otherwise it is the subset scope the cache must cover.  The
    subset-region cases only run on the rectangle-region substrate
    (MIDAS): ring overlays scope by arcs, so a sub-rectangle would not
    be a coverable restriction there.
    """
    dims = _dims(kind)
    fn = LinearScore([1.0] * dims)
    cases = [
        ("topk-prefix", TopKHandler(fn, 8), TopKHandler(fn, 4), None),
        ("range-subbox", RangeHandler(Rect((0.0,) * dims, (0.9,) * dims)),
         RangeHandler(Rect((0.2,) * dims, (0.7,) * dims)), None),
    ]
    if kind == "midas":
        # Each subset hugs the corner its family's answers cluster at —
        # the maximizing corner for top-k, the origin for skylines — so
        # the cached answer has members inside the new scope to seed.
        top = RectRegion(Rect((0.3,) * dims, (1.0,) * dims))
        low = RectRegion(Rect((0.0,) * dims, (0.6,) * dims))
        cases[1:1] = [
            ("topk-subset", TopKHandler(fn, 8), TopKHandler(fn, 8), top),
            ("skyline-subset", SkylineHandler(dims), SkylineHandler(dims),
             low),
        ]
    return cases


def semantic_row(kind, case, *, peers, tuples, seed):
    """Prime the cache with one query, then reuse it for a different one."""
    name, prime, reuse, sub = case
    overlay = build_overlay(kind, peers=peers, tuples=tuples, seed=seed)
    all_peers = overlay.peers()
    scope = overlay.domain() if sub is None else sub
    cold_engine = QueryEngine(capacity=1)
    cold_id = cold_engine.submit(all_peers[1], reuse, 0, restriction=scope)
    cold_engine.run()
    cold = cold_engine.result_of(cold_id)
    cache = CacheDirectory(overlay)
    warm_engine = QueryEngine(capacity=1, cache=cache)
    warm_engine.submit(all_peers[0], prime, 0,
                       restriction=overlay.domain())
    warm_engine.run()
    reuse_id = warm_engine.submit(all_peers[1], reuse, 0, restriction=scope)
    warm_engine.run()
    reused = warm_engine.result_of(reuse_id)
    counters = cache.snapshot()
    return {
        "key": f"semantic-{kind}-{name}-p{peers}-s{seed}",
        "mode": "semantic", "overlay": kind, "case": name,
        "peers": peers, "seed": seed,
        "cold_messages": cold.stats.total_messages,
        "warm_messages": reused.stats.total_messages,
        "semantic_hits": counters["semantic_hits"],
        "answers_match": int(checksum(reused.answer)
                             == checksum(cold.answer)),
        "checksum": checksum(cold.answer),
    }


def _workload_answers(report):
    return [outcome.answer for _, outcome in
            sorted(report.outcomes.items())
            if hasattr(outcome, "answer")]


def _skew_spec(*, queries, seed, population, adaptive_r=False):
    return WorkloadSpec(queries=queries, rate=0.5, seed=seed,
                        strict=False, rs=(0, 1, 2),
                        population=population, skew=1.2,
                        adaptive_r=adaptive_r)


def skew_row(kind, *, peers, tuples, queries, seed, population=6):
    """The skewed repeated-query mix, cold vs warm — the headline row."""
    overlay = build_overlay(kind, peers=peers, tuples=tuples, seed=seed)
    spec = _skew_spec(queries=queries, seed=seed, population=population)
    cold_engine = QueryEngine(capacity=4, queue_limit=queries,
                              service_time=1)
    cold = run_workload(overlay, spec, engine=cold_engine)
    warm_engine = QueryEngine(capacity=4, queue_limit=queries,
                              service_time=1,
                              cache=CacheDirectory(overlay))
    warm = run_workload(overlay, spec, engine=warm_engine)
    return {
        "key": f"skew-{kind}-q{queries}-pop{population}-p{peers}-s{seed}",
        "mode": "skew", "overlay": kind, "queries": queries,
        "population": population, "peers": peers, "seed": seed,
        "completed": warm.completed,
        "cold_messages": cold.messages_total,
        "warm_messages": warm.messages_total,
        "hits": warm.cache_hits,
        "semantic_hits": warm.cache_semantic_hits,
        "hit_rate": round(warm.cache_hits / max(1, warm.completed), 6),
        "reduction": round(1.0 - warm.messages_total
                           / max(1, cold.messages_total), 6),
        "answers_match": int(checksum(_workload_answers(warm))
                             == checksum(_workload_answers(cold))),
        "checksum": checksum(_workload_answers(cold)),
    }


def adaptive_row(kind, *, peers, tuples, queries, seed):
    """Adaptive ``r`` changes costs, never answers (r-invariance)."""
    overlay = build_overlay(kind, peers=peers, tuples=tuples, seed=seed)
    fixed_engine = QueryEngine(capacity=4, queue_limit=queries,
                               service_time=1)
    fixed = run_workload(
        overlay, _skew_spec(queries=queries, seed=seed, population=None),
        engine=fixed_engine)
    adaptive_engine = QueryEngine(capacity=4, queue_limit=queries,
                                  service_time=1)
    adaptive = run_workload(
        overlay, _skew_spec(queries=queries, seed=seed, population=None,
                            adaptive_r=True),
        engine=adaptive_engine)
    decisions = adaptive.fanout_decisions or {}
    return {
        "key": f"adaptive-{kind}-q{queries}-p{peers}-s{seed}",
        "mode": "adaptive", "overlay": kind, "queries": queries,
        "peers": peers, "seed": seed,
        "completed": adaptive.completed,
        "messages_fixed": fixed.messages_total,
        "messages_adaptive": adaptive.messages_total,
        "decisions": {str(r): n for r, n in sorted(decisions.items())},
        "answers_match": int(checksum(_workload_answers(adaptive))
                             == checksum(_workload_answers(fixed))),
        "checksum": checksum(_workload_answers(fixed)),
    }


def sweep(*, peers, tuples, repeats, queries, seed):
    rows = []
    for kind in OVERLAYS:
        for family in FAMILIES:
            rows.append(repeat_row(kind, family, peers=peers, tuples=tuples,
                                   repeats=repeats, seed=seed))
    for kind in ("midas", "chord"):
        for case in _semantic_cases(kind):
            rows.append(semantic_row(kind, case, peers=peers, tuples=tuples,
                                     seed=seed))
        rows.append(skew_row(kind, peers=peers, tuples=tuples,
                             queries=queries, seed=seed))
    rows.append(adaptive_row("midas", peers=peers, tuples=tuples,
                             queries=queries, seed=seed))
    return rows


def check_invariants(rows):
    """The correctness gates themselves; raises AssertionError on breach."""
    for row in rows:
        assert row["answers_match"] == 1, \
            f"{row['key']}: warm answers diverged from cold"
        if row["mode"] == "repeat":
            assert row["hits"] == row["repeats"] - 1, row["key"]
            assert row["warm_messages"] < row["cold_messages"], row["key"]
        elif row["mode"] == "semantic":
            assert row["semantic_hits"] >= 1, \
                f"{row['key']}: cache never reused the primed entry"
            assert row["warm_messages"] <= row["cold_messages"], row["key"]
        elif row["mode"] == "skew":
            assert row["completed"] == row["queries"], row["key"]
            assert row["hits"] > 0, row["key"]
            assert row["reduction"] >= 0.5, \
                f"{row['key']}: only {row['reduction']:.0%} of messages " \
                f"saved on the skewed workload (gate: >= 50%)"
        elif row["mode"] == "adaptive":
            assert row["completed"] == row["queries"], row["key"]
            assert sum(row["decisions"].values()) == row["completed"], \
                row["key"]


def compare(fresh_rows, baseline, tolerance):
    """Deterministic row-for-row gate; returns failure strings."""
    fresh = {row["key"]: row for row in fresh_rows}
    failures = []
    for key, recorded in baseline.get("rows", {}).items():
        now = fresh.get(key)
        if now is None:
            continue  # configs differ between --smoke and --record
        for field in GATED_FIELDS:
            if field not in recorded:
                continue
            want, got = recorded[field], now[field]
            if want == got:
                continue
            if isinstance(want, str) \
                    or abs(got - want) > tolerance:
                failures.append(
                    f"{key}: {field} {got!r} drifted from recorded "
                    f"{want!r} (tolerance {tolerance})")
    return failures


SMOKE = dict(peers=16, tuples=120, repeats=4, queries=40, seed=0)
FULL = dict(peers=48, tuples=400, repeats=6, queries=120, seed=0)


# -- pytest entry points (collected by the benchmark suite) ------------------


@pytest.mark.parametrize("family", FAMILIES)
def test_repeat_bit_identity(family):
    row = repeat_row("midas", family, peers=16, tuples=120, repeats=3,
                     seed=0)
    assert row["answers_match"] == 1
    assert row["hits"] == 2
    assert row["warm_messages"] < row["cold_messages"]


def test_skew_halves_traffic():
    row = skew_row("midas", peers=16, tuples=120, queries=40, seed=0)
    assert row["answers_match"] == 1
    assert row["reduction"] >= 0.5


def test_smoke_sweep_invariants():
    rows = sweep(**SMOKE)
    check_invariants(rows)


# -- CLI ---------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="result-cache hit rates, traffic reduction, and "
                    "warm/cold bit-identity")
    add_gate_arguments(
        parser, baseline_path=BASELINE_PATH, default_tolerance=0.0,
        tolerance_help="allowed drift per recorded field (default 0: "
                       "every gated fact is deterministic)")
    parser.add_argument("--peers", type=int, default=FULL["peers"])
    parser.add_argument("--tuples", type=int, default=FULL["tuples"])
    parser.add_argument("--repeats", type=int, default=FULL["repeats"])
    parser.add_argument("--queries", type=int, default=FULL["queries"])
    parser.add_argument("--seed", type=int, default=FULL["seed"])
    args = parser.parse_args(argv)

    config = dict(SMOKE) if args.smoke else dict(
        peers=args.peers, tuples=args.tuples, repeats=args.repeats,
        queries=args.queries, seed=args.seed)
    rows = sweep(**config)
    check_invariants(rows)

    if args.record:
        # the baseline covers the smoke config too, so the CI smoke run
        # always finds matching scenario keys to gate against
        smoke_rows = rows if args.smoke else sweep(**SMOKE)
        recorded = {row["key"]: row for row in smoke_rows}
        if not args.smoke:
            recorded.update({row["key"]: row for row in rows})
        write_json(BASELINE_PATH,
                   {"meta": {"smoke": SMOKE, "full": FULL,
                             "overlays": OVERLAYS, "families": FAMILIES},
                    "rows": recorded}, sort_keys=True)
        log(f"wrote baseline {BASELINE_PATH} ({len(recorded)} scenarios)")

    if args.out:
        write_json(args.out, rows)
        log(f"wrote {len(rows)} rows to {args.out}")
    elif not args.record:
        print(json.dumps(rows, indent=2))

    if args.compare:
        def passed(baseline):
            gated = sum(1 for row in rows
                        if row["key"] in baseline.get("rows", {}))
            return f"cache gate passed ({gated} scenarios compared)"

        return gate(rows, args.compare, compare, args.tolerance,
                    passed=passed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
