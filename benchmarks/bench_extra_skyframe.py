"""Extra competitor: Skyframe (border peers over CAN, Section 2.2).

Not part of the paper's measured figures (the paper compares RIPPLE
against DSL and SSP only), included for completeness of the related-work
landscape: Skyframe's border-peer fan-out sits between SSP's pruning and
a flood.
"""

import pytest

from repro.baselines.skyframe import skyframe_skyline
from repro.queries.skyline import skyline_reference

from .conftest import attach


@pytest.mark.parametrize("size", (2 ** 7, 2 ** 9))
def test_extra_skyframe(benchmark, overlays, config, rng, size):
    data = overlays.nba_min()
    overlay = overlays.can_for(data, "nba_min", size)
    reference = skyline_reference(data)

    def run():
        return skyframe_skyline(overlay, overlay.random_peer(rng))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.answer == reference
    attach(benchmark, result)
