"""Figure 8: skyline computation vs dimensionality (SYNTH data).

Expected shape (Section 7.2.2): costs grow with dimensionality for all
methods (larger skylines); DSL benefits from denser CAN neighborhoods as
dimensionality rises, while SSP suffers from Z-curve false positives.
"""

import pytest

from repro.queries.skyline import skyline_reference

from .conftest import attach
from .bench_fig7_skyline_scale import METHODS, make_runner


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("dims", (3, 6))
def test_fig8_skyline_dims(benchmark, overlays, config, rng, dims, method):
    data = overlays.synth(dims)
    reference = skyline_reference(data)
    run = make_runner(method, overlays, data, f"synth{dims}",
                      config.default_size, rng)
    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.answer == reference
    attach(benchmark, result)
