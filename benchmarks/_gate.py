"""Shared plumbing for the recorded-baseline benchmark gates.

``bench_kernels``, ``bench_churn``, and ``bench_load`` all follow the
same CLI contract — ``--smoke`` for the reduced CI configuration,
``--record`` to refresh the committed baseline, ``--compare PATH``
plus ``--tolerance`` to gate a fresh run against it, ``--out`` to keep
the fresh JSON — and the same conventions around it: progress goes to
stderr so stdout stays parseable, baselines are pretty-printed JSON
with a trailing newline, and a failed gate prints one ``REGRESSION``
line per finding before exiting non-zero.  This module is the single
implementation of that contract; each driver contributes only its
sweep and its ``compare(fresh, baseline, tolerance)`` policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable

import numpy as np

__all__ = ["add_gate_arguments", "compare_rss", "gate", "log", "peak_rss_mib",
           "read_json", "seeded_rng", "write_json"]


def log(msg: str) -> None:
    """Progress/diagnostic line on stderr; stdout stays machine-readable."""
    print(msg, file=sys.stderr)


def seeded_rng(seed: int) -> np.random.Generator:
    """The benchmark suite's one generator constructor (RPL001: every
    draw in a gate driver must flow from an explicit seed)."""
    return np.random.default_rng(seed)


def peak_rss_mib() -> float:
    """Peak resident set size of this process so far, in MiB.

    Backed by ``getrusage(RUSAGE_SELF).ru_maxrss`` — a high-water mark,
    so per-row deltas are meaningful only for the rows that *raise* the
    peak (record rows largest-last, or treat the column as cumulative).
    Linux reports KiB, macOS bytes; normalized here.  Returns ``0.0``
    where ``resource`` is unavailable (non-POSIX), which both recording
    and comparison treat as "column not measured".
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only fallback
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def compare_rss(fresh_mib: float, baseline_mib: float, *, label: str,
                tolerance: float) -> list[str]:
    """Banded peak-memory comparison, shared by every gate's policy.

    Memory regressions only (a *smaller* footprint is always a pass),
    with a relative band: fails when the fresh peak exceeds the baseline
    by more than ``tolerance`` (e.g. ``0.5`` allows +50%).  Rows measured
    as ``0.0`` on either side — platform without ``resource`` — are
    skipped rather than failed, so baselines stay portable.
    """
    if not fresh_mib or not baseline_mib:
        return []
    limit = baseline_mib * (1.0 + tolerance)
    if fresh_mib > limit:
        return [f"{label}: peak RSS {fresh_mib:.1f} MiB exceeds "
                f"baseline {baseline_mib:.1f} MiB "
                f"(+{tolerance:.0%} band = {limit:.1f} MiB)"]
    return []


def add_gate_arguments(parser: argparse.ArgumentParser, *,
                       baseline_path: str, default_tolerance: float,
                       tolerance_help: str) -> None:
    """Install the shared ``--smoke/--record/--compare/--tolerance/--out``
    flags; per-driver flags are added by the caller afterwards."""
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes (the CI gate configuration)")
    parser.add_argument("--record", action="store_true",
                        help=f"write the recorded baseline {baseline_path}")
    parser.add_argument("--compare", type=str, default=None, metavar="PATH",
                        help="gate the fresh run against this baseline")
    parser.add_argument("--tolerance", type=float, default=default_tolerance,
                        help=tolerance_help)
    parser.add_argument("--out", type=str, default=None,
                        help="write the fresh results JSON here")


def write_json(path: str, payload: Any, *, sort_keys: bool = False) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=sort_keys)
        fh.write("\n")


def read_json(path: str) -> Any:
    with open(path) as fh:
        return json.load(fh)


def gate(fresh: Any, baseline_path: str,
         compare: Callable[[Any, Any, float], list[str]],
         tolerance: float, *,
         passed: str | Callable[[Any], str]) -> int:
    """Run one compare gate and report it.

    Loads the baseline, applies the driver's ``compare`` policy, prints
    each failure as a ``REGRESSION`` line, and returns the process exit
    code.  ``passed`` is the success message (or a callable receiving
    the loaded baseline, for messages that count gated scenarios).
    """
    baseline = read_json(baseline_path)
    failures = compare(fresh, baseline, tolerance)
    if failures:
        for failure in failures:
            log(f"REGRESSION {failure}")
        return 1
    log(passed(baseline) if callable(passed) else passed)
    return 0
