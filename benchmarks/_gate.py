"""Shared plumbing for the recorded-baseline benchmark gates.

``bench_kernels``, ``bench_churn``, and ``bench_load`` all follow the
same CLI contract — ``--smoke`` for the reduced CI configuration,
``--record`` to refresh the committed baseline, ``--compare PATH``
plus ``--tolerance`` to gate a fresh run against it, ``--out`` to keep
the fresh JSON — and the same conventions around it: progress goes to
stderr so stdout stays parseable, baselines are pretty-printed JSON
with a trailing newline, and a failed gate prints one ``REGRESSION``
line per finding before exiting non-zero.  This module is the single
implementation of that contract; each driver contributes only its
sweep and its ``compare(fresh, baseline, tolerance)`` policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable

import numpy as np

__all__ = ["add_gate_arguments", "gate", "log", "read_json", "seeded_rng",
           "write_json"]


def log(msg: str) -> None:
    """Progress/diagnostic line on stderr; stdout stays machine-readable."""
    print(msg, file=sys.stderr)


def seeded_rng(seed: int) -> np.random.Generator:
    """The benchmark suite's one generator constructor (RPL001: every
    draw in a gate driver must flow from an explicit seed)."""
    return np.random.default_rng(seed)


def add_gate_arguments(parser: argparse.ArgumentParser, *,
                       baseline_path: str, default_tolerance: float,
                       tolerance_help: str) -> None:
    """Install the shared ``--smoke/--record/--compare/--tolerance/--out``
    flags; per-driver flags are added by the caller afterwards."""
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes (the CI gate configuration)")
    parser.add_argument("--record", action="store_true",
                        help=f"write the recorded baseline {baseline_path}")
    parser.add_argument("--compare", type=str, default=None, metavar="PATH",
                        help="gate the fresh run against this baseline")
    parser.add_argument("--tolerance", type=float, default=default_tolerance,
                        help=tolerance_help)
    parser.add_argument("--out", type=str, default=None,
                        help="write the fresh results JSON here")


def write_json(path: str, payload: Any, *, sort_keys: bool = False) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=sort_keys)
        fh.write("\n")


def read_json(path: str) -> Any:
    with open(path) as fh:
        return json.load(fh)


def gate(fresh: Any, baseline_path: str,
         compare: Callable[[Any, Any, float], list[str]],
         tolerance: float, *,
         passed: str | Callable[[Any], str]) -> int:
    """Run one compare gate and report it.

    Loads the baseline, applies the driver's ``compare`` policy, prints
    each failure as a ``REGRESSION`` line, and returns the process exit
    code.  ``passed`` is the success message (or a callable receiving
    the loaded baseline, for messages that count gated scenarios).
    """
    baseline = read_json(baseline_path)
    failures = compare(fresh, baseline, tolerance)
    if failures:
        for failure in failures:
            log(f"REGRESSION {failure}")
        return 1
    log(passed(baseline) if callable(passed) else passed)
    return 0
