"""Extra: the Section 1 strawman — naive broadcast vs RIPPLE.

The introduction's motivating comparison: broadcasting a top-k query to
the entire network is latency-optimal but touches every peer and ships
unprunable tuples; RIPPLE's seeded parallel mode answers the same query
exactly while processing a fraction of the network.
"""

import pytest

from repro.baselines.naive import broadcast_query
from repro.common.scoring import LinearScore
from repro.queries.topk import TopKHandler, distributed_topk, topk_reference

from .conftest import attach


@pytest.mark.parametrize("method", ("broadcast", "ripple-fast"))
def test_extra_naive_vs_ripple(benchmark, overlays, config, rng, method):
    data = overlays.nba_raw()
    overlay = overlays.midas_for(data, "nba_raw", config.default_size)
    fn = LinearScore([1.0] * data.shape[1])
    reference = [s for s, _ in topk_reference(data, fn, config.default_k)]

    if method == "broadcast":
        def run():
            return broadcast_query(overlay.random_peer(rng),
                                   TopKHandler(fn, config.default_k))
    else:
        def run():
            return distributed_topk(overlay.random_peer(rng), fn,
                                    config.default_k,
                                    restriction=overlay.domain(), r=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert [s for s, _ in result.answer] == reference
    attach(benchmark, result)
    if method == "broadcast":
        assert result.stats.processed == len(overlay)
