"""Serving benchmark: the concurrent query engine under open-loop load.

Calibrates the saturation arrival rate per overlay (engine capacity over
the measured solo-query latency), then sweeps load multipliers below,
at, and past saturation for each admission policy and records the
degradation profile: exact p50/p99 turnaround, shed rate, and the
completeness of admitted queries.  The headline robustness claims ride
on the recorded rows:

* admitted queries stay complete (completeness 1.0 on zero-fault runs)
  no matter how hard the engine is overloaded;
* p99 turnaround is finite at every load and degrades monotonically
  with load up to the shedding point (past it, the bounded admission
  queue deliberately caps the tail — that is the backpressure
  guarantee — so overload rows are pinned exactly by the baseline
  instead);
* past saturation the engine sheds (``shed_rate > 0``) instead of
  queueing without bound — and under churn it degrades to partial
  answers with honest stats rather than raising.

Everything is simulated time, so rows are deterministic and the compare
gate runs at tolerance 0 by default (any change in a recorded scenario
is a behavior change, not noise).

Usage::

    # refresh the committed baseline (BENCH_load.json)
    PYTHONPATH=src python -m benchmarks.bench_load --record

    # CI gate: rerun the smoke config, compare against the baseline
    PYTHONPATH=src python -m benchmarks.bench_load --smoke \
        --compare BENCH_load.json --out bench_load_smoke.json

    # inspect one overloaded run as a Perfetto trace
    PYTHONPATH=src python -m benchmarks.bench_load --smoke \
        --trace-out load.perfetto.json
"""

import argparse
import json
import math
import sys

import pytest

from repro import (LinearScore, PriorityPolicy, QueryEngine, TopKHandler,
                   WeightedFairPolicy, WorkloadSpec, run_workload)
from repro.net.faults import FaultPlan

from ._gate import add_gate_arguments, gate, log, seeded_rng, write_json
from .bench_churn import build_overlay

BASELINE_PATH = "BENCH_load.json"

OVERLAYS = ("midas", "chord", "can")
POLICIES = ("fifo", "priority", "wfair")
MULTIPLIERS = (0.25, 0.5, 1.0, 2.0)

#: Fields of a recorded row the deterministic compare gate pins exactly.
GATED_FIELDS = ("completed", "shed", "deadline_exceeded", "budget_exceeded",
                "p50", "p99", "shed_rate", "admitted_completeness")


def make_policy(name):
    if name == "priority":
        return PriorityPolicy()
    if name == "wfair":
        return WeightedFairPolicy({"gold": 3, "bronze": 1})
    return None  # engine default: FIFO


def make_spec(policy, *, queries, rate, seed, deadline=None):
    """The query mix exercised per row; priority/weight-class diversity
    only where the policy can act on it, so FIFO rows stay minimal."""
    kwargs = dict(queries=queries, rate=rate, seed=seed, deadline=deadline,
                  strict=False, rs=(0, 1))
    if policy == "priority":
        kwargs["priorities"] = (0, 1, 2)
    elif policy == "wfair":
        kwargs["classes"] = (("gold", 3), ("bronze", 1))
    return WorkloadSpec(**kwargs)


def calibrate(overlay, *, capacity, service_time, seed):
    """Saturation arrival rate: ``capacity / solo-query turnaround``.

    One top-k query on the idle engine measures the full service chain
    (propagation plus per-hop service) without any queueing; ``capacity``
    such queries can then be in flight back to back, so arrivals beyond
    ``capacity / turnaround`` per tick must queue or shed by
    construction.
    """
    engine = QueryEngine(capacity=1, service_time=service_time)
    dims = overlay.domain().cover()[0].dims
    handler = TopKHandler(LinearScore([1.0] * dims), 8)
    initiator = overlay.random_peer(seeded_rng(seed))
    job_id = engine.submit(initiator, handler, 1,
                           restriction=overlay.domain(), strict=False)
    engine.run()
    solo = engine.result_of(job_id)
    return capacity / max(1, solo.turnaround), solo.turnaround


def run_row(overlay, *, policy, queries, rate, seed, capacity, queue_limit,
            service_time, faults=None, deadline=None):
    engine = QueryEngine(capacity=capacity, queue_limit=queue_limit,
                         policy=make_policy(policy), faults=faults,
                         service_time=service_time)
    spec = make_spec(policy, queries=queries, rate=rate, seed=seed,
                     deadline=deadline)
    return run_workload(overlay, spec, engine=engine)


def sweep(*, peers, tuples, queries, seed, capacity=4, queue_limit=8,
          service_time=1, churn_deadline_factor=8):
    """Load-multiplier x policy rows per overlay, plus one churn row.

    The zero-fault grid carries the backpressure gates; the churn row
    (25% crashes, 10% drops, deadlines at ``churn_deadline_factor`` solo
    turnarounds) records graceful degradation: partial completeness and
    deadline misses with honest stats, never an exception.
    """
    rows = []
    for kind in OVERLAYS:
        overlay = build_overlay(kind, peers=peers, tuples=tuples, seed=seed)
        base_rate, solo = calibrate(overlay, capacity=capacity,
                                    service_time=service_time, seed=seed)
        for policy in POLICIES:
            for mult in MULTIPLIERS:
                report = run_row(overlay, policy=policy, queries=queries,
                                 rate=mult * base_rate, seed=seed,
                                 capacity=capacity, queue_limit=queue_limit,
                                 service_time=service_time)
                row = {"key": f"{kind}-{policy}-x{mult}-q{queries}"
                              f"-p{peers}-s{seed}",
                       "overlay": kind, "policy": policy, "load_x": mult,
                       "solo_turnaround": solo, "queries": queries,
                       "peers": peers, "seed": seed, "faults": False}
                row.update(report.as_dict())
                rows.append(row)
        plan = FaultPlan.churn(overlay, crash_fraction=0.25, seed=seed + 1,
                               drop_prob=0.1, horizon=4 * solo)
        report = run_row(overlay, policy="fifo", queries=queries,
                         rate=base_rate, seed=seed, capacity=capacity,
                         queue_limit=queue_limit, service_time=service_time,
                         faults=plan,
                         deadline=churn_deadline_factor * solo)
        row = {"key": f"{kind}-churn-x1.0-q{queries}-p{peers}-s{seed}",
               "overlay": kind, "policy": "fifo", "load_x": 1.0,
               "solo_turnaround": solo, "queries": queries, "peers": peers,
               "seed": seed, "faults": True}
        row.update(report.as_dict())
        rows.append(row)
    return rows


def check_invariants(rows):
    """The robustness gates themselves; raises AssertionError on breach."""
    by_config = {}
    for row in rows:
        assert row["errors"] == 0, row["key"]
        assert row["p99"] != math.inf or row["completed"] == 0
        if not row["faults"]:
            assert row["completed"] > 0, row["key"]
            assert math.isfinite(row["p99"]), row["key"]
            assert row["admitted_completeness"] == 1.0, row["key"]
            assert row["shed"] + row["completed"] == row["queries"], \
                row["key"]
            by_config.setdefault((row["overlay"], row["policy"]),
                                 []).append(row)
    for (kind, policy), grid in by_config.items():
        grid.sort(key=lambda row: row["load_x"])
        # While nothing is shed every row completes the same query
        # population, so more load means strictly more queueing and p99
        # must be non-decreasing.  Once the bounded admission queue
        # starts shedding, percentiles are computed over *survivors*
        # (shedding preferentially drops queries arriving into a full
        # queue), so cross-load comparison stops being apples-to-apples;
        # there the gates are shedding, finiteness, and the exact
        # baseline pin in compare().
        until_shed = [row["p99"] for row in grid if row["shed"] == 0]
        assert until_shed == sorted(until_shed), \
            f"{kind}/{policy}: p99 not monotone below saturation: " \
            f"{until_shed}"
        assert grid[-1]["load_x"] >= 2.0 and grid[-1]["shed_rate"] > 0.0, \
            f"{kind}/{policy}: no shedding at {grid[-1]['load_x']}x load"


def compare(fresh_rows, baseline, tolerance):
    """Deterministic row-for-row gate; returns failure strings."""
    fresh = {row["key"]: row for row in fresh_rows}
    failures = []
    for key, recorded in baseline.get("rows", {}).items():
        now = fresh.get(key)
        if now is None:
            continue  # configs differ between --smoke and --record
        for field in GATED_FIELDS:
            want, got = recorded[field], now[field]
            if want == got:
                continue
            if abs(got - want) > tolerance:
                failures.append(
                    f"{key}: {field} {got} drifted from recorded {want} "
                    f"(tolerance {tolerance})")
    return failures


SMOKE = dict(peers=16, tuples=120, queries=40, seed=0)
FULL = dict(peers=48, tuples=400, queries=120, seed=0)


# -- pytest entry points (collected by the benchmark suite) ------------------


@pytest.mark.parametrize("policy", POLICIES)
def test_overload_backpressure(policy):
    """2x saturation: shedding kicks in, admitted queries stay whole."""
    overlay = build_overlay("midas", peers=16, tuples=120, seed=0)
    base_rate, _solo = calibrate(overlay, capacity=4, service_time=1, seed=0)
    report = run_row(overlay, policy=policy, queries=40, rate=2 * base_rate,
                     seed=0, capacity=4, queue_limit=8, service_time=1)
    assert report.shed_rate > 0.0
    assert report.admitted_completeness == 1.0
    assert math.isfinite(report.p99)


def test_smoke_sweep_invariants():
    rows = sweep(**SMOKE)
    check_invariants(rows)


# -- CLI ---------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="concurrent engine latency/shedding under open-loop "
                    "load")
    add_gate_arguments(
        parser, baseline_path=BASELINE_PATH, default_tolerance=0.0,
        tolerance_help="allowed drift per recorded field (default 0: "
                       "simulated time is deterministic)")
    parser.add_argument("--peers", type=int, default=FULL["peers"])
    parser.add_argument("--tuples", type=int, default=FULL["tuples"])
    parser.add_argument("--queries", type=int, default=FULL["queries"])
    parser.add_argument("--seed", type=int, default=FULL["seed"])
    parser.add_argument("--trace-out", type=str, default=None,
                        metavar="PATH",
                        help="additionally trace one overloaded workload "
                             "and export it (.jsonl = JSONL records, else "
                             "Perfetto JSON)")
    args = parser.parse_args(argv)

    config = dict(SMOKE) if args.smoke else dict(
        peers=args.peers, tuples=args.tuples, queries=args.queries,
        seed=args.seed)
    rows = sweep(**config)
    check_invariants(rows)

    if args.trace_out:
        from repro.obs import QueryTrace, write_jsonl, write_perfetto

        trace = QueryTrace()
        overlay = build_overlay("midas", peers=config["peers"],
                                tuples=config["tuples"],
                                seed=config["seed"])
        base_rate, _solo = calibrate(overlay, capacity=4, service_time=1,
                                     seed=config["seed"])
        engine = QueryEngine(capacity=4, queue_limit=8, service_time=1,
                             sink=trace)
        run_workload(overlay,
                     make_spec("fifo", queries=min(config["queries"], 12),
                               rate=2 * base_rate, seed=config["seed"]),
                     engine=engine)
        if args.trace_out.endswith(".jsonl"):
            write_jsonl(trace, args.trace_out)
        else:
            write_perfetto(trace, args.trace_out)
        log(f"wrote overload trace to {args.trace_out}")

    if args.record:
        # the baseline covers the smoke config too, so the CI smoke run
        # always finds matching scenario keys to gate against
        smoke_rows = rows if args.smoke else sweep(**SMOKE)
        recorded = {row["key"]: row for row in smoke_rows}
        if not args.smoke:
            recorded.update({row["key"]: row for row in rows})
        write_json(BASELINE_PATH,
                   {"meta": {"smoke": SMOKE, "full": FULL,
                             "multipliers": MULTIPLIERS,
                             "policies": POLICIES},
                    "rows": recorded}, sort_keys=True)
        log(f"wrote baseline {BASELINE_PATH} ({len(recorded)} scenarios)")

    if args.out:
        write_json(args.out, rows)
        log(f"wrote {len(rows)} rows to {args.out}")
    elif not args.record:
        print(json.dumps(rows, indent=2))

    if args.compare:
        def passed(baseline):
            gated = sum(1 for row in rows
                        if row["key"] in baseline.get("rows", {}))
            return f"load gate passed ({gated} scenarios compared)"

        return gate(rows, args.compare, compare, args.tolerance,
                    passed=passed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
