"""Robustness: RIPPLE under churn and message loss (fault-injection layer).

Sweeps crash fraction x r x replication degree over MIDAS, Chord, CAN,
and the skip graph, and records the degradation profile: completeness, unreachable volume,
fired timeouts, retransmissions, re-routes, and — when a
:class:`~repro.overlays.replication.ReplicaDirectory` is attached —
recovered regions and replica reads, all riding on the benchmark's
``extra_info`` via :meth:`QueryStats.as_dict`.  The wall-clock number
measures the supervised simulator (acks, watchdogs, heartbeats, retries
included).

Also runnable as a script for quick sweeps outside pytest::

    PYTHONPATH=src python -m benchmarks.bench_churn --smoke
    PYTHONPATH=src python -m benchmarks.bench_churn --peers 128 \
        --out churn.json

    # refresh the committed completeness baseline (BENCH_churn.json)
    PYTHONPATH=src python -m benchmarks.bench_churn --record

    # CI gate: rerun the smoke config, compare against the baseline
    PYTHONPATH=src python -m benchmarks.bench_churn --smoke \
        --compare BENCH_churn.json --out bench_churn_smoke.json

Unlike the wall-clock kernels gate (``bench_kernels.py``), the churn gate
compares *simulated* completeness, which is fully deterministic (seeded
hashing, no wall clock) — so the default tolerance is zero: any drop in
the completeness of a recorded scenario is a robustness regression.
"""

import argparse
import json
import sys

import numpy as np
import pytest

from repro import (CanOverlay, ChordOverlay, LinearScore, MidasOverlay,
                   Rect, ReplicaDirectory, SimulationBudgetExceeded,
                   SkipGraphOverlay, TopKHandler)
from repro.net.faults import FaultPlan, resilient_ripple
from repro.queries.rangeq import RangeHandler

from ._gate import add_gate_arguments, gate, log, seeded_rng, write_json
from .conftest import attach

BASELINE_PATH = "BENCH_churn.json"


def build_overlay(kind, *, peers, tuples, seed):
    rng = seeded_rng(seed)
    if kind in ("chord", "skipgraph"):
        cls = ChordOverlay if kind == "chord" else SkipGraphOverlay
        overlay = cls(size=peers, seed=seed)
        overlay.load(rng.random((tuples, 1)) * 0.999)
        return overlay
    data = rng.random((tuples, 2)) * 0.999
    if kind == "midas":
        overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
    else:
        overlay = CanOverlay(2, size=1, seed=seed)
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay


def handler_for(kind, query):
    dims = 1 if kind in ("chord", "skipgraph") else 2
    if query == "topk":
        return TopKHandler(LinearScore([1.0] * dims), 8)
    return RangeHandler(Rect((0.0,) * dims, (1.0,) * dims))


def run_one(overlay, kind, query, r, crash_fraction, seed, *,
            drop_prob=0.05, jitter=1, horizon=64, replicas=None, sink=None):
    plan = FaultPlan.churn(overlay, crash_fraction=crash_fraction,
                           seed=seed, horizon=horizon,
                           drop_prob=drop_prob, jitter=jitter)
    handler = handler_for(kind, query)
    initiator = overlay.random_peer(np.random.default_rng(seed))
    return resilient_ripple(initiator, handler, r,
                            restriction=overlay.domain(), faults=plan,
                            replicas=replicas, sink=sink)


# -- pytest-benchmark sweep --------------------------------------------------

OVERLAYS = ("midas", "chord", "can", "skipgraph")
CHURN_GRID = [(0.0, 0), (0.1, 0), (0.1, 10 ** 9), (0.25, 0)]


@pytest.mark.parametrize("kind", OVERLAYS)
@pytest.mark.parametrize("crash,r", CHURN_GRID,
                         ids=[f"crash{int(c * 100)}-r{min(r, 99)}"
                              for c, r in CHURN_GRID])
def test_churn_sweep(benchmark, kind, crash, r):
    overlay = build_overlay(kind, peers=64, tuples=600, seed=17)

    def run():
        return run_one(overlay, kind, "range", r, crash, seed=29)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    stats = result.stats
    assert 0.0 <= stats.completeness <= 1.0
    if crash == 0.0:
        assert stats.unreachable_volume == 0.0
    elif stats.completeness < 1.0:
        assert stats.unreachable_volume > 0.0
        assert stats.timeouts > 0
    benchmark.extra_info["overlay"] = kind
    benchmark.extra_info["crash_fraction"] = crash
    benchmark.extra_info["r"] = min(r, 10 ** 6)
    attach(benchmark, result)


@pytest.mark.parametrize("kind", OVERLAYS)
def test_loss_only_recovers(benchmark, kind):
    """15% message loss, no crashes: retries repair everything."""
    overlay = build_overlay(kind, peers=48, tuples=400, seed=5)

    def run():
        plan = FaultPlan(seed=31, drop_prob=0.15)
        handler = handler_for(kind, "range")
        return resilient_ripple(overlay.random_peer(np.random.default_rng(5)),
                                handler, 0, restriction=overlay.domain(),
                                faults=plan)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.completeness == 1.0
    assert result.stats.retries > 0
    benchmark.extra_info["overlay"] = kind
    attach(benchmark, result)


@pytest.mark.parametrize("kind", OVERLAYS)
def test_replicated_sweep(benchmark, kind):
    """25% from-time-zero churn with R=2 replication and self-healing:
    completeness must not fall below the unreplicated run's."""
    overlay = build_overlay(kind, peers=48, tuples=400, seed=17)
    directory = ReplicaDirectory(overlay, copies=2)

    def run():
        return run_one(overlay, kind, "range", 0, 0.25, seed=29,
                       horizon=4, replicas=directory)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    bare = run_one(overlay, kind, "range", 0, 0.25, seed=29, horizon=4)
    assert result.stats.completeness >= bare.stats.completeness
    benchmark.extra_info["overlay"] = kind
    benchmark.extra_info["replicas"] = 2
    attach(benchmark, result)


# -- CLI sweep ---------------------------------------------------------------

def scenario_key(kind, *, peers, tuples, seed, crash, r, replicas,
                 drop_prob):
    """Stable row identity for the recorded-baseline compare gate."""
    return (f"{kind}-p{peers}-t{tuples}-s{seed}-c{int(crash * 100)}"
            f"-r{min(r, 10 ** 6)}-R{replicas}-d{int(drop_prob * 100)}")


def sweep(*, peers, tuples, seeds, crash_fractions, rs, replication,
          drop_prob, jitter, horizon=8):
    """Completeness-vs-churn rows across replication degrees.

    Crashes are drawn over a short ``horizon`` so they land while the
    query is in flight (late crashes hit peers that already answered and
    measure nothing).  A run that blows the event budget is recorded with
    its partial stats and flagged, never dropped.
    """
    rows = []
    for kind in OVERLAYS:
        for seed in seeds:
            overlay = build_overlay(kind, peers=peers, tuples=tuples,
                                    seed=seed)
            directories = {0: None}
            for copies in replication:
                if copies > 0:
                    directories[copies] = ReplicaDirectory(overlay,
                                                           copies=copies)
            for crash in crash_fractions:
                for r in rs:
                    for copies in replication:
                        row = {"overlay": kind, "peers": peers,
                               "tuples": tuples, "seed": seed,
                               "crash_fraction": crash,
                               "r": min(r, 10 ** 6), "replicas": copies,
                               "drop_prob": drop_prob,
                               "budget_exceeded": False}
                        row["key"] = scenario_key(
                            kind, peers=peers, tuples=tuples, seed=seed,
                            crash=crash, r=r, replicas=copies,
                            drop_prob=drop_prob)
                        try:
                            result = run_one(
                                overlay, kind, "range", r, crash,
                                seed=seed + 1000, drop_prob=drop_prob,
                                jitter=jitter, horizon=horizon,
                                replicas=directories[copies])
                            row.update(result.stats.as_dict())
                        except SimulationBudgetExceeded as exc:
                            row["budget_exceeded"] = True
                            if exc.stats is not None:
                                row.update(exc.stats.as_dict())
                        rows.append(row)
    return rows


def compare(fresh_rows, baseline, tolerance):
    """Deterministic completeness gate; returns failure strings.

    Every baseline scenario re-run by the fresh sweep must reach at least
    ``recorded completeness - tolerance`` (scenarios with different
    configs are skipped, mirroring the kernels gate).
    """
    fresh = {row["key"]: row for row in fresh_rows}
    failures = []
    for key, recorded in baseline.get("rows", {}).items():
        now = fresh.get(key)
        if now is None:
            continue  # configs differ between --smoke and --record
        floor = recorded["completeness"] - tolerance
        if now["completeness"] < floor:
            failures.append(
                f"{key}: completeness {now['completeness']:.4f} below "
                f"recorded {recorded['completeness']:.4f} "
                f"(tolerance {tolerance})")
        if now["budget_exceeded"] and not recorded["budget_exceeded"]:
            failures.append(f"{key}: run newly exceeds its event budget")
    return failures


SMOKE = dict(peers=16, tuples=120, seeds=[0],
             crash_fractions=[0.0, 0.25], rs=[0, 10 ** 9],
             replication=[0, 1, 2])


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="RIPPLE completeness/latency under churn")
    add_gate_arguments(
        parser, baseline_path=BASELINE_PATH, default_tolerance=0.0,
        tolerance_help="allowed completeness drop per scenario "
                       "(default 0: the simulation is deterministic)")
    parser.add_argument("--peers", type=int, default=64)
    parser.add_argument("--tuples", type=int, default=600)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--crash", type=float, nargs="+",
                        default=[0.0, 0.1, 0.25])
    parser.add_argument("--replicas", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--drop", type=float, default=0.05)
    parser.add_argument("--jitter", type=int, default=1)
    parser.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                        help="additionally record one supervised query "
                             "under churn with a trace sink and export it "
                             "(.jsonl = JSONL records, else Perfetto JSON)")
    args = parser.parse_args(argv)

    if args.smoke:
        config = dict(SMOKE, drop_prob=args.drop, jitter=args.jitter)
    else:
        config = dict(peers=args.peers, tuples=args.tuples, seeds=args.seeds,
                      crash_fractions=args.crash, rs=[0, 10 ** 9],
                      replication=args.replicas, drop_prob=args.drop,
                      jitter=args.jitter)
    rows = sweep(**config)

    if args.trace_out:
        from repro.obs import QueryTrace, write_jsonl, write_perfetto
        from repro.obs.traceview import render

        trace = QueryTrace()
        overlay = build_overlay("midas", peers=config["peers"],
                                tuples=config["tuples"],
                                seed=config["seeds"][0])
        run_one(overlay, "midas", "range", 0, config["crash_fractions"][-1],
                seed=config["seeds"][0] + 1000,
                drop_prob=config["drop_prob"], jitter=config["jitter"],
                sink=trace)
        if args.trace_out.endswith(".jsonl"):
            write_jsonl(trace, args.trace_out)
        else:
            write_perfetto(trace, args.trace_out)
        log(f"wrote churn trace to {args.trace_out}")
        log(render(trace))

    if args.record:
        # the baseline covers the smoke config too, so the CI smoke run
        # always finds matching scenario keys to gate against
        smoke_rows = rows if args.smoke else \
            sweep(**dict(SMOKE, drop_prob=args.drop, jitter=args.jitter))
        recorded = {row["key"]: row for row in smoke_rows}
        if not args.smoke:
            recorded.update({row["key"]: row for row in rows})
        write_json(BASELINE_PATH,
                   {"meta": {"drop_prob": args.drop, "jitter": args.jitter,
                             "smoke": SMOKE},
                    "rows": recorded}, sort_keys=True)
        log(f"wrote baseline {BASELINE_PATH} ({len(recorded)} scenarios)")

    if args.out:
        write_json(args.out, rows)
        log(f"wrote {len(rows)} rows to {args.out}")
    elif not args.record:
        print(json.dumps(rows, indent=2))

    # sanity for CI: every fault-free run is complete, every run bounded
    for row in rows:
        assert 0.0 <= row["completeness"] <= 1.0
        if row["crash_fraction"] == 0.0 and row["drop_prob"] == 0.0:
            assert row["completeness"] == 1.0

    if args.compare:
        def passed(baseline):
            gated = sum(1 for row in rows
                        if row["key"] in baseline.get("rows", {}))
            return f"churn gate passed ({gated} scenarios compared)"

        return gate(rows, args.compare, compare, args.tolerance,
                    passed=passed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
