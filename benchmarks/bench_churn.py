"""Robustness: RIPPLE under churn and message loss (fault-injection layer).

Sweeps crash fraction x r over MIDAS, Chord, and CAN and records the
degradation profile: completeness, unreachable volume, fired timeouts,
retransmissions, and re-routes all ride on the benchmark's ``extra_info``
via :meth:`QueryStats.as_dict`.  The wall-clock number measures the
supervised simulator (acks, watchdogs, retries included).

Also runnable as a script for quick sweeps outside pytest::

    PYTHONPATH=src python -m benchmarks.bench_churn --smoke
    PYTHONPATH=src python -m benchmarks.bench_churn --peers 128 \
        --out churn.json
"""

import argparse
import json
import sys

import numpy as np
import pytest

from repro import (CanOverlay, ChordOverlay, LinearScore, MidasOverlay,
                   Rect, TopKHandler)
from repro.net.faults import FaultPlan, resilient_ripple
from repro.queries.rangeq import RangeHandler

from .conftest import attach


def build_overlay(kind, *, peers, tuples, seed):
    rng = np.random.default_rng(seed)
    if kind == "chord":
        overlay = ChordOverlay(size=peers, seed=seed)
        overlay.load(rng.random((tuples, 1)) * 0.999)
        return overlay
    data = rng.random((tuples, 2)) * 0.999
    if kind == "midas":
        overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
    else:
        overlay = CanOverlay(2, size=1, seed=seed)
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay


def handler_for(kind, query):
    dims = 1 if kind == "chord" else 2
    if query == "topk":
        return TopKHandler(LinearScore([1.0] * dims), 8)
    return RangeHandler(Rect((0.0,) * dims, (1.0,) * dims))


def run_one(overlay, kind, query, r, crash_fraction, seed, *,
            drop_prob=0.05, jitter=1):
    plan = FaultPlan.churn(overlay, crash_fraction=crash_fraction,
                           seed=seed, drop_prob=drop_prob, jitter=jitter)
    handler = handler_for(kind, query)
    initiator = overlay.random_peer(np.random.default_rng(seed))
    return resilient_ripple(initiator, handler, r,
                            restriction=overlay.domain(), faults=plan)


# -- pytest-benchmark sweep --------------------------------------------------

OVERLAYS = ("midas", "chord", "can")
CHURN_GRID = [(0.0, 0), (0.1, 0), (0.1, 10 ** 9), (0.25, 0)]


@pytest.mark.parametrize("kind", OVERLAYS)
@pytest.mark.parametrize("crash,r", CHURN_GRID,
                         ids=[f"crash{int(c * 100)}-r{min(r, 99)}"
                              for c, r in CHURN_GRID])
def test_churn_sweep(benchmark, kind, crash, r):
    overlay = build_overlay(kind, peers=64, tuples=600, seed=17)

    def run():
        return run_one(overlay, kind, "range", r, crash, seed=29)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    stats = result.stats
    assert 0.0 <= stats.completeness <= 1.0
    if crash == 0.0:
        assert stats.unreachable_volume == 0.0
    elif stats.completeness < 1.0:
        assert stats.unreachable_volume > 0.0
        assert stats.timeouts > 0
    benchmark.extra_info["overlay"] = kind
    benchmark.extra_info["crash_fraction"] = crash
    benchmark.extra_info["r"] = min(r, 10 ** 6)
    attach(benchmark, result)


@pytest.mark.parametrize("kind", OVERLAYS)
def test_loss_only_recovers(benchmark, kind):
    """15% message loss, no crashes: retries repair everything."""
    overlay = build_overlay(kind, peers=48, tuples=400, seed=5)

    def run():
        plan = FaultPlan(seed=31, drop_prob=0.15)
        handler = handler_for(kind, "range")
        return resilient_ripple(overlay.random_peer(np.random.default_rng(5)),
                                handler, 0, restriction=overlay.domain(),
                                faults=plan)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.completeness == 1.0
    assert result.stats.retries > 0
    benchmark.extra_info["overlay"] = kind
    attach(benchmark, result)


# -- CLI sweep ---------------------------------------------------------------

def sweep(*, peers, tuples, seeds, crash_fractions, rs, drop_prob, jitter):
    rows = []
    for kind in OVERLAYS:
        for seed in seeds:
            overlay = build_overlay(kind, peers=peers, tuples=tuples,
                                    seed=seed)
            for crash in crash_fractions:
                for r in rs:
                    result = run_one(overlay, kind, "range", r, crash,
                                     seed=seed + 1000,
                                     drop_prob=drop_prob, jitter=jitter)
                    row = {"overlay": kind, "peers": peers, "seed": seed,
                           "crash_fraction": crash, "r": min(r, 10 ** 6),
                           "drop_prob": drop_prob}
                    row.update(result.stats.as_dict())
                    rows.append(row)
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="RIPPLE completeness/latency under churn")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny network, one seed (CI sanity run)")
    parser.add_argument("--peers", type=int, default=64)
    parser.add_argument("--tuples", type=int, default=600)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--crash", type=float, nargs="+",
                        default=[0.0, 0.1, 0.25])
    parser.add_argument("--drop", type=float, default=0.05)
    parser.add_argument("--jitter", type=int, default=1)
    parser.add_argument("--out", type=str, default=None,
                        help="write JSON rows here instead of stdout")
    args = parser.parse_args(argv)

    if args.smoke:
        args.peers, args.tuples, args.seeds = 16, 120, [0]
        args.crash = [0.0, 0.25]

    rows = sweep(peers=args.peers, tuples=args.tuples, seeds=args.seeds,
                 crash_fractions=args.crash, rs=[0, 10 ** 9],
                 drop_prob=args.drop, jitter=args.jitter)
    payload = json.dumps(rows, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {len(rows)} rows to {args.out}", file=sys.stderr)
    else:
        print(payload)

    # sanity for CI: every fault-free run is complete, every run bounded
    for row in rows:
        assert 0.0 <= row["completeness"] <= 1.0
        if row["crash_fraction"] == 0.0 and row["drop_prob"] == 0.0:
            assert row["completeness"] == 1.0
    return 0


if __name__ == "__main__":
    sys.exit(main())
