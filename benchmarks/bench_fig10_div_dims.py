"""Figure 10: k-diversification vs dimensionality (SYNTH data).

Expected shape (Section 7.2.3): the baseline's cost improves somewhat
with dimensionality (denser CAN routing), RIPPLE stays well below it in
congestion throughout.
"""

import pytest

from repro.queries.diversify import DiversificationObjective, greedy_diversify

from .conftest import attach
from .bench_fig9_div_scale import METHODS, make_engine


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("dims", (3, 6))
def test_fig10_div_dims(benchmark, overlays, config, rng, dims, method):
    data = overlays.synth(dims)
    objective = DiversificationObjective(data[17], config.default_lambda,
                                         p=1)
    engine = make_engine(method, overlays, data, f"synth{dims}",
                         2 ** 6, rng)

    def run():
        return greedy_diversify(engine, objective, config.div_k,
                                max_iters=config.div_max_iters)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.answer[0]) == config.div_k
    attach(benchmark, result)
