"""Arena scale benchmark and the BENCH_scale.json regression baseline.

Builds MIDAS networks as structure-of-arrays arenas
(:func:`repro.overlays.arena_build.midas_arena`) at 1k–1M peers and runs
one seeded top-k and one seeded skyline query per size through the
batched wavefront engine.  Every row records:

* the deterministic query facts — processed peers, hop latency, answer
  checksums — which are pinned **exactly** against the baseline (the
  network and the queries are fully seeded, so any drift is a behavior
  change, not noise);
* a ``parity`` flag: the same queries re-run through the scalar
  depth-first engine must produce bit-identical answers and
  ``QueryStats`` (the wavefront's contract, enforced at every size
  including 1M);
* wall-clock build/query seconds and the process peak RSS, which are
  tolerance-banded (CI machines are slow, noisy, and shared).

Usage::

    # refresh the committed baseline (includes the 1M-peer row)
    PYTHONPATH=src python -m benchmarks.bench_scale --record

    # CI gate: 1k/10k rows, compare against the committed baseline
    PYTHONPATH=src python -m benchmarks.bench_scale --smoke \
        --compare BENCH_scale.json --out bench_scale_smoke.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

import numpy as np

from repro.common.scoring import LinearScore
from repro.overlays.arena_build import midas_arena
from repro.overlays.arena import wavefront_execute
from repro.queries.skyline import distributed_skyline
from repro.queries.topk import distributed_topk

from ._gate import (add_gate_arguments, compare_rss, gate, log, peak_rss_mib,
                    seeded_rng, write_json)

BASELINE_PATH = "BENCH_scale.json"

#: Peer counts per mode.  Smoke stays under a second; the full 1M row is
#: record-mode only (it is a scale demonstration, not a CI-friendly gate).
SMOKE_SIZES = (1_000, 10_000)
DEFAULT_SIZES = (1_000, 10_000, 100_000)
RECORD_SIZES = (1_000, 10_000, 100_000, 1_000_000)

_DIMS = 2
_SEED = 9
_WEIGHTS = (0.3, 0.7)
_K = 10

#: Tuples per network: a few rows per peer, capped so the 1M-peer row
#: measures substrate + engine scale rather than raw data volume.
_TUPLE_CAP = 2_000_000


def _wallclock():
    """Monotonic seconds; this gate times real build/query wall time
    (the RPL002-sanctioned helper shape)."""
    return time.perf_counter()


def _stats_dict(result):
    return dataclasses.asdict(result.stats)


def _topk_checksum(answer):
    return round(float(sum(score for score, _ in answer)), 9)


def _skyline_checksum(answer):
    return round(float(sum(sum(point) for point in answer)), 9)


def scale_row(peers, *, log=lambda msg: None):
    """Build one arena and measure its seeded top-k + skyline queries."""
    rng = seeded_rng(_SEED + peers)
    tuples = min(5 * peers, _TUPLE_CAP)
    data = rng.random((tuples, _DIMS)) * 0.999

    start = _wallclock()
    arena = midas_arena(peers, dims=_DIMS, seed=_SEED, data=data)
    build_s = _wallclock() - start
    initiator = arena.peer(0)
    fn = LinearScore(_WEIGHTS)

    start = _wallclock()
    topk = distributed_topk(initiator, fn, _K, restriction=arena.domain(),
                            executor=wavefront_execute)
    topk_s = _wallclock() - start
    start = _wallclock()
    sky = distributed_skyline(initiator, _DIMS, restriction=arena.domain(),
                              executor=wavefront_execute)
    sky_s = _wallclock() - start

    # The wavefront contract, enforced at every size: bit-identical
    # answers and stats versus the scalar depth-first engine.
    scalar_topk = distributed_topk(initiator, fn, _K,
                                   restriction=arena.domain())
    scalar_sky = distributed_skyline(initiator, _DIMS,
                                     restriction=arena.domain())
    parity = (topk.answer == scalar_topk.answer
              and _stats_dict(topk) == _stats_dict(scalar_topk)
              and sky.answer == scalar_sky.answer
              and _stats_dict(sky) == _stats_dict(scalar_sky))

    row = {
        "peers": peers,
        "tuples": tuples,
        "build_s": round(build_s, 4),
        "substrate_mib": round(arena.nbytes() / (1024 * 1024), 2),
        "topk": {"latency": topk.stats.latency,
                 "processed": topk.stats.processed,
                 "checksum": _topk_checksum(topk.answer),
                 "seconds": round(topk_s, 4)},
        "skyline": {"latency": sky.stats.latency,
                    "processed": sky.stats.processed,
                    "size": len(sky.answer),
                    "checksum": _skyline_checksum(sky.answer),
                    "seconds": round(sky_s, 4)},
        "parity": parity,
        "peak_rss_mib": round(peak_rss_mib(), 1),
    }
    log(f"peers={peers}: build {build_s:.2f}s, "
        f"topk {topk_s * 1e3:.0f}ms ({topk.stats.processed} processed), "
        f"skyline {sky_s * 1e3:.0f}ms ({sky.stats.processed} processed), "
        f"parity={'ok' if parity else 'FAIL'}")
    return row


#: Deterministic per-row facts pinned exactly by the compare gate.
_EXACT_QUERY_KEYS = ("latency", "processed", "checksum")


def compare(fresh, baseline, tolerance):
    """Exact-pin the deterministic facts, band the wall/RSS columns."""
    failures = []
    recorded_rows = {row["peers"]: row for row in baseline.get("rows", [])}
    for row in fresh.get("rows", []):
        recorded = recorded_rows.get(row["peers"])
        if recorded is None:
            continue  # sizes differ between --smoke and --record
        label = f"peers={row['peers']}"
        if not row["parity"]:
            failures.append(f"{label}: wavefront/scalar parity broken")
        for field in ("tuples", "substrate_mib"):
            if row[field] != recorded[field]:
                failures.append(f"{label}: {field} {row[field]} != "
                                f"recorded {recorded[field]}")
        for query in ("topk", "skyline"):
            keys = _EXACT_QUERY_KEYS + (("size",) if query == "skyline"
                                        else ())
            for key in keys:
                if row[query][key] != recorded[query][key]:
                    failures.append(
                        f"{label}: {query}.{key} {row[query][key]} != "
                        f"recorded {recorded[query][key]}")
            ceiling = recorded[query]["seconds"] * tolerance
            if row[query]["seconds"] > max(ceiling, 0.5):
                failures.append(
                    f"{label}: {query} took {row[query]['seconds']:.2f}s, "
                    f"over {tolerance:g}x recorded "
                    f"{recorded[query]['seconds']:.2f}s")
        ceiling = recorded["build_s"] * tolerance
        if row["build_s"] > max(ceiling, 0.5):
            failures.append(
                f"{label}: build took {row['build_s']:.2f}s, over "
                f"{tolerance:g}x recorded {recorded['build_s']:.2f}s")
        failures.extend(compare_rss(
            row["peak_rss_mib"], recorded["peak_rss_mib"],
            label=label, tolerance=0.5))
    return failures


def run(sizes, *, log=lambda msg: None):
    return {
        "meta": {"sizes": list(sizes), "dims": _DIMS, "seed": _SEED,
                 "k": _K, "weights": list(_WEIGHTS),
                 "python": sys.version.split()[0],
                 "numpy": np.__version__},
        "rows": [scale_row(peers, log=log) for peers in sizes],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="arena substrate scale benchmark (100k-1M peers)")
    add_gate_arguments(
        parser, baseline_path=BASELINE_PATH, default_tolerance=4.0,
        tolerance_help="wall-clock ceiling as a multiple of the recorded "
                       "seconds (default 4.0: CI machines are noisy); "
                       "deterministic row facts are always pinned exactly")
    parser.add_argument("--sizes", type=int, nargs="*", default=None,
                        help="explicit peer counts (overrides mode sizes)")
    args = parser.parse_args(argv)

    sizes = args.sizes
    if sizes is None:
        sizes = (SMOKE_SIZES if args.smoke
                 else RECORD_SIZES if args.record else DEFAULT_SIZES)

    fresh = run(sizes, log=log)

    if args.record:
        write_json(BASELINE_PATH, fresh)
        log(f"wrote baseline {BASELINE_PATH}")
    if args.out:
        write_json(args.out, fresh)
        log(f"wrote {args.out}")
    if not (args.record or args.out):
        print(json.dumps(fresh, indent=2))

    if any(not row["parity"] for row in fresh["rows"]):
        log("REGRESSION wavefront/scalar parity broken")
        return 1
    if args.compare:
        return gate(fresh, args.compare, compare, args.tolerance,
                    passed=f"compare gate passed against {args.compare} "
                           f"(tolerance {args.tolerance})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
