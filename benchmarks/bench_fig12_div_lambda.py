"""Figure 12: k-diversification vs the relevance/diversity weight lambda.

Expected shape (Section 7.2.3): cost peaks at intermediate lambda and
drops toward both extremes — near 0 or 1 the search confines itself to
small parts of the domain (borders resp. the query's vicinity).
"""

import pytest

from repro.queries.diversify import DiversificationObjective, greedy_diversify

from .conftest import attach
from .bench_fig9_div_scale import METHODS, make_engine


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("lam", (0.1, 0.5, 0.9))
def test_fig12_div_lambda(benchmark, overlays, config, rng, lam, method):
    data = overlays.mirflickr()
    objective = DiversificationObjective(data[512], lam, p=1)
    engine = make_engine(method, overlays, data, "mir", 2 ** 6, rng)

    def run():
        return greedy_diversify(engine, objective, config.div_k,
                                max_iters=config.div_max_iters)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.answer[0]) == config.div_k
    attach(benchmark, result)
