"""Figure 11: k-diversification vs result size k (MIRFLICKR-like data).

Expected shape (Section 7.2.3): costs grow with k overall, but the
shrinking search area (k - 1 restrictions) dampens the growth for
ripple-fast.
"""

import pytest

from repro.queries.diversify import DiversificationObjective, greedy_diversify

from .conftest import attach
from .bench_fig9_div_scale import METHODS, make_engine


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k", (5, 15))
def test_fig11_div_k(benchmark, overlays, config, rng, k, method):
    data = overlays.mirflickr()
    objective = DiversificationObjective(data[99], config.default_lambda,
                                         p=1)
    engine = make_engine(method, overlays, data, "mir", 2 ** 6, rng)

    def run():
        return greedy_diversify(engine, objective, k,
                                max_iters=config.div_max_iters)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.answer[0]) == k
    attach(benchmark, result)
