"""Kernel microbenchmarks and the BENCH_kernels.json regression baseline.

Times the vectorized rank-query kernels (array skyline, skyline merge,
k-skyband, the store's cached top-k score index) against faithful copies
of the pre-optimization implementations, plus fig7/fig8-style end-to-end
skyline sweeps over a 200-peer MIDAS network run once with and once
without the kernel/caching fast paths.  Every timed pair is also a
correctness check: legacy and current answers must match exactly.

Usage::

    # refresh the committed baseline (full sizes, writes BENCH_kernels.json)
    PYTHONPATH=src python -m benchmarks.bench_kernels --record

    # CI gate: small sizes, compare fresh speedups against the baseline
    PYTHONPATH=src python -m benchmarks.bench_kernels --smoke \
        --compare BENCH_kernels.json --out bench_kernels_smoke.json

The compare gate is a *tolerance* gate: a fresh speedup may fall to
``tolerance * recorded`` (CI machines are slow and noisy) but never below
break-even — catching a regression that silently reverts a kernel to its
quadratic-copying past without flaking on absolute wall-clock numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager

import numpy as np

from repro.common.geometry import as_point
from repro.common.store import LocalStore
from repro.core.framework import SLOW
from repro.experiments import builders
from repro.queries.skyline import (distributed_skyline, k_skyband_of_array,
                                   merge_skylines, skyline_of_array,
                                   skyline_reference)

from ._gate import add_gate_arguments, gate, log, seeded_rng, write_json
from .conftest import bench_config

BASELINE_PATH = "BENCH_kernels.json"

# -- legacy kernels (verbatim pre-optimization implementations) --------------
# These are the seed-tree kernels: incremental vstack survivor matrix,
# 2-ary merge with separate <=/< tensors, per-row skyband scan, and a
# score-everything top-k retrieval.  They are the speedup denominators and
# the correctness oracles for everything below.


def legacy_skyline_of_array(array):
    array = np.asarray(array, dtype=float)
    if len(array) == 0:
        return array
    sums = array.sum(axis=1)
    keys = tuple(array[:, dim] for dim in range(array.shape[1] - 1, -1, -1))
    order = np.lexsort(keys + (sums,))
    data = array[order]
    kept_rows = []
    kept_matrix = np.empty((0, array.shape[1]))
    for row in data:
        if len(kept_rows):
            not_worse = np.all(kept_matrix <= row, axis=1)
            strictly = np.any(kept_matrix < row, axis=1)
            if np.any(not_worse & strictly):
                continue
        kept_rows.append(row)
        kept_matrix = np.vstack([kept_matrix, row]) if len(kept_rows) > 1 \
            else row[None, :]
    return np.array(kept_rows)


def legacy_merge_skylines(first, second):
    first = [p for p in dict.fromkeys(first)]
    second = [p for p in dict.fromkeys(second) if p not in set(first)]
    if not first or not second:
        return sorted([*first, *second])
    a = np.asarray(first, dtype=float)
    b = np.asarray(second, dtype=float)
    le = a[:, None, :] <= b[None, :, :]
    lt = a[:, None, :] < b[None, :, :]
    a_dominates_b = le.all(axis=2) & lt.any(axis=2)
    b_dominates_a = (b[:, None, :] <= a[None, :, :]).all(axis=2) \
        & (b[:, None, :] < a[None, :, :]).any(axis=2)
    keep_a = ~b_dominates_a.any(axis=0)
    keep_b = ~a_dominates_b.any(axis=0)
    return sorted([p for p, k in zip(first, keep_a) if k]
                  + [p for p, k in zip(second, keep_b) if k])


def legacy_merge_fold(*collections):
    """N-ary shim over the 2-ary legacy merge (the pre-change call shape)."""
    if not collections:
        return []
    acc = list(dict.fromkeys(collections[0]))
    for other in collections[1:]:
        acc = legacy_merge_skylines(acc, other)
    return acc


def legacy_k_skyband_of_array(array, k, *, maximize=False):
    if k < 1:
        raise ValueError("k must be at least 1")
    array = np.asarray(array, dtype=float)
    if len(array) == 0:
        return array
    data = -array if maximize else array
    keep = []
    for i, row in enumerate(data):
        not_worse = np.all(data <= row, axis=1)
        strictly = np.any(data < row, axis=1)
        if int((not_worse & strictly).sum()) < k:
            keep.append(i)
    return array[keep]


def legacy_top_scoring(store, fn, limit, *, above=-np.inf):
    """Pre-change LocalStore.top_scoring: re-scores the array every call."""
    if len(store) == 0 or limit <= 0:
        return []
    scores = fn.score_batch(store.array)
    eligible = np.flatnonzero(scores >= above)
    if len(eligible) == 0:
        return []
    order = eligible[np.argsort(-scores[eligible], kind="stable")][:limit]
    return [(float(scores[i]), as_point(store.array[i])) for i in order]


@contextmanager
def legacy_mode():
    """Run end-to-end queries on the pre-optimization code paths.

    Swaps the module-level skyline kernels for their legacy copies and
    disables the store's version-keyed computation cache, restoring the
    double-reduction-per-peer behavior the cache exists to remove.
    """
    import repro.queries.skyline as sky

    saved = (sky.skyline_of_array, sky.merge_skylines,
             LocalStore.cache_enabled)
    sky.skyline_of_array = legacy_skyline_of_array
    sky.merge_skylines = legacy_merge_fold
    LocalStore.cache_enabled = False
    try:
        yield
    finally:
        (sky.skyline_of_array, sky.merge_skylines,
         LocalStore.cache_enabled) = saved


# -- timing helpers ----------------------------------------------------------


def _wallclock():
    """Monotonic seconds; this benchmark measures real kernel wall time.

    The kernels-vs-legacy gate is the codebase's sanctioned wall-clock
    consumer outside the experiment runner; RPL002 allowlists exactly
    this helper shape.
    """
    return time.perf_counter()


def best_of(fn, reps):
    best, result = float("inf"), None
    for _ in range(reps):
        start = _wallclock()
        result = fn()
        best = min(best, _wallclock() - start)
    return best, result


def entry(legacy_s, current_s, **extra):
    return {"legacy_s": round(legacy_s, 6), "current_s": round(current_s, 6),
            "speedup": round(legacy_s / current_s, 2), **extra}


# -- kernel microbenchmarks --------------------------------------------------


def kernel_suite(*, n, skyband_n, reps, log):
    rng = seeded_rng(7)
    out = {}

    for dims in (2, 4, 6):
        data = rng.random((n, dims))
        tl, rl = best_of(lambda: legacy_skyline_of_array(data), reps)
        tc, rc = best_of(lambda: skyline_of_array(data), reps)
        assert np.array_equal(rl, rc), f"skyline mismatch at d={dims}"
        out[f"skyline_d{dims}"] = entry(tl, tc, n=n, dims=dims,
                                             skyline=len(rc))
        log(f"skyline n={n} d={dims}: {tl / tc:.1f}x")

    # duplicate-heavy input exercises the collapse/re-expand path
    dup = np.repeat(rng.random((max(n // 8, 1), 3)), 8, axis=0)
    rng.shuffle(dup)
    tl, rl = best_of(lambda: legacy_skyline_of_array(dup), reps)
    tc, rc = best_of(lambda: skyline_of_array(dup), reps)
    assert np.array_equal(rl, rc), "skyline mismatch on duplicates"
    out["skyline_dup_d3"] = entry(tl, tc, n=len(dup), dims=3)
    log(f"skyline duplicates n={len(dup)}: {tl / tc:.1f}x")

    # folding 16 partial skylines — the shape of Algorithm 13 at a
    # sequential peer with many children
    parts = []
    for _ in range(16):
        chunk = rng.random((max(n // 16, 2), 4))
        parts.append(sorted(as_point(row)
                            for row in legacy_skyline_of_array(chunk)))
    tl, rl = best_of(lambda: legacy_merge_fold(*parts), reps)
    tc, rc = best_of(lambda: merge_skylines(*parts), reps)
    assert rl == rc, "merge mismatch"
    out["merge_fold16_d4"] = entry(tl, tc, parts=16, dims=4)
    log(f"merge fold 16 parts: {tl / tc:.1f}x")

    data = rng.random((skyband_n, 4))
    tl, rl = best_of(lambda: legacy_k_skyband_of_array(data, 8), reps)
    tc, rc = best_of(lambda: k_skyband_of_array(data, 8), reps)
    assert np.array_equal(rl, rc), "skyband mismatch"
    out["skyband_d4_k8"] = entry(tl, tc, n=skyband_n, dims=4,
                                               k=8)
    log(f"skyband n={skyband_n}: {tl / tc:.1f}x")

    # cached score index: one top-k sweep = many top_scoring calls with a
    # tightening threshold against a static store
    from repro.common.scoring import LinearScore

    store = LocalStore(4)
    store.bulk_load(rng.random((n, 4)))
    fn = LinearScore((0.4, 0.3, 0.2, 0.1))
    taus = np.linspace(0.0, 0.8, 25)

    def sweep(top_scoring):
        return [top_scoring(fn, 16, above=float(tau)) for tau in taus]

    tl, rl = best_of(lambda: sweep(
        lambda f, lim, above: legacy_top_scoring(store, f, lim,
                                                 above=above)), reps)
    tc, rc = best_of(lambda: sweep(
        lambda f, lim, above: store.top_scoring(f, lim, above=above)), reps)
    assert rl == rc, "top_scoring mismatch"
    out["topk_index"] = entry(tl, tc, n=n, calls=len(taus))
    log(f"top-k score index ({len(taus)} calls): {tl / tc:.1f}x")

    return out


# -- end-to-end sweeps (fig7/fig8 shape) -------------------------------------


def e2e_suite(*, peers, tuples, reps, log):
    config = bench_config().scaled(nba_tuples=tuples, synth_tuples=tuples,
                                   synth_clusters=max(tuples // 20, 10))
    out = {}
    for name, data in (("fig7_nba", builders.nba_min(config, 7)),
                       ("fig8_synth_d6", builders.synth(config, 6, 7))):
        overlay = builders.build_midas(data, peers, 7,
                                       link_policy="boundary")
        dims = data.shape[1]
        rng = seeded_rng(11)
        initiators = [overlay.random_peer(rng) for _ in range(2)]
        reference = skyline_reference(data)

        def sweep():
            results = []
            for initiator in initiators:
                for r in (0, SLOW):
                    results.append(distributed_skyline(
                        initiator, dims, restriction=overlay.domain(), r=r))
            return results

        with legacy_mode():
            tl, legacy_results = best_of(sweep, reps)
        tc, current_results = best_of(sweep, reps)
        for old, new in zip(legacy_results, current_results):
            assert old.answer == new.answer == reference, \
                f"{name}: legacy/current answers diverge"
        key = name
        out[key] = entry(tl, tc, peers=peers, tuples=tuples, dims=dims,
                         queries=len(initiators) * 2)
        log(f"{key}: {tl / tc:.1f}x")
    return out


# -- baseline compare gate ---------------------------------------------------


def compare(fresh, baseline, tolerance):
    """Tolerance-gated regression check; returns failure strings."""
    failures = []
    for section in ("kernels", "end_to_end"):
        for name, recorded in baseline.get(section, {}).items():
            now = fresh.get(section, {}).get(name)
            if now is None:
                continue  # sizes differ between --smoke and --record
            floor = max(1.0, recorded["speedup"] * tolerance)
            if now["speedup"] < floor:
                failures.append(
                    f"{section}/{name}: speedup {now['speedup']:.2f}x below "
                    f"floor {floor:.2f}x (recorded {recorded['speedup']:.2f}x"
                    f" * tolerance {tolerance})")
    return failures


def run(*, n, skyband_n, peers, tuples, reps, log=lambda msg: None):
    return {
        "meta": {"n": n, "skyband_n": skyband_n, "peers": peers,
                 "tuples": tuples, "reps": reps,
                 "python": sys.version.split()[0],
                 "numpy": np.__version__},
        "kernels": kernel_suite(n=n, skyband_n=skyband_n, reps=reps, log=log),
        "end_to_end": e2e_suite(peers=peers, tuples=tuples, reps=reps,
                                log=log),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="rank-query kernel micro/e2e benchmarks")
    add_gate_arguments(
        parser, baseline_path=BASELINE_PATH, default_tolerance=0.3,
        tolerance_help="fraction of a recorded speedup a fresh run must "
                       "retain (default 0.3: wall clocks are noisy)")
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--skyband-n", type=int, default=3_000)
    parser.add_argument("--peers", type=int, default=200)
    parser.add_argument("--tuples", type=int, default=8_000)
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args(argv)

    if args.smoke:
        args.n, args.skyband_n = 4_000, 1_500
        args.peers, args.tuples, args.reps = 48, 2_000, 2

    fresh = run(n=args.n, skyband_n=args.skyband_n, peers=args.peers,
                tuples=args.tuples, reps=args.reps, log=log)

    if args.record:
        write_json(BASELINE_PATH, fresh)
        log(f"wrote baseline {BASELINE_PATH}")
    if args.out:
        write_json(args.out, fresh)
        log(f"wrote {args.out}")
    if not (args.record or args.out):
        print(json.dumps(fresh, indent=2))

    if args.compare:
        return gate(fresh, args.compare, compare, args.tolerance,
                    passed=f"compare gate passed against {args.compare} "
                           f"(tolerance {args.tolerance})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
