"""The hash-randomization A/B harness: dynamic proof of RPL013's claim.

Runs ``tools/hashseed_ab`` as a real subprocess (the same invocation CI
uses) and pins its contract: identical canonical output under two
``PYTHONHASHSEED`` values, exit 0, and a non-trivial battery (every
engine represented in the snapshot).
"""

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "hashseed_ab"


def test_ab_battery_is_hash_seed_invariant():
    proc = subprocess.run(
        [sys.executable, str(TOOL), "--seeds", "0", "1"],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout[-2000:] + proc.stderr[-2000:]
    assert "identical answers and QueryStats" in proc.stdout


def test_emit_snapshot_covers_every_engine():
    proc = subprocess.run(
        [sys.executable, str(TOOL), "--emit"],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    snapshot = json.loads(proc.stdout)
    assert set(snapshot) == {"recursive_topk", "event_driven_topk",
                             "skyline", "workload"}
    assert snapshot["recursive_topk"]["answer"], "empty top-k answer"
    assert snapshot["workload"]["completed"] > 0
    assert snapshot["workload"]["errors"] == 0
