"""Smoke tests: the example scripts run end to end.

The heavyweight examples (nba_allstars, photo_diversity) are exercised by
the experiment suite's equivalents; here we run the fast ones as real
subprocesses so a packaging or API regression that only bites script
users is caught.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "midas_anatomy.py",
                 "overlay_genericity.py", "vertical_middleware.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"


def test_overlay_genericity_matches_readme_matrix():
    """The example's overlay roster stays consistent with the README.

    Every overlay the genericity demo exercises must be a row of the
    README overlay matrix, and the demo's printed skip-graph degree must
    respect the constant cap the matrix advertises ("6 (constant)").
    """
    readme = (EXAMPLES.parent / "README.md").read_text(encoding="utf-8")
    rows = [line.split("|")[1].strip().lower()
            for line in readme.splitlines()
            if line.startswith("|") and line.count("|") >= 6
            and "---" not in line and "overlay" != line.split("|")[1].strip()]
    assert {"midas", "can", "chord", "rainbow skip graph"} <= set(rows)

    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "overlay_genericity.py")],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    printed = {line.split("(")[0].strip().lower()
               for line in proc.stdout.splitlines() if "correct;" in line}
    assert printed == {"midas", "can", "chord", "rainbow skip graph"}
    assert printed <= set(rows), "example exercises an overlay the " \
        "README matrix does not document"

    skip_line = next(line for line in proc.stdout.splitlines()
                     if line.lower().startswith("rainbow skip graph"))
    degree = int(skip_line.split("max-degree=")[1].split()[0])
    skip_row = next(line for line in readme.splitlines()
                    if line.lower().startswith("| rainbow skip graph"))
    assert "6 (constant)" in skip_row
    assert degree <= 6


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "nba_allstars.py", "photo_diversity.py",
            "midas_anatomy.py", "overlay_genericity.py",
            "vertical_middleware.py"} <= present
