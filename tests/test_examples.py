"""Smoke tests: the example scripts run end to end.

The heavyweight examples (nba_allstars, photo_diversity) are exercised by
the experiment suite's equivalents; here we run the fast ones as real
subprocesses so a packaging or API regression that only bites script
users is caught.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "midas_anatomy.py",
                 "overlay_genericity.py", "vertical_middleware.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "nba_allstars.py", "photo_diversity.py",
            "midas_anatomy.py", "overlay_genericity.py",
            "vertical_middleware.py"} <= present
