"""Unit and integration tests for k-diversification (Section 6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.div_baseline import FloodingDiversifier
from repro.common.geometry import Rect
from repro.common.store import LocalStore
from repro.overlays.can import CanOverlay
from repro.overlays.midas import MidasOverlay
from repro.queries.diversify import (
    DiversificationObjective,
    RippleDiversifier,
    diversify_reference,
    greedy_diversify,
)


def objective(lam=0.5, q=(0.5, 0.5)):
    return DiversificationObjective(q, lam, p=1)


class TestObjective:
    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            DiversificationObjective((0.5,), 1.5)

    def test_f_needs_two_members(self):
        with pytest.raises(ValueError):
            objective().f([(0.1, 0.1)])

    def test_f_value(self):
        obj = objective(lam=0.5, q=(0.0, 0.0))
        members = [(0.2, 0.0), (0.0, 0.6)]
        # maxrel = 0.6, minpair = |0.2| + |0.6| = 0.8
        assert obj.f(members) == pytest.approx(0.5 * 0.6 - 0.5 * 0.8)

    def test_phi_zero_when_harmless(self):
        """Case 1 of Equation 3: within relevance range and diverse.

        Members at L1 distance 1 from each other and from q; the
        candidate (0.5, 0.5) is at distance 1 from both and from q, so it
        costs nothing on either term.
        """
        obj = objective(lam=0.5, q=(0.0, 0.0))
        members = [(0.0, 0.0), (1.0, 0.0)]
        assert obj.phi((0.5, 0.5), members) == pytest.approx(0.0)

    def test_phi_relevance_loss(self):
        """Case 2: farther from q than any member."""
        obj = objective(lam=0.5, q=(0.0, 0.0))
        members = [(0.5, 0.0), (0.0, 0.5)]
        # t at L1 distance 1.6; maxrel = 0.5; diversity unaffected
        t = (0.8, 0.8)
        assert obj.phi(t, members) == pytest.approx(0.5 * (1.6 - 0.5))

    def test_phi_diversity_loss(self):
        """Case 3: crowds an existing member."""
        obj = objective(lam=0.5, q=(0.0, 0.0))
        members = [(0.5, 0.0), (0.0, 0.5)]
        t = (0.45, 0.0)  # 0.05 from the first member; minpair = 1.0
        assert obj.phi(t, members) == pytest.approx(0.5 * (1.0 - 0.05))

    def test_phi_both_losses(self):
        """Case 4: irrelevant and crowding."""
        obj = objective(lam=0.5, q=(0.0, 0.0))
        members = [(0.5, 0.0), (0.0, 0.5)]
        t = (0.9, 0.0)
        expected = 0.5 * (0.9 - 0.5) + 0.5 * (1.0 - 0.4)
        assert obj.phi(t, members) == pytest.approx(expected)

    def test_phi_batch_matches_scalar(self):
        obj = objective(lam=0.3)
        members = [(0.1, 0.1), (0.9, 0.9)]
        rng = np.random.default_rng(0)
        pts = rng.random((20, 2))
        batch = obj.phi_batch(pts, members)
        for point, value in zip(pts, batch):
            assert obj.phi(tuple(point), members) == pytest.approx(value)

    @given(st.floats(0, 1), st.lists(
        st.tuples(st.floats(0, 0.99), st.floats(0, 0.99)),
        min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_phi_is_marginal_f_increase(self, lam, members):
        """phi(t, O) == f(O + t) - f(O): the identity behind Eq. 3."""
        obj = DiversificationObjective((0.5, 0.5), lam, p=1)
        members = list(dict.fromkeys(members))
        if len(members) < 2:
            return
        t = (0.123, 0.779)
        if t in members:
            return
        got = obj.phi(t, members)
        expected = obj.f([*members, t]) - obj.f(members)
        assert got == pytest.approx(max(0.0, expected), abs=1e-9)

    def test_region_lower_bound_sound(self):
        obj = objective(lam=0.4, q=(0.2, 0.2))
        members = [(0.3, 0.3), (0.8, 0.1)]
        rect = Rect((0.5, 0.5), (0.9, 0.9))
        bound = obj.phi_lower_bound(rect, members, grow=False)
        rng = np.random.default_rng(1)
        for _ in range(50):
            point = rect.sample(rng)
            assert obj.phi(point, members) >= bound - 1e-9

    def test_grow_bound_sound(self):
        obj = objective(lam=0.4, q=(0.2, 0.2))
        members = [(0.3, 0.3)]
        rect = Rect((0.5, 0.5), (0.9, 0.9))
        bound = obj.phi_lower_bound(rect, members, grow=True)
        rng = np.random.default_rng(2)
        pts = np.array([rect.sample(rng) for _ in range(50)])
        assert obj.phi_grow_batch(pts, members).min() >= bound - 1e-9

    def test_best_local_excludes(self):
        obj = objective()
        store = LocalStore(2, [(0.5, 0.5), (0.6, 0.6)])
        best = obj.best_local(store, [], [(0.5, 0.5)], grow=True)
        assert best[1] == (0.6, 0.6)

    def test_best_local_all_excluded(self):
        obj = objective()
        store = LocalStore(2, [(0.5, 0.5)])
        assert obj.best_local(store, [], [(0.5, 0.5)], grow=True) is None

    def test_best_local_empty_store(self):
        assert objective().best_local(LocalStore(2), [], [], True) is None


class TestGreedy:
    @pytest.fixture(scope="class")
    def networks(self):
        rng = np.random.default_rng(31)
        data = rng.random((1200, 3)) * 0.999
        midas = MidasOverlay(3, size=1, seed=5, join_policy="data",
                             split_rule="midpoint")
        midas.load(data)
        midas.grow_to(64)
        can = CanOverlay(3, size=1, seed=5, join_policy="data")
        can.load(data)
        can.grow_to(64)
        return midas, can, data

    def test_k_validation(self, networks):
        midas, _, data = networks
        engine = RippleDiversifier(midas, midas.random_peer())
        with pytest.raises(ValueError):
            greedy_diversify(engine, objective(q=tuple(data[0])), 1)

    @pytest.mark.parametrize("lam", [0.0, 0.3, 0.5, 0.7, 1.0])
    def test_all_engines_match_reference(self, networks, lam):
        midas, can, data = networks
        obj = DiversificationObjective(data[7], lam, p=1)
        ref_members, ref_value = diversify_reference(data, obj, 4)
        for engine in (RippleDiversifier(midas, midas.random_peer(), r=0),
                       RippleDiversifier(midas, midas.random_peer(),
                                         r=10 ** 9),
                       FloodingDiversifier(can, can.random_peer())):
            result = greedy_diversify(engine, obj, 4)
            assert sorted(result.answer[0]) == sorted(ref_members)
            assert result.answer[1] == pytest.approx(ref_value)

    def test_improvement_never_worsens(self, networks):
        midas, _, data = networks
        obj = DiversificationObjective(data[11], 0.5, p=1)
        engine = RippleDiversifier(midas, midas.random_peer(), r=0)
        grown = greedy_diversify(engine, obj, 5, max_iters=0)
        improved = greedy_diversify(engine, obj, 5, max_iters=5)
        assert improved.answer[1] <= grown.answer[1] + 1e-12

    def test_members_are_distinct(self, networks):
        midas, _, data = networks
        obj = DiversificationObjective(data[3], 0.5, p=1)
        engine = RippleDiversifier(midas, midas.random_peer(), r=0)
        members, _ = greedy_diversify(engine, obj, 6).answer
        assert len(set(members)) == 6

    def test_k_exceeding_data(self):
        data = np.array([[0.1, 0.1], [0.9, 0.9], [0.5, 0.1]])
        overlay = MidasOverlay(2, size=4, seed=1)
        overlay.load(data)
        engine = RippleDiversifier(overlay, overlay.random_peer(), r=0)
        members, value = greedy_diversify(
            engine, objective(q=(0.1, 0.1)), 5).answer
        assert sorted(members) == sorted(map(tuple, data))

    def test_cost_accumulates_over_steps(self, networks):
        midas, _, data = networks
        obj = DiversificationObjective(data[5], 0.5, p=1)
        engine = RippleDiversifier(midas, midas.random_peer(), r=0)
        result = greedy_diversify(engine, obj, 4)
        # at least k sequential sub-queries worth of latency
        assert result.stats.latency >= 4
        assert result.stats.processed >= 4
