"""Tests for approximate (epsilon-relaxed) top-k retrieval."""

import numpy as np
import pytest

from repro import LinearScore, MidasOverlay, run_slow
from repro.queries.topk import TopKHandler, topk_reference


@pytest.fixture(scope="module")
def network():
    rng = np.random.default_rng(77)
    data = rng.random((2000, 3)) * 0.999
    overlay = MidasOverlay(3, size=1, seed=6, join_policy="data")
    overlay.load(data)
    overlay.grow_to(96)
    return overlay, data


class TestApproximateTopK:
    def test_epsilon_zero_is_exact(self, network):
        overlay, data = network
        fn = LinearScore([1, 1, 1])
        handler = TopKHandler(fn, 8, epsilon=0.0)
        result = run_slow(overlay.random_peer(), handler,
                          restriction=overlay.domain())
        assert [s for s, _ in result.answer] == \
            [s for s, _ in topk_reference(data, fn, 8)]

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            TopKHandler(LinearScore([1]), 3, epsilon=-0.1)

    def test_bounded_error(self, network):
        overlay, data = network
        fn = LinearScore([1, 1, 1])
        epsilon = 0.1
        handler = TopKHandler(fn, 8, epsilon=epsilon)
        result = run_slow(overlay.random_peer(), handler,
                          restriction=overlay.domain())
        reference = topk_reference(data, fn, 8)
        for (got, _), (want, _) in zip(result.answer, reference):
            assert got >= want * (1 - epsilon) - 1e-9

    def test_relaxation_reduces_congestion(self, network):
        overlay, _ = network
        fn = LinearScore([1, 1, 1])
        initiator = overlay.peers()[0]
        exact = run_slow(initiator, TopKHandler(fn, 8),
                         restriction=overlay.domain())
        approx = run_slow(initiator, TopKHandler(fn, 8, epsilon=0.5),
                          restriction=overlay.domain())
        assert approx.stats.processed <= exact.stats.processed


class TestAsciiChart:
    def test_renders(self):
        from repro.experiments.runner import Row, ascii_chart

        rows = [Row("f", "n", x, m, latency=x * (1 + i), congestion=1,
                    messages=1, tuples_shipped=0, queries=1)
                for x in (1, 2, 4) for i, m in enumerate(("a", "b"))]
        chart = ascii_chart(rows, "latency")
        assert "latency" in chart
        assert "* = a" in chart and "o = b" in chart

    def test_empty(self):
        from repro.experiments.runner import ascii_chart

        assert ascii_chart([], "latency") == "(no data)"
