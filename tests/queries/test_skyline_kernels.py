"""The vectorized skyline kernels: brute-force oracles and caching.

Covers the k-skyband kernel against a literal dominance-counting oracle,
the antichain merge against a union-skyline oracle, and the regression
guarantee the store cache provides: one local-skyline reduction per peer
per query, none on a repeat query over a static network.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.queries.skyline as sky
from repro.common.geometry import as_point, dominates
from repro.common.store import LocalStore
from repro.overlays.midas import MidasOverlay
from repro.queries.skyline import (SkylineHandler, distributed_skyline,
                                   k_skyband_of_array, merge_skylines,
                                   skyline_of, skyline_of_array,
                                   skyline_reference)


def brute_force_skyband(array, k, *, maximize=False):
    """Literal definition: fewer than k strict dominators."""
    data = -np.asarray(array, dtype=float) if maximize else \
        np.asarray(array, dtype=float)
    keep = []
    for i, row in enumerate(data):
        dominators = sum(
            1 for other in data
            if np.all(other <= row) and np.any(other < row))
        if dominators < k:
            keep.append(i)
    return np.asarray(array, dtype=float)[keep]


class TestKSkyband:
    def test_exported(self):
        assert "k_skyband_of_array" in sky.__all__

    def test_one_skyband_is_skyline(self):
        rng = np.random.default_rng(0)
        data = rng.random((300, 3))
        band = k_skyband_of_array(data, 1)
        assert sorted(map(as_point, band)) == sorted(
            map(as_point, skyline_of_array(data)))

    @pytest.mark.parametrize("dims", (1, 2, 4))
    @pytest.mark.parametrize("k", (1, 2, 5))
    def test_matches_brute_force(self, dims, k):
        rng = np.random.default_rng(dims * 10 + k)
        data = rng.random((120, dims))
        assert np.array_equal(k_skyband_of_array(data, k),
                              brute_force_skyband(data, k))

    def test_maximize_matches_brute_force(self):
        rng = np.random.default_rng(9)
        data = rng.random((100, 3))
        assert np.array_equal(k_skyband_of_array(data, 3, maximize=True),
                              brute_force_skyband(data, 3, maximize=True))

    def test_duplicates_count_as_dominators(self):
        # Three copies of a dominating point: the dominated point has 3
        # strict dominators, so it enters only the 4-skyband.
        data = np.array([[0.1, 0.1]] * 3 + [[0.5, 0.5]])
        assert len(k_skyband_of_array(data, 3)) == 3
        assert len(k_skyband_of_array(data, 4)) == 4
        assert np.array_equal(k_skyband_of_array(data, 3),
                              brute_force_skyband(data, 3))

    def test_band_grows_with_k(self):
        rng = np.random.default_rng(4)
        data = rng.random((200, 3))
        sizes = [len(k_skyband_of_array(data, k)) for k in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)

    def test_preserves_input_order_and_values(self):
        rng = np.random.default_rng(5)
        data = rng.random((50, 2))
        band = k_skyband_of_array(data, 2)
        rows = {tuple(row) for row in data}
        assert all(tuple(row) in rows for row in band)

    def test_empty_and_bad_k(self):
        assert len(k_skyband_of_array(np.empty((0, 3)), 2)) == 0
        with pytest.raises(ValueError):
            k_skyband_of_array(np.ones((2, 2)), 0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=1, max_size=40),
           st.integers(1, 4))
    def test_property_matches_brute_force(self, points, k):
        data = np.asarray(points, dtype=float)
        assert np.array_equal(k_skyband_of_array(data, k),
                              brute_force_skyband(data, k))


class TestMergeSkylines:
    def union_oracle(self, *collections):
        return sorted(skyline_of(
            [p for c in collections for p in c]))

    def test_cross_path_matches_union_skyline(self):
        # one big antichain against one small one — the cross-tensor path
        rng = np.random.default_rng(2)
        big = sorted(map(as_point, skyline_of_array(rng.random((5000, 3)))))
        small = sorted(map(as_point, skyline_of_array(rng.random((15, 3)))))
        # ratio > ~3.73 guarantees the dispatch picks the cross path
        assert len(big) > 4 * len(small)
        assert merge_skylines(big, small) == self.union_oracle(big, small)

    def test_many_parts_match_union_skyline(self):
        # 16 similar-sized antichains — the union-kernel path
        rng = np.random.default_rng(3)
        parts = [sorted(map(as_point, skyline_of_array(rng.random((80, 3)))))
                 for _ in range(16)]
        assert merge_skylines(*parts) == self.union_oracle(*parts)

    def test_result_is_antichain(self):
        rng = np.random.default_rng(4)
        parts = [sorted(map(as_point, skyline_of_array(rng.random((60, 2)))))
                 for _ in range(3)]
        merged = merge_skylines(*parts)
        assert not any(dominates(a, b)
                       for a in merged for b in merged if a != b)

    def test_degenerate_arities(self):
        assert merge_skylines() == []
        assert merge_skylines([]) == []
        assert merge_skylines([(0.3, 0.1)]) == [(0.3, 0.1)]
        assert merge_skylines([(0.2, 0.2)], [(0.2, 0.2)]) == [(0.2, 0.2)]
        assert merge_skylines((), [(0.1, 0.9)], ()) == [(0.1, 0.9)]


class TestOneReductionPerPeer:
    """Regression: the store cache must keep the local-skyline kernel at
    one invocation per peer per query (it used to run twice — once for
    the local state, once for the local answer)."""

    @pytest.fixture()
    def network(self):
        rng = np.random.default_rng(21)
        data = rng.random((500, 2)) * 0.999
        overlay = MidasOverlay(2, size=1, seed=3, join_policy="data")
        overlay.load(data)
        overlay.grow_to(24)
        return overlay, data

    def counting(self, monkeypatch):
        counts = {}
        original = SkylineHandler._compute_local_skyline

        def wrapper(self, store):
            counts[id(store)] = counts.get(id(store), 0) + 1
            return original(self, store)

        monkeypatch.setattr(SkylineHandler, "_compute_local_skyline", wrapper)
        return counts

    @pytest.mark.parametrize("r", (0, 2))
    def test_at_most_one_kernel_run_per_peer(self, network, monkeypatch, r):
        overlay, data = network
        counts = self.counting(monkeypatch)
        result = distributed_skyline(
            overlay.random_peer(np.random.default_rng(0)), 2,
            restriction=overlay.domain(), r=r)
        assert result.answer == skyline_reference(data)
        assert counts, "no peer computed a local skyline"
        assert max(counts.values()) == 1

    def test_requery_of_static_network_runs_no_kernels(self, network,
                                                      monkeypatch):
        overlay, data = network
        initiator = overlay.random_peer(np.random.default_rng(1))
        first = distributed_skyline(initiator, 2,
                                    restriction=overlay.domain(), r=1)
        counts = self.counting(monkeypatch)
        again = distributed_skyline(initiator, 2,
                                    restriction=overlay.domain(), r=1)
        assert again.answer == first.answer == skyline_reference(data)
        assert counts == {}

    def test_disabled_cache_restores_double_work(self, network, monkeypatch):
        overlay, data = network
        counts = self.counting(monkeypatch)
        monkeypatch.setattr(LocalStore, "cache_enabled", False)
        result = distributed_skyline(
            overlay.random_peer(np.random.default_rng(0)), 2,
            restriction=overlay.domain(), r=1)
        assert result.answer == skyline_reference(data)
        assert max(counts.values()) == 2
