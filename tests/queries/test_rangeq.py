"""Tests for range queries — the stateless degenerate case of RIPPLE."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import MidasOverlay, run_fast, run_ripple, run_slow
from repro.common.geometry import Rect
from repro.queries.rangeq import RangeHandler, range_reference


@pytest.fixture(scope="module")
def network():
    rng = np.random.default_rng(55)
    data = rng.random((1000, 2)) * 0.999
    overlay = MidasOverlay(2, size=1, seed=12, join_policy="data")
    overlay.load(data)
    overlay.grow_to(64)
    return overlay, data


class TestRangeQueries:
    def test_fast_and_slow_match_reference(self, network):
        overlay, data = network
        box = Rect((0.2, 0.3), (0.6, 0.9))
        handler = RangeHandler(box)
        reference = range_reference(data, box)
        for run in (run_fast, run_slow):
            result = run(overlay.random_peer(), handler,
                         restriction=overlay.domain())
            assert result.answer == reference

    def test_only_overlapping_peers_processed(self, network):
        overlay, _ = network
        box = Rect((0.4, 0.4), (0.45, 0.45))
        result = run_fast(overlay.random_peer(), RangeHandler(box),
                          restriction=overlay.domain())
        # tiny box: far fewer peers than the network (plus the initiator)
        assert result.stats.processed < len(overlay) / 2

    def test_empty_range(self, network):
        overlay, data = network
        box = Rect((0.998, 0.998), (0.999, 0.999))
        result = run_fast(overlay.random_peer(), RangeHandler(box),
                          restriction=overlay.domain())
        assert result.answer == range_reference(data, box)

    def test_full_domain_range_returns_everything(self, network):
        overlay, data = network
        box = Rect.unit(2)
        result = run_slow(overlay.random_peer(), RangeHandler(box),
                          restriction=overlay.domain())
        assert len(result.answer) == len(data)

    @given(st.floats(0, 0.7), st.floats(0, 0.7),
           st.floats(0.05, 0.3), st.floats(0.05, 0.3), st.integers(0, 4))
    @settings(max_examples=20, deadline=None)
    def test_random_boxes(self, x, y, w, h, r):
        rng = np.random.default_rng(0)
        data = rng.random((300, 2)) * 0.999
        overlay = MidasOverlay(2, size=16, seed=1)
        overlay.load(data)
        box = Rect((x, y), (min(1.0, x + w), min(1.0, y + h)))
        result = run_ripple(overlay.random_peer(), RangeHandler(box), r,
                            restriction=overlay.domain())
        assert result.answer == range_reference(data, box)
