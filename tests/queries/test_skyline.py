"""Unit and integration tests for distributed skylines (Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import MidasOverlay, dominates
from repro.common.geometry import Rect, as_point
from repro.common.store import LocalStore
from repro.core.regions import RectRegion
from repro.queries.skyline import (
    SkylineHandler,
    distributed_skyline,
    skyline_of,
    skyline_of_array,
    skyline_reference,
)

point_lists = st.lists(
    st.tuples(st.floats(0, 0.999), st.floats(0, 0.999)), max_size=60)


class TestSkylineOf:
    def test_simple(self):
        pts = [(0.5, 0.5), (0.2, 0.8), (0.6, 0.6), (0.8, 0.1)]
        assert sorted(skyline_of(pts)) == [(0.2, 0.8), (0.5, 0.5), (0.8, 0.1)]

    def test_empty(self):
        assert skyline_of([]) == []

    def test_duplicates_collapse(self):
        assert skyline_of([(0.5, 0.5), (0.5, 0.5)]) == [(0.5, 0.5)]

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_skyline_properties(self, pts):
        sky = skyline_of(pts)
        # no member dominates another
        for a in sky:
            for b in sky:
                assert not dominates(a, b)
        # every point is dominated by or equal to some skyline member
        for p in set(pts):
            assert p in sky or any(dominates(s, p) for s in sky)

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_array_version_agrees(self, pts):
        arr = np.array(pts, dtype=float).reshape(-1, 2)
        from_array = sorted({as_point(r) for r in skyline_of_array(arr)})
        assert from_array == sorted(skyline_of(pts))


class TestHandler:
    def test_compute_local_state_filters_dominated(self):
        h = SkylineHandler(2)
        store = LocalStore(2, [(0.5, 0.5), (0.9, 0.9)])
        state = h.compute_local_state(store, ((0.1, 0.1),))
        assert state == ()  # local skyline fully dominated by global view

    def test_compute_local_state_keeps_survivors(self):
        h = SkylineHandler(2)
        store = LocalStore(2, [(0.5, 0.1), (0.9, 0.9)])
        state = h.compute_local_state(store, ((0.1, 0.5),))
        assert state == ((0.5, 0.1),)

    def test_global_state_is_merged_skyline(self):
        h = SkylineHandler(2)
        merged = h.compute_global_state(((0.1, 0.9),), ((0.5, 0.5), (0.2, 0.8)))
        assert merged == ((0.1, 0.9), (0.2, 0.8), (0.5, 0.5))

    def test_update_local_state_unions(self):
        h = SkylineHandler(2)
        merged = h.update_local_state([((0.1, 0.9),), ((0.9, 0.1),),
                                       ((0.5, 0.5),)])
        assert len(merged) == 3

    def test_link_pruned_when_dominated(self):
        h = SkylineHandler(2)
        region = RectRegion(Rect((0.5, 0.5), (1.0, 1.0)))
        assert not h.is_link_relevant(region, ((0.2, 0.2),))
        assert h.is_link_relevant(region, ((0.2, 0.6),))

    def test_priority_prefers_origin(self):
        h = SkylineHandler(2)
        near = RectRegion(Rect((0.0, 0.0), (0.2, 0.2)))
        far = RectRegion(Rect((0.5, 0.5), (1.0, 1.0)))
        assert h.link_priority(near) < h.link_priority(far)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SkylineHandler(0)


class TestDistributed:
    @pytest.fixture(scope="class")
    def network(self):
        rng = np.random.default_rng(5)
        data = rng.random((700, 3)) * 0.999
        overlay = MidasOverlay(3, size=1, seed=21, join_policy="data")
        overlay.load(data)
        overlay.grow_to(80)
        return overlay, data

    def test_matches_reference_all_modes(self, network):
        overlay, data = network
        ref = skyline_reference(data)
        for r in (0, 2, 10 ** 6):
            res = distributed_skyline(overlay.random_peer(), 3,
                                      restriction=overlay.domain(), r=r)
            assert res.answer == ref

    def test_cold_matches_reference(self, network):
        overlay, data = network
        ref = skyline_reference(data)
        res = distributed_skyline(overlay.random_peer(), 3,
                                  restriction=overlay.domain(), r=0,
                                  seeded=False)
        assert res.answer == ref

    def test_boundary_policy_correct_and_cheaper_shipping(self):
        rng = np.random.default_rng(9)
        data = rng.random((1200, 2)) * 0.999
        results = {}
        for policy in ("random", "boundary"):
            overlay = MidasOverlay(2, size=1, seed=31, link_policy=policy,
                                   join_policy="data")
            overlay.load(data)
            overlay.grow_to(128)
            ref = skyline_reference(data)
            res = distributed_skyline(overlay.random_peer(), 2,
                                      restriction=overlay.domain(), r=10 ** 6)
            assert res.answer == ref
            results[policy] = res.stats
        # Section 5.2: boundary-aware links reduce wasted traffic.
        assert results["boundary"].tuples_shipped <= \
            2 * results["random"].tuples_shipped

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=8, deadline=None)
    def test_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((150, 2)) * 0.999
        overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
        overlay.load(data)
        overlay.grow_to(20)
        res = distributed_skyline(overlay.random_peer(rng), 2,
                                  restriction=overlay.domain(),
                                  r=int(rng.integers(0, 5)))
        assert res.answer == skyline_reference(data)
