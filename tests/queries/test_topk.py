"""Unit and integration tests for distributed top-k (Section 4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import LinearScore, MidasOverlay, NearestScore
from repro.common.store import LocalStore
from repro.core.regions import RectRegion
from repro.common.geometry import Rect
from repro.queries.topk import (
    TopKHandler,
    TopKState,
    distributed_topk,
    topk_reference,
)


def handler(k=3, weights=(1, 1)):
    return TopKHandler(LinearScore(weights), k)


class TestState:
    def test_initial_state_cannot_prune(self):
        h = handler()
        state = h.initial_state()
        assert h.tau(state) == -math.inf
        assert h.is_link_relevant(RectRegion(Rect.unit(2)), state)

    def test_tau_needs_k_scores(self):
        h = handler(k=3)
        assert h.tau(TopKState((5.0, 4.0))) == -math.inf
        assert h.tau(TopKState((5.0, 4.0, 3.0))) == 3.0

    def test_floor_overrides_short_list(self):
        h = handler(k=3)
        assert h.tau(TopKState((5.0,), floor=2.0)) == 2.0

    def test_merge_keeps_best_k(self):
        h = handler(k=3)
        merged = h.update_local_state(
            [TopKState((5.0, 1.0)), TopKState((4.0, 3.0))])
        assert merged.scores == (5.0, 4.0, 3.0)

    def test_merge_remembers_certificate_floor(self):
        h = handler(k=2)
        merged = h.update_local_state([TopKState((5.0, 4.0))])
        assert merged.floor == 4.0

    def test_neutral_is_identity(self):
        h = handler(k=3)
        state = TopKState((5.0, 4.0), floor=1.0)
        neutral = h.neutral_local_state()
        assert h.update_local_state([state, neutral]).scores == state.scores

    def test_compute_local_state_respects_cutoff(self):
        h = handler(k=2)
        store = LocalStore(2, [(0.9, 0.9), (0.1, 0.1)])
        state = h.compute_local_state(store, TopKState((9.9, 1.5)))
        assert state.scores == (pytest.approx(1.8),)
        assert state.floor == 1.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            handler(k=0)


class TestLinkDecisions:
    def test_relevant_when_bound_reaches_tau(self):
        h = handler(k=1)
        state = TopKState((1.0,))
        good = RectRegion(Rect((0.4, 0.7), (0.6, 0.9)))   # f+ = 1.5
        bad = RectRegion(Rect((0.1, 0.1), (0.3, 0.3)))    # f+ = 0.6
        assert h.is_link_relevant(good, state)
        assert not h.is_link_relevant(bad, state)

    def test_priority_prefers_higher_bound(self):
        h = handler()
        near = RectRegion(Rect((0.8, 0.8), (1.0, 1.0)))
        far = RectRegion(Rect((0.0, 0.0), (0.2, 0.2)))
        assert h.link_priority(near) < h.link_priority(far)


class TestSeededExecution:
    @pytest.fixture(scope="class")
    def network(self):
        rng = np.random.default_rng(3)
        data = rng.random((800, 3)) * 0.999
        overlay = MidasOverlay(3, size=1, seed=11, join_policy="data")
        overlay.load(data)
        overlay.grow_to(100)
        return overlay, data

    def test_seeded_matches_reference(self, network):
        overlay, data = network
        fn = LinearScore([1, 2, 0.5])
        ref = topk_reference(data, fn, 10)
        for r in (0, 3, 10 ** 6):
            res = distributed_topk(overlay.random_peer(), fn, 10,
                                   restriction=overlay.domain(), r=r)
            assert [s for s, _ in res.answer] == [s for s, _ in ref]

    def test_seeded_nearest_neighbor(self, network):
        overlay, data = network
        fn = NearestScore((0.4, 0.5, 0.6))
        ref = topk_reference(data, fn, 5)
        res = distributed_topk(overlay.random_peer(), fn, 5,
                               restriction=overlay.domain(), r=0)
        assert [s for s, _ in res.answer] == pytest.approx(
            [s for s, _ in ref])

    def test_seeded_prunes_versus_cold(self, network):
        overlay, _ = network
        fn = LinearScore([1, 1, 1])
        seeded = distributed_topk(overlay.random_peer(), fn, 5,
                                  restriction=overlay.domain(), r=0)
        cold = distributed_topk(overlay.random_peer(), fn, 5,
                                restriction=overlay.domain(), r=0,
                                seeded=False)
        assert seeded.stats.processed < cold.stats.processed

    def test_seeded_latency_logarithmic(self, network):
        overlay, _ = network
        fn = LinearScore([1, 1, 1])
        res = distributed_topk(overlay.random_peer(), fn, 5,
                               restriction=overlay.domain(), r=0)
        # routing + probe + fan-out, all O(depth)-ish
        assert res.stats.latency < 6 * overlay.tree.max_depth()

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_initiator_and_seed(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((120, 2)) * 0.999
        overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
        overlay.load(data)
        overlay.grow_to(24)
        fn = LinearScore([1, 1])
        ref = [s for s, _ in topk_reference(data, fn, 4)]
        res = distributed_topk(overlay.random_peer(rng), fn, 4,
                               restriction=overlay.domain(),
                               r=int(rng.integers(0, 6)))
        assert [s for s, _ in res.answer] == ref


class TestReference:
    def test_reference_sorted_and_tiebroken(self):
        data = np.array([[0.5, 0.5], [0.9, 0.1], [0.1, 0.9]])
        fn = LinearScore([1, 1])
        ref = topk_reference(data, fn, 3)
        assert [t for _, t in ref] == [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1)]

    def test_reference_k_truncates(self):
        data = np.random.default_rng(0).random((50, 2))
        assert len(topk_reference(data, LinearScore([1, 1]), 7)) == 7
