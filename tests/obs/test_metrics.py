"""Unit tests for the metrics registry and trace-derived distributions."""

import numpy as np
import pytest

from repro import LinearScore, MetricsRegistry, QueryTrace, TopKHandler, \
    run_ripple
from repro.obs import (Counter, DEFAULT_FANOUT_BUCKETS,
                       DEFAULT_STATE_SIZE_BUCKETS, Histogram, metrics_of)

from .conftest import build_network


class TestCounter:
    def test_increments(self):
        counter = Counter("hops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        counter = Counter("hops")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0


class TestHistogram:
    def test_bucketing_is_inclusive_upper_edge(self):
        hist = Histogram("fanout", bounds=(1, 2, 4))
        hist.observe_many([0, 1, 2, 3, 4, 5])
        # counts per bucket: <=1, <=2, <=4, overflow
        assert hist.counts == [2, 1, 2, 1]
        assert hist.total == 6
        assert hist.sum == 15
        assert hist.mean == pytest.approx(2.5)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2, 1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1))

    def test_quantile_is_conservative(self):
        hist = Histogram("h", bounds=(1, 2, 4, 8))
        hist.observe_many([1, 1, 2, 3, 7])
        assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) <= 1
        assert hist.quantile(0.5) == 2
        assert hist.quantile(1.0) == 8
        hist.observe(100)  # overflow bucket -> inf
        assert hist.quantile(1.0) == float("inf")
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_of_empty_is_zero(self):
        assert Histogram("h", bounds=(1,)).quantile(0.9) == 0.0

    def test_merge_adds_bucketwise(self):
        a = Histogram("h", bounds=(1, 2))
        b = Histogram("h", bounds=(1, 2))
        a.observe_many([1, 2])
        b.observe_many([2, 5])
        a.merge(b)
        assert a.counts == [1, 2, 1]
        assert a.total == 4
        assert a.sum == 10

    def test_merge_rejects_bound_mismatch(self):
        a = Histogram("h", bounds=(1, 2))
        b = Histogram("h", bounds=(1, 4))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_as_dict_names_buckets(self):
        hist = Histogram("h", bounds=(1, 4))
        hist.observe_many([1, 3, 9])
        assert hist.as_dict() == {
            "count": 3, "sum": 13.0,
            "buckets": {"le_1": 1, "le_4": 1, "overflow": 1},
        }


class TestMetricsRegistry:
    def test_lazy_accessors_are_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.histogram("h").bounds \
            == tuple(float(b) for b in DEFAULT_FANOUT_BUCKETS)

    def test_as_dict_round_trips_values(self):
        registry = MetricsRegistry()
        registry.counter("msgs").inc(7)
        registry.histogram("h", bounds=(1,)).observe(1)
        out = registry.as_dict()
        assert out["counters"] == {"msgs": 7}
        assert out["histograms"]["h"]["count"] == 1


class TestMetricsOf:
    @pytest.fixture(scope="class")
    def traced_query(self):
        overlay = build_network("midas", seed=3)
        trace = QueryTrace()
        result = run_ripple(
            overlay.random_peer(np.random.default_rng(3)),
            TopKHandler(LinearScore([1.0, 1.0]), 4), 1,
            restriction=overlay.domain(), strict=False, sink=trace)
        return trace, result

    def test_event_and_span_counters(self, traced_query):
        trace, result = traced_query
        registry = metrics_of(trace)
        counters = registry.as_dict()["counters"]
        assert counters["events.forward"] == result.stats.forward_messages
        assert counters["spans.process"] \
            == sum(1 for s in trace.spans if s.kind == "process")

    def test_fanout_histogram_counts_forward_origins(self, traced_query):
        trace, _ = traced_query
        registry = metrics_of(trace)
        fanout = registry.histograms["fanout.per_peer"]
        forwards = [e for e in trace.events
                    if e.kind == "forward" and e.span_id]
        origins = {trace.get_span(e.span_id).peer for e in forwards}
        assert fanout.total == len(origins)
        assert fanout.sum == len(forwards)

    def test_state_size_histogram_reads_process_spans(self, traced_query):
        trace, _ = traced_query
        registry = metrics_of(trace)
        hist = registry.histograms["state_size.per_hop"]
        assert hist.bounds \
            == tuple(float(b) for b in DEFAULT_STATE_SIZE_BUCKETS)
        sized = [s for s in trace.spans
                 if s.kind == "process" and "state_size" in s.attrs]
        assert hist.total == len(sized)

    def test_accumulates_into_supplied_registry(self, traced_query):
        trace, _ = traced_query
        registry = MetricsRegistry()
        once = metrics_of(trace, registry)
        assert once is registry
        first = registry.counter("events.forward").value
        metrics_of(trace, registry)
        assert registry.counter("events.forward").value == 2 * first
