"""NullSink bit-identity plus unit coverage of the trace primitives.

The tentpole guarantee of the observability layer: attaching a sink (or
none at all — ``NULL_SINK`` is the default) never perturbs a query.
Answers and every ``QueryStats`` field must be bit-identical between a
bare run and a run recording a full :class:`QueryTrace`, across every
overlay family, query type, and engine — including churn.
"""

import numpy as np
import pytest

from repro import (DiversificationObjective, FaultPlan, LinearScore,
                   QueryTrace, RippleDiversifier, SLOW, SkylineHandler,
                   TopKHandler, event_driven_ripple, greedy_diversify,
                   resilient_ripple, run_ripple)
from repro.obs import NULL_SINK, NullSink, Span, state_size

from tests import netlib

from .conftest import build_network

# strict=False throughout: CAN's conservative region covers legally
# revisit peers, which strict contexts treat as a simulator error.
ENGINES = {
    "recursive": lambda peer, handler, r, region, sink: run_ripple(
        peer, handler, r, restriction=region, strict=False, sink=sink),
    "eventsim": lambda peer, handler, r, region, sink: event_driven_ripple(
        peer, handler, r, restriction=region, strict=False, sink=sink),
    "resilient": lambda peer, handler, r, region, sink: resilient_ripple(
        peer, handler, r, restriction=region, sink=sink),
}


def handler_for(query, dims):
    if query == "topk":
        return TopKHandler(LinearScore([1.0] * dims), 4)
    return SkylineHandler(dims)


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("query", ["topk", "skyline"])
@pytest.mark.parametrize("kind", netlib.OVERLAYS)
def test_nullsink_bit_identity(kind, query, engine, trace):
    overlay = build_network(kind, seed=3)
    dims = netlib.DIMS[kind]
    handler = handler_for(query, dims)
    run = ENGINES[engine]
    for r in (0, 2, SLOW):
        peer = overlay.random_peer(np.random.default_rng(11))
        bare = run(peer, handler, r, overlay.domain(), None)
        traced = run(peer, handler, r, overlay.domain(), trace)
        assert traced.answer == bare.answer, (kind, query, engine, r)
        assert traced.stats.as_dict() == bare.stats.as_dict(), \
            (kind, query, engine, r)


@pytest.mark.parametrize("kind", netlib.OVERLAYS)
def test_nullsink_bit_identity_under_churn(kind, trace):
    overlay = build_network(kind, seed=5)
    dims = netlib.DIMS[kind]
    handler = handler_for("topk", dims)

    def run(sink):
        plan = FaultPlan.churn(overlay, crash_fraction=0.3, seed=7,
                               drop_prob=0.05, jitter=1)
        peer = overlay.random_peer(np.random.default_rng(11))
        return resilient_ripple(peer, handler, 1,
                                restriction=overlay.domain(),
                                faults=plan, sink=sink)

    bare = run(None)
    traced = run(trace)
    assert traced.answer == bare.answer
    assert traced.stats.as_dict() == bare.stats.as_dict()
    assert trace.spans, "churn run recorded nothing"


def test_nullsink_bit_identity_diversification(trace):
    overlay = build_network("midas", seed=9, peers=24, tuples=200)
    rng = np.random.default_rng(2)
    objective = DiversificationObjective(
        overlay.domain().cover()[0].lo, 0.5, p=1)

    def run(sink):
        engine = RippleDiversifier(
            overlay, overlay.random_peer(np.random.default_rng(4)),
            r=0, sink=sink)
        return greedy_diversify(engine, objective, 4, max_iters=3)

    bare = run(None)
    traced = run(trace)
    assert traced.answer == bare.answer
    assert traced.stats.as_dict() == bare.stats.as_dict()
    # One root span per distributed sub-query of the greedy loop.
    assert len(trace.roots()) > 1


# -- primitives -------------------------------------------------------------


class TestNullSink:
    def test_disabled_and_inert(self):
        sink = NullSink()
        assert sink.enabled is False
        assert sink.begin_span("process", 1, 0) == 0
        assert sink.end_span(0, 3) is None
        assert sink.event("forward", 1) is None
        assert sink.on_stats(object()) is None

    def test_shared_singleton_is_nullsink(self):
        assert isinstance(NULL_SINK, NullSink)
        assert not NULL_SINK.enabled

    def test_slots_zero_state(self):
        assert NullSink.__slots__ == ()


class TestQueryTrace:
    def test_span_tree_bookkeeping(self):
        trace = QueryTrace()
        root = trace.begin_span("query", "a", 0)
        child = trace.begin_span("process", "b", 1, parent=root)
        trace.end_span(child, 4, state_size=2)
        trace.end_span(root, 5)
        assert [span.span_id for span in trace.roots()] == [root]
        assert [span.span_id
                for span in trace.children().get(root, [])] == [child]
        assert trace.root_of(child) == root
        got = trace.get_span(child)
        assert got is not None and got.end == 4
        assert got.attrs["state_size"] == 2
        assert got.duration == 3

    def test_events_and_stats_recorded(self):
        trace = QueryTrace()
        span = trace.begin_span("process", "a", 0)
        trace.event("forward", 1, span=span, target="b")
        trace.on_stats({"latency": 1})
        assert trace.events[0].kind == "forward"
        assert trace.events[0].attrs["target"] == "b"
        assert trace.stats_records == [{"latency": 1}]

    def test_ids_are_unique_and_nonzero(self):
        trace = QueryTrace()
        ids = [trace.begin_span("process", i, 0) for i in range(10)]
        assert len(set(ids)) == 10
        assert 0 not in ids  # 0 is the NullSink sentinel


class TestStateSize:
    @pytest.mark.parametrize("value,expected", [
        (None, 0),
        (3.5, 1),
        ("abc", 1),
        ((1.0, 2.0, 3.0), 3),
        ({"scores": (1.0, 2.0), "floor": 0.1}, 3),
        ([(1.0, 2.0), (3.0, 4.0)], 4),
        ((), 0),
    ])
    def test_scalar_leaf_count(self, value, expected):
        assert state_size(value) == expected

    def test_dataclass_state(self):
        from repro.queries.topk import TopKState
        assert state_size(TopKState(scores=(5.0, 4.0), floor=4.0)) == 3

    def test_numpy_array(self):
        assert state_size(np.zeros((4, 2))) == 8


def test_span_is_plain_data():
    span = Span(span_id=1, kind="process", peer="a", begin=2)
    assert span.end is None
    assert span.duration == 0  # open spans read as zero-length
    assert span.parent_id is None
