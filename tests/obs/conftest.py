"""Shared fixtures for the observability tests.

The ``trace`` fixture hands tests a recording :class:`QueryTrace` and —
when the test fails — dumps it as JSONL under ``test-trace-artifacts/``
so CI can upload the exact failing query for replay in
``python -m repro.obs.traceview`` or ``ui.perfetto.dev``.
"""

import os

import numpy as np
import pytest

from repro import CanOverlay, ChordOverlay, MidasOverlay, QueryTrace
from repro.obs import write_jsonl

ARTIFACT_DIR = "test-trace-artifacts"


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item, call):
    report = yield
    setattr(item, "rep_" + report.when, report)
    return report


@pytest.fixture
def trace(request):
    """A recording QueryTrace, archived on test failure."""
    recorded = QueryTrace()
    yield recorded
    report = getattr(request.node, "rep_call", None)
    if report is not None and report.failed and recorded.spans:
        os.makedirs(ARTIFACT_DIR, exist_ok=True)
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_"
                       for ch in request.node.nodeid)
        write_jsonl(recorded, os.path.join(ARTIFACT_DIR, safe + ".jsonl"))


def midas_network(seed, peers=32, tuples=240, dims=2):
    rng = np.random.default_rng(seed)
    overlay = MidasOverlay(dims, size=1, seed=seed, join_policy="data")
    overlay.load(rng.random((tuples, dims)) * 0.999)
    overlay.grow_to(peers)
    return overlay


def chord_network(seed, peers=32, tuples=240):
    overlay = ChordOverlay(size=peers, seed=seed)
    overlay.load(np.random.default_rng(seed).random((tuples, 1)) * 0.999)
    return overlay


def can_network(seed, peers=32, tuples=240, dims=2):
    rng = np.random.default_rng(seed)
    overlay = CanOverlay(dims, size=1, seed=seed)
    overlay.load(rng.random((tuples, dims)) * 0.999)
    overlay.grow_to(peers)
    return overlay


NETWORKS = {"midas": midas_network, "chord": chord_network,
            "can": can_network}


def build_network(kind, seed, **kwargs):
    return NETWORKS[kind](seed, **kwargs)
