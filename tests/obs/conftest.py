"""Shared fixtures for the observability tests.

The ``trace`` fixture hands tests a recording :class:`QueryTrace` and —
when the test fails — dumps it as JSONL under ``test-trace-artifacts/``
so CI can upload the exact failing query for replay in
``python -m repro.obs.traceview`` or ``ui.perfetto.dev``.
"""

import os

import pytest

from repro import QueryTrace
from repro.obs import write_jsonl

from tests import netlib

ARTIFACT_DIR = "test-trace-artifacts"


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item, call):
    report = yield
    setattr(item, "rep_" + report.when, report)
    return report


@pytest.fixture
def trace(request):
    """A recording QueryTrace, archived on test failure."""
    recorded = QueryTrace()
    yield recorded
    report = getattr(request.node, "rep_call", None)
    if report is not None and report.failed and recorded.spans:
        os.makedirs(ARTIFACT_DIR, exist_ok=True)
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_"
                       for ch in request.node.nodeid)
        write_jsonl(recorded, os.path.join(ARTIFACT_DIR, safe + ".jsonl"))


NETWORKS = netlib.NETWORKS


def build_network(kind, seed, peers=32, tuples=240):
    return netlib.build_network(kind, seed, peers=peers, tuples=tuples)
