"""Property test: a recorded trace fully determines the reported stats.

:func:`repro.obs.replay` rebuilds ``latency`` and the three message
counters from the span/event stream alone.  If the instrumentation ever
drifts from the engines' counter sites (a forward without its event, a
response event with the wrong fold count, a latency clock advanced
without an activity mark), replay diverges from the engine-reported
``QueryStats`` and this property fails — pinning the trace to the cost
model of Lemmas 1-3 across random overlay / handler / r / fault-plan
configurations.
"""

from functools import lru_cache

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (FaultPlan, LinearScore, QueryTrace, SLOW, SkylineHandler,
                   TopKHandler, distributed_skyline, distributed_topk,
                   event_driven_ripple, resilient_ripple, run_ripple)
from repro.obs import replay

from tests import netlib

from .conftest import build_network

R_VALUES = (0, 1, 3, SLOW)


@lru_cache(maxsize=16)
def network(kind, seed):
    return build_network(kind, seed, peers=28, tuples=220)


def handler_for(query, dims):
    if query == "topk":
        return TopKHandler(LinearScore([1.0] * dims), 4)
    return SkylineHandler(dims)


def check(trace, stats):
    replayed = replay(trace)
    assert replayed.latency == stats.latency
    assert replayed.forward_messages == stats.forward_messages
    assert replayed.response_messages == stats.response_messages
    assert replayed.answer_messages == stats.answer_messages
    assert replayed.total_messages == stats.total_messages


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(netlib.OVERLAYS),
    net_seed=st.integers(0, 2),
    query=st.sampled_from(["topk", "skyline"]),
    r=st.sampled_from(R_VALUES),
    engine=st.sampled_from(["recursive", "eventsim"]),
    peer_seed=st.integers(0, 5),
)
def test_replay_matches_fault_free_engines(kind, net_seed, query, r,
                                           engine, peer_seed):
    overlay = network(kind, net_seed)
    dims = netlib.DIMS[kind]
    handler = handler_for(query, dims)
    peer = overlay.random_peer(np.random.default_rng(peer_seed))
    trace = QueryTrace()
    run = run_ripple if engine == "recursive" else event_driven_ripple
    result = run(peer, handler, r, restriction=overlay.domain(),
                 strict=False, sink=trace)
    check(trace, result.stats)


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(netlib.OVERLAYS),
    net_seed=st.integers(0, 1),
    query=st.sampled_from(["topk", "skyline"]),
    r=st.sampled_from(R_VALUES),
    fault_seed=st.integers(0, 4),
    crash=st.sampled_from([0.0, 0.2, 0.4]),
    drop=st.sampled_from([0.0, 0.08]),
    jitter=st.sampled_from([0, 2]),
)
def test_replay_matches_supervised_engine(kind, net_seed, query, r,
                                          fault_seed, crash, drop, jitter):
    overlay = network(kind, net_seed)
    dims = netlib.DIMS[kind]
    handler = handler_for(query, dims)
    peer = overlay.random_peer(np.random.default_rng(fault_seed))
    plan = FaultPlan.churn(overlay, crash_fraction=crash, seed=fault_seed,
                           drop_prob=drop, jitter=jitter)
    trace = QueryTrace()
    result = resilient_ripple(peer, handler, r,
                              restriction=overlay.domain(),
                              faults=plan, sink=trace)
    check(trace, result.stats)


@settings(max_examples=20, deadline=None)
@given(
    net_seed=st.integers(0, 2),
    query=st.sampled_from(["topk", "skyline"]),
    r=st.sampled_from(R_VALUES),
    peer_seed=st.integers(0, 5),
)
def test_replay_matches_seeded_drivers(net_seed, query, r, peer_seed):
    """The routed+probed drivers trace under one query root span."""
    overlay = network("midas", net_seed)
    peer = overlay.random_peer(np.random.default_rng(peer_seed))
    trace = QueryTrace()
    if query == "topk":
        result = distributed_topk(peer, LinearScore([1.0, 1.0]), 4,
                                  restriction=overlay.domain(), r=r,
                                  sink=trace)
    else:
        result = distributed_skyline(peer, 2, restriction=overlay.domain(),
                                     r=r, sink=trace)
    check(trace, result.stats)
    assert len(trace.roots()) == 1
    assert trace.roots()[0].kind == "query"
