"""Exporter tests: lossless JSONL round-trips and valid Perfetto JSON.

The acceptance check from the issue rides here too: tracing a
figure-7-style skyline over a 200-peer MIDAS overlay must yield a
critical path whose end-to-end duration equals the reported
``QueryStats.latency``, and the trace must survive a JSONL round-trip
and export to well-formed ``trace_event`` JSON.
"""

import json

import numpy as np
import pytest

from repro import (LinearScore, QueryTrace, SkylineHandler, TopKHandler,
                   distributed_skyline, run_ripple)
from repro.obs import (critical_path, load_jsonl, replay, to_jsonl_records,
                       to_perfetto, write_jsonl, write_perfetto)
from repro.obs.traceview import render

from tests import netlib

from .conftest import build_network


def record_trace(kind="midas", query="topk", seed=3, r=1, **net_kwargs):
    overlay = build_network(kind, seed, **net_kwargs)
    dims = netlib.DIMS[kind]
    if query == "topk":
        handler = TopKHandler(LinearScore([1.0] * dims), 4)
    else:
        handler = SkylineHandler(dims)
    trace = QueryTrace()
    peer = overlay.random_peer(np.random.default_rng(seed))
    result = run_ripple(peer, handler, r, restriction=overlay.domain(),
                        strict=False, sink=trace)
    return trace, result


class TestJsonl:
    def test_round_trip_is_stable(self, tmp_path):
        # Loading an archive and re-serializing it is the identity: the
        # JSON projection (tuples -> lists etc.) is a fixed point.
        trace, _ = record_trace()
        path = tmp_path / "query.jsonl"
        write_jsonl(trace, path)
        loaded = load_jsonl(path)
        assert to_jsonl_records(loaded) == \
            json.loads(json.dumps(to_jsonl_records(trace)))
        assert [s.span_id for s in loaded.spans] \
            == [s.span_id for s in trace.spans]
        assert [e.kind for e in loaded.events] \
            == [e.kind for e in trace.events]

    def test_round_trip_replays_identically(self, tmp_path):
        trace, result = record_trace(kind="chord", query="skyline", r=0)
        path = tmp_path / "query.jsonl"
        write_jsonl(trace, path)
        replayed = replay(load_jsonl(path))
        assert replayed.latency == result.stats.latency
        assert replayed.total_messages == result.stats.total_messages

    def test_every_line_is_json(self, tmp_path):
        trace, _ = record_trace(kind="can")
        path = tmp_path / "query.jsonl"
        write_jsonl(trace, path)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["spans"] == len(trace.spans)
        assert len(records) == len(to_jsonl_records(trace))


class TestPerfetto:
    def test_trace_event_shape(self, tmp_path):
        trace, _ = record_trace(query="skyline")
        doc = to_perfetto(trace)
        events = doc["traceEvents"]
        assert events, "empty Perfetto export"
        for ev in events:
            assert ev["ph"] in ("X", "i", "M")
            assert "pid" in ev
            if ev["ph"] != "M":  # metadata records carry no timestamp
                assert "tid" in ev and "ts" in ev
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert len(complete) == len(trace.spans)
        # Survives a JSON round-trip (no exotic values leaked through).
        path = tmp_path / "trace.json"
        write_perfetto(trace, path)
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))

    def test_instants_cover_point_events(self):
        trace, _ = record_trace(r=2)
        doc = to_perfetto(trace)
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert len(instants) == len(trace.events)


class TestAcceptance:
    """Fig-7-scale skyline: critical path duration == reported latency."""

    @pytest.fixture(scope="class")
    def fig7(self):
        overlay = build_network("midas", seed=1, peers=200, tuples=1200)
        trace = QueryTrace()
        result = distributed_skyline(
            overlay.random_peer(np.random.default_rng(1)), 2,
            restriction=overlay.domain(), r=1, sink=trace)
        return trace, result

    def test_critical_path_duration_is_latency(self, fig7):
        trace, result = fig7
        path = critical_path(trace)
        assert path, "critical path is empty"
        root = trace.get_span(trace.root_of(path[0].span_id))
        assert path[-1].begin - root.begin == result.stats.latency

    def test_render_names_the_path(self, fig7):
        trace, result = fig7
        text = render(trace)
        assert "critical path" in text.lower()
        assert str(result.stats.latency) in text

    def test_round_trip_at_scale(self, fig7, tmp_path):
        trace, result = fig7
        path = tmp_path / "fig7.jsonl"
        write_jsonl(trace, path)
        replayed = replay(load_jsonl(path))
        assert replayed.latency == result.stats.latency
        assert replayed.total_messages == result.stats.total_messages
