"""Integration tests for the skyline competitors (DSL, SSP, naive)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.dsl import dsl_skyline
from repro.baselines.naive import broadcast_query, flood
from repro.baselines.ssp import ssp_skyline
from repro.overlays.baton import BatonOverlay
from repro.overlays.can import CanOverlay
from repro.overlays.midas import MidasOverlay
from repro.overlays.zcurve import ZCurve
from repro.queries.skyline import SkylineHandler, skyline_reference
from repro.queries.topk import TopKHandler, topk_reference
from repro.common.scoring import LinearScore


def can_network(data, size, seed=0):
    overlay = CanOverlay(data.shape[1], size=1, seed=seed, join_policy="data")
    overlay.load(data)
    overlay.grow_to(size)
    return overlay


class TestDSL:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(11)
        data = rng.random((1500, 3)) * 0.999
        return can_network(data, 96, seed=1), data

    def test_correct_skyline(self, setup):
        overlay, data = setup
        result = dsl_skyline(overlay, overlay.random_peer())
        assert result.answer == skyline_reference(data)

    def test_every_initiator_agrees(self, setup):
        overlay, data = setup
        reference = skyline_reference(data)
        for peer in list(overlay.peers())[::17]:
            assert dsl_skyline(overlay, peer).answer == reference

    def test_prunes_some_peers(self, setup):
        overlay, _ = setup
        result = dsl_skyline(overlay, overlay.random_peer())
        assert result.stats.processed < len(overlay)

    def test_latency_at_least_route(self, setup):
        overlay, _ = setup
        result = dsl_skyline(overlay, overlay.random_peer())
        assert result.stats.latency >= 1

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=6, deadline=None)
    def test_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((200, 2)) * 0.999
        overlay = can_network(data, 24, seed=seed)
        result = dsl_skyline(overlay, overlay.random_peer(rng))
        assert result.answer == skyline_reference(data)


class TestSSP:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(13)
        data = rng.random((1500, 3)) * 0.999
        return BatonOverlay(96, data, zcurve=ZCurve(3, 8), seed=1), data

    def test_correct_skyline(self, setup):
        overlay, data = setup
        result = ssp_skyline(overlay, overlay.random_peer())
        assert result.answer == skyline_reference(data)

    def test_every_initiator_agrees(self, setup):
        overlay, data = setup
        reference = skyline_reference(data)
        for peer in list(overlay.peers())[::17]:
            assert ssp_skyline(overlay, peer).answer == reference

    def test_prunes_some_peers(self, setup):
        overlay, _ = setup
        result = ssp_skyline(overlay, overlay.random_peer())
        assert result.stats.processed < len(overlay)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=6, deadline=None)
    def test_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((200, 2)) * 0.999
        overlay = BatonOverlay(17, data, zcurve=ZCurve(2, 8), seed=seed)
        result = ssp_skyline(overlay, overlay.random_peer(rng))
        assert result.answer == skyline_reference(data)


class TestNaiveBroadcast:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(17)
        data = rng.random((800, 3)) * 0.999
        overlay = MidasOverlay(3, size=1, seed=2, join_policy="data")
        overlay.load(data)
        overlay.grow_to(48)
        return overlay, data

    def test_flood_reaches_everyone(self, setup):
        overlay, _ = setup
        reached, messages = flood(overlay.random_peer())
        assert len(reached) == len(overlay)
        assert messages >= len(overlay) - 1

    def test_broadcast_topk_correct_but_expensive(self, setup):
        overlay, data = setup
        fn = LinearScore([1, 1, 1])
        result = broadcast_query(overlay.random_peer(), TopKHandler(fn, 5))
        assert [s for s, _ in result.answer] == \
            [s for s, _ in topk_reference(data, fn, 5)]
        assert result.stats.processed == len(overlay)

    def test_broadcast_skyline_correct(self, setup):
        overlay, data = setup
        result = broadcast_query(overlay.random_peer(), SkylineHandler(3))
        assert sorted(result.answer) == skyline_reference(data)

    def test_broadcast_latency_is_eccentricity(self, setup):
        overlay, _ = setup
        result = broadcast_query(overlay.random_peer(), SkylineHandler(3))
        assert result.stats.latency <= overlay.tree.max_depth()
