"""Tests for SPEERTO and the k-skyband machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.speerto import precompute_skybands, speerto_topk
from repro.common.scoring import LinearScore
from repro.overlays.superpeer import SuperPeerNetwork
from repro.queries.skyline import k_skyband_of_array, skyline_of_array
from repro.queries.topk import topk_reference


class TestKSkyband:
    def test_one_skyband_is_skyline(self):
        rng = np.random.default_rng(0)
        data = rng.random((300, 3))
        band = {tuple(r) for r in k_skyband_of_array(data, 1)}
        sky = {tuple(r) for r in skyline_of_array(data)}
        assert band == sky

    def test_monotone_in_k(self):
        rng = np.random.default_rng(1)
        data = rng.random((200, 2))
        sizes = [len(k_skyband_of_array(data, k)) for k in (1, 3, 6)]
        assert sizes == sorted(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            k_skyband_of_array(np.zeros((2, 2)), 0)

    @given(st.integers(0, 10 ** 6), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_max_skyband_contains_topk_of_any_monotone_function(
            self, seed, k):
        """The SPEERTO property: the max-oriented k-skyband contains the
        top-k for every increasing linear score."""
        rng = np.random.default_rng(seed)
        data = rng.random((120, 3))
        band = {tuple(r) for r in k_skyband_of_array(data, k,
                                                     maximize=True)}
        weights = rng.random(3) + 0.01
        top = topk_reference(data, LinearScore(weights), k)
        for _, point in top:
            assert point in band


class TestSpeerto:
    @pytest.fixture(scope="class")
    def network(self):
        rng = np.random.default_rng(3)
        data = rng.random((4000, 3)) * 0.999
        net = SuperPeerNetwork(3, super_peers=4, nodes_per_super=8, seed=2)
        net.load(data)
        precompute_skybands(net, 10)
        return net, data

    def test_validation(self):
        with pytest.raises(ValueError):
            SuperPeerNetwork(2, super_peers=0, nodes_per_super=3)

    def test_load_scatters_everything(self, network):
        net, data = network
        assert net.total_tuples() == len(data)

    def test_exact_answers_for_any_weights(self, network):
        net, data = network
        rng = np.random.default_rng(0)
        for _ in range(5):
            weights = rng.random(3) + 0.01
            fn = LinearScore(weights)
            result = speerto_topk(net, net.random_node(rng), fn, 10)
            assert [s for s, _ in result.answer] == pytest.approx(
                [s for s, _ in topk_reference(data, fn, 10)])

    def test_smaller_k_reuses_cache(self, network):
        net, data = network
        fn = LinearScore([1, 1, 1])
        result = speerto_topk(net, net.random_node(), fn, 4)
        assert [s for s, _ in result.answer] == pytest.approx(
            [s for s, _ in topk_reference(data, fn, 4)])

    def test_larger_k_requires_precomputation(self, network):
        net, _ = network
        with pytest.raises(RuntimeError):
            speerto_topk(net, net.random_node(), LinearScore([1, 1, 1]), 50)

    def test_query_cost_is_backbone_only(self, network):
        net, _ = network
        result = speerto_topk(net, net.random_node(),
                              LinearScore([1, 1, 1]), 10)
        # only super-peers process queries: 1 home + 3 remote
        assert result.stats.processed == 4
        assert result.stats.latency == 2

    def test_precompute_cost_reported(self):
        rng = np.random.default_rng(5)
        data = rng.random((500, 2))
        net = SuperPeerNetwork(2, super_peers=2, nodes_per_super=4)
        net.load(data)
        shipped = precompute_skybands(net, 3)
        assert 0 < shipped <= len(data)
