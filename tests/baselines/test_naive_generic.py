"""The naive broadcast works over any overlay (it only needs links)."""

import numpy as np
import pytest

from repro.baselines.naive import broadcast_query, flood
from repro.common.scoring import NearestScore
from repro.overlays.can import CanOverlay
from repro.overlays.chord import ChordOverlay
from repro.queries.topk import TopKHandler, topk_reference


class TestFloodOverChord:
    def test_reaches_every_peer(self):
        overlay = ChordOverlay(size=40, seed=1)
        reached, _ = flood(overlay.random_peer())
        assert len(reached) == 40

    def test_broadcast_topk(self):
        overlay = ChordOverlay(size=24, seed=2)
        data = np.random.default_rng(0).random((200, 1)) * 0.999
        overlay.load(data)
        fn = NearestScore((0.4,))
        result = broadcast_query(overlay.random_peer(), TopKHandler(fn, 3))
        assert [s for s, _ in result.answer] == pytest.approx(
            [s for s, _ in topk_reference(data, fn, 3)])


class TestFloodOverCan:
    def test_reaches_every_peer(self):
        overlay = CanOverlay(2, size=30, seed=3)
        reached, messages = flood(overlay.random_peer())
        assert len(reached) == 30
        # every neighbor edge carries at least one message in each direction
        assert messages >= 29

    def test_latency_is_graph_eccentricity(self):
        overlay = CanOverlay(2, size=30, seed=4)
        start = overlay.random_peer()
        reached, _ = flood(start)
        depths = {peer.peer_id: depth for peer, depth in reached}
        # BFS depth of the farthest peer == reported broadcast latency
        handler = TopKHandler(NearestScore((0.5, 0.5)), 1)
        overlay.load(np.random.default_rng(1).random((50, 2)) * 0.999)
        result = broadcast_query(start, handler)
        assert result.stats.latency == max(depths.values())
