"""Tests for the Skyframe baseline (border peers over CAN)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.skyframe import skyframe_skyline
from repro.overlays.can import CanOverlay
from repro.queries.skyline import skyline_reference


def network(data, size, seed=0):
    overlay = CanOverlay(data.shape[1], size=1, seed=seed, join_policy="data")
    overlay.load(data)
    overlay.grow_to(size)
    return overlay


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(23)
    data = rng.random((1500, 3)) * 0.999
    return network(data, 96, seed=3), data


class TestSkyframe:
    def test_correct(self, setup):
        overlay, data = setup
        result = skyframe_skyline(overlay, overlay.random_peer())
        assert result.answer == skyline_reference(data)

    def test_initiators_agree(self, setup):
        overlay, data = setup
        reference = skyline_reference(data)
        for peer in list(overlay.peers())[::19]:
            assert skyframe_skyline(overlay, peer).answer == reference

    def test_skips_dominated_peers(self, setup):
        overlay, _ = setup
        result = skyframe_skyline(overlay, overlay.random_peer())
        assert result.stats.processed < len(overlay)

    def test_queries_all_border_peers(self, setup):
        overlay, _ = setup
        border = sum(1 for p in overlay.peers()
                     if any(lo == 0.0 for lo in p.zone.lo))
        result = skyframe_skyline(overlay, overlay.random_peer())
        assert result.stats.processed >= border

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=6, deadline=None)
    def test_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((200, 2)) * 0.999
        overlay = network(data, 20, seed=seed)
        result = skyframe_skyline(overlay, overlay.random_peer(rng))
        assert result.answer == skyline_reference(data)


class TestConstrainedSkyline:
    def test_constrained_matches_reference(self):
        from repro.overlays.midas import MidasOverlay
        from repro.common.geometry import Rect
        from repro.queries.skyline import distributed_skyline

        rng = np.random.default_rng(29)
        data = rng.random((1200, 2)) * 0.999
        overlay = MidasOverlay(2, size=1, seed=4, join_policy="data")
        overlay.load(data)
        overlay.grow_to(48)
        box = Rect((0.25, 0.1), (0.8, 0.75))
        for r in (0, 10 ** 9):
            result = distributed_skyline(
                overlay.random_peer(), 2, restriction=overlay.domain(),
                r=r, constraint=box)
            assert result.answer == skyline_reference(data, box)

    def test_constraint_prunes_outside_peers(self):
        from repro.overlays.midas import MidasOverlay
        from repro.common.geometry import Rect
        from repro.queries.skyline import distributed_skyline

        rng = np.random.default_rng(31)
        data = rng.random((1200, 2)) * 0.999
        overlay = MidasOverlay(2, size=1, seed=4, join_policy="data")
        overlay.load(data)
        overlay.grow_to(64)
        tiny = Rect((0.48, 0.48), (0.52, 0.52))
        result = distributed_skyline(
            overlay.random_peer(), 2, restriction=overlay.domain(),
            r=0, constraint=tiny)
        assert result.stats.processed < len(overlay) / 2

    def test_dimension_mismatch(self):
        from repro.common.geometry import Rect
        from repro.queries.skyline import SkylineHandler

        with pytest.raises(ValueError):
            SkylineHandler(3, constraint=Rect((0, 0), (1, 1)))
