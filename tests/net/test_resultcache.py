"""Result-cache soundness: warm == cold, exact invalidation, semantic reuse.

The cache's one contract is that a warm answer is byte-identical to the
answer the cold run would have produced *right now* — across exact hits,
semantic seeding, store mutations, zone splits/merges, and crash
promotions.  Every test here reduces to that comparison; the hypothesis
sweep at the bottom pins it across the overlay × handler matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (Frustum, FrustumRegion, LinearScore, RangeHandler,
                   Rect, RectRegion, SkylineHandler, TopKHandler,
                   run_ripple)
from repro.net.context import QueryResult, QueryStats
from repro.net.resultcache import (CacheDirectory, CacheLookup,
                                   handler_fingerprint, region_fingerprint)
from repro.net.scheduler import QueryCompleted, QueryEngine
from repro.overlays.replication import ReplicaDirectory

from tests.netlib import DIMS, ENGINE_CASES, OVERLAYS, handlers_for, \
    midas_network


def run_cold(overlay, handler, restriction=None, *, strict=True, r=0):
    restriction = overlay.domain() if restriction is None else restriction
    return run_ripple(overlay.peers()[0], handler, r,
                      restriction=restriction, strict=strict)


def run_warm(overlay, cache, handler, restriction=None, *,
             strict=True, r=0):
    """One query through an engine wired to ``cache``; its outcome."""
    restriction = overlay.domain() if restriction is None else restriction
    engine = QueryEngine(capacity=2, cache=cache)
    job = engine.submit(overlay.peers()[0], handler, r,
                        restriction=restriction, strict=strict)
    outcome = engine.run()[job]
    assert isinstance(outcome, QueryCompleted)
    return outcome


# -- fingerprints -----------------------------------------------------------


class TestFingerprints:
    def test_structurally_equal_handlers_share_a_key(self):
        # The workload generator builds a fresh handler per arrival;
        # value equality (not object identity) must key the cache.
        a = TopKHandler(LinearScore([1.0, 2.0]), 4)
        b = TopKHandler(LinearScore([1.0, 2.0]), 4)
        assert a is not b
        assert handler_fingerprint(a) == handler_fingerprint(b)

    def test_different_k_different_key(self):
        fn = LinearScore([1.0, 1.0])
        assert handler_fingerprint(TopKHandler(fn, 4)) \
            != handler_fingerprint(TopKHandler(fn, 8))

    def test_multi_round_handler_uncacheable(self):
        diversify = handlers_for(2, third="diversify")[2]
        assert handler_fingerprint(diversify) is None

    def test_frustum_region_uncacheable(self):
        # CAN link restrictions are frusta with conservative covers; two
        # issues of the "same" query may differ hop-for-hop, so no key.
        frustum = Frustum(axis=0, base=Rect((0.0, 0.0), (0.0, 1.0)),
                          top=Rect((0.5, 0.2), (0.5, 0.8)))
        assert region_fingerprint(FrustumRegion(frustum)) is None

    def test_rect_and_arc_regions_cacheable(self):
        for kind in ("midas", "chord"):
            overlay = ENGINE_CASES[kind][0](3)
            assert region_fingerprint(overlay.domain()) is not None


# -- exact reuse ------------------------------------------------------------


class TestExactReuse:
    @pytest.mark.parametrize("kind", ["midas", "chord", "skipgraph"])
    def test_warm_is_bit_identical_and_free(self, kind):
        build, dims, strict = ENGINE_CASES[kind]
        overlay = build(7)
        cache = CacheDirectory(overlay)
        for handler in handlers_for(dims):
            cold = run_cold(overlay, handler, strict=strict)
            first = run_warm(overlay, cache, handler, strict=strict)
            second = run_warm(overlay, cache, handler, strict=strict)
            assert first.answer == cold.answer
            assert second.answer == cold.answer
            # The exact hit ran nothing: empty stats, no messages.
            assert second.stats == QueryStats()
        assert cache.hits == len(handlers_for(dims))
        assert cache.messages_saved > 0

    def test_partial_answers_are_refused(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        partial = QueryResult([], QueryStats(completeness=0.5))
        peer_ids = [p.peer_id for p in overlay.peers()[:2]]
        assert not cache.store(handler, overlay.domain(), partial, peer_ids)
        replayed = QueryResult([], QueryStats(replica_reads=1))
        assert not cache.store(handler, overlay.domain(), replayed, peer_ids)
        assert len(cache) == 0

    def test_untracked_evidence_is_refused(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        ok = QueryResult([], QueryStats())
        assert not cache.store(handler, overlay.domain(), ok, ["no-such"])
        assert not cache.store(handler, overlay.domain(), ok, [])

    def test_capacity_evicts_oldest_first(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay, capacity=1)
        first = RangeHandler(Rect((0.0, 0.0), (0.4, 0.4)))
        second = RangeHandler(Rect((0.5, 0.5), (0.9, 0.9)))
        run_warm(overlay, cache, first)
        assert len(cache) == 1
        run_warm(overlay, cache, second)
        assert len(cache) == 1
        assert cache.lookup(second, overlay.domain()).is_exact
        assert not cache.lookup(first, overlay.domain()).is_exact


# -- invalidation -----------------------------------------------------------


class TestInvalidation:
    def test_store_mutation_drops_exactly_the_affected_entries(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay, semantic=False)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        run_warm(overlay, cache, handler)
        (entry,) = cache._entries.values()
        touched_ids = {peer_id for peer_id, _ in entry.touched}
        untouched = next(p for p in overlay.peers()
                         if p.peer_id not in touched_ids)
        # Mutating a peer the query never read keeps the entry hot...
        untouched.store.insert(np.array([0.5, 0.5]))
        assert cache.lookup(handler, overlay.domain()).is_exact
        # ...mutating a touched peer drops it, and the re-run reflects
        # the new tuple (warm == the *new* cold, not the stale answer).
        target = next(p for p in overlay.peers()
                      if p.peer_id in touched_ids)
        target.store.insert(np.array([0.99, 0.99]))
        assert not cache.lookup(handler, overlay.domain()).is_exact
        warm = run_warm(overlay, cache, handler)
        assert warm.answer == run_cold(overlay, handler).answer
        assert warm.stats.total_messages > 0

    def test_split_then_merge_stays_sound(self):
        overlay = midas_network(7, peers=12)
        cache = CacheDirectory(overlay)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        run_warm(overlay, cache, handler)
        overlay.grow_to(16)          # splits: extract() + epoch bump
        warm = run_warm(overlay, cache, handler)
        assert warm.answer == run_cold(overlay, handler).answer
        overlay.shrink_to(12)        # merges: take_all() + bulk_load()
        warm = run_warm(overlay, cache, handler)
        assert warm.answer == run_cold(overlay, handler).answer

    def test_crash_promotion_invalidates_via_repair(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay, semantic=False)
        replicas = ReplicaDirectory(overlay, copies=1)
        cache.watch_replicas(replicas)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        run_warm(overlay, cache, handler)
        (entry,) = cache._entries.values()
        dead_id = entry.touched[0][0]
        replicas.repair(dead_id, lambda peer_id: True)
        assert len(cache) == 0
        assert not cache.lookup(handler, overlay.domain()).is_exact

    def test_engine_wires_the_promotion_hook(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        replicas = ReplicaDirectory(overlay, copies=1)
        fired = []
        original = cache.invalidate_peer
        cache.invalidate_peer = lambda pid: (fired.append(pid),
                                             original(pid))
        QueryEngine(capacity=2, cache=cache, replicas=replicas)
        replicas.repair(overlay.peers()[0].peer_id, lambda peer_id: True)
        assert fired == [overlay.peers()[0].peer_id]


# -- semantic reuse ---------------------------------------------------------


class TestSemanticReuse:
    def test_topk_prefix_of_larger_k(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        fn = LinearScore([1.0, 1.0])
        run_warm(overlay, cache, TopKHandler(fn, 8))
        smaller = TopKHandler(fn, 4)
        warm = run_warm(overlay, cache, smaller)
        assert warm.answer == run_cold(overlay, smaller).answer
        assert warm.stats == QueryStats()   # served without running
        assert cache.semantic_hits == 1

    def test_topk_superset_region_seeds_the_floor(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 8)
        run_warm(overlay, cache, handler)
        # Top scores cluster at the maximizing corner; a corner-hugging
        # sub-box retains >= k cached candidates, so the floor seeds.
        sub = RectRegion(Rect((0.3, 0.3), (1.0, 1.0)))
        cold = run_cold(overlay, handler, sub)
        warm = run_warm(overlay, cache, handler, sub)
        assert warm.answer == cold.answer
        assert cache.semantic_hits == 1
        assert warm.stats.total_messages <= cold.stats.total_messages

    def test_skyline_subset_region_seeds_members(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        handler = SkylineHandler(2)
        run_warm(overlay, cache, handler)
        sub = RectRegion(Rect((0.0, 0.0), (0.6, 0.6)))
        cold = run_cold(overlay, handler, sub)
        warm = run_warm(overlay, cache, handler, sub)
        assert warm.answer == cold.answer
        assert cache.semantic_hits == 1

    def test_range_subbox_is_a_pure_filter(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        run_warm(overlay, cache, RangeHandler(Rect((0.0, 0.0), (0.9, 0.9))))
        narrower = RangeHandler(Rect((0.2, 0.2), (0.7, 0.7)))
        warm = run_warm(overlay, cache, narrower)
        assert warm.answer == run_cold(overlay, narrower).answer
        assert warm.stats == QueryStats()   # exact: no network at all
        assert cache.semantic_hits == 1

    def test_approximate_topk_never_reuses_semantically(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        fn = LinearScore([1.0, 1.0])
        run_warm(overlay, cache, TopKHandler(fn, 8))
        approx = TopKHandler(fn, 4, epsilon=0.1)
        warm = run_warm(overlay, cache, approx)
        assert cache.semantic_hits == 0
        assert warm.answer == run_cold(overlay, approx).answer

    def test_seed_lookup_reports_kind(self):
        overlay = midas_network(7)
        cache = CacheDirectory(overlay)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 8)
        run_warm(overlay, cache, handler)
        found = cache.lookup(
            handler, RectRegion(Rect((0.3, 0.3), (1.0, 1.0))))
        assert isinstance(found, CacheLookup)
        assert found.kind == "seed"
        assert not found.is_exact


# -- the matrix property ----------------------------------------------------


CACHEABLE = [kind for kind in OVERLAYS if kind != "can"]


class TestWarmColdMatrix:
    @settings(max_examples=12, deadline=None)
    @given(kind=st.sampled_from(CACHEABLE),
           family=st.integers(min_value=0, max_value=2),
           seed=st.integers(min_value=0, max_value=5))
    def test_warm_equals_cold_everywhere(self, kind, family, seed):
        build, dims, strict = ENGINE_CASES[kind]
        overlay = build(seed, peers=12, tuples=80)
        handler = handlers_for(dims)[family]
        cold = run_cold(overlay, handler, strict=strict)
        cache = CacheDirectory(overlay)
        first = run_warm(overlay, cache, handler, strict=strict)
        second = run_warm(overlay, cache, handler, strict=strict)
        assert first.answer == cold.answer
        assert second.answer == cold.answer
        assert second.stats == QueryStats()
