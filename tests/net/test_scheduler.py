"""Concurrent query engine: bit-identity, admission, budgets, deadlines.

Three pillars:

* **Bit-identity** — with one in-flight query the multiplexed engine
  must reproduce the single-query engines exactly: answers *and* full
  ``QueryStats`` against ``run_ripple`` / ``event_driven_ripple``
  (fault-free) and ``resilient_ripple`` (loss, churn, replicas), across
  every substrate in ``tests.netlib.OVERLAYS`` and all handlers.
* **Admission control** — capacity and the bounded queue are honoured,
  overflow is shed with a typed outcome, policies order admission.
* **Graceful degradation** — deadline and per-query event budgets
  cancel exactly the offending query with accurate partial stats; no
  retry or replica recovery ever runs past a query's deadline; and a
  runaway query cannot starve its co-scheduled tenants.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import LinearScore, SkylineHandler, TopKHandler, run_ripple
from repro.net.context import QueryContext
from repro.net.eventsim import (EventSimulator, SimulationBudgetExceeded,
                                event_driven_ripple)
from repro.net.faults import FaultPlan, resilient_ripple
from repro.net.scheduler import (FifoPolicy, PriorityPolicy,
                                 QueryBudgetExceeded, QueryCompleted,
                                 QueryDeadlineExceeded, QueryEngine,
                                 QueryRejected, WeightedFairPolicy)
from repro.obs.metrics import MetricsRegistry
from repro.overlays.replication import ReplicaDirectory

from tests.netlib import ENGINE_CASES as NETWORKS
from tests.netlib import handlers_for, midas_network


class TestBitIdentityFaultFree:
    @pytest.mark.parametrize("kind", sorted(NETWORKS))
    @pytest.mark.parametrize("r", [0, 2, 10 ** 9])
    def test_matches_both_single_query_engines(self, kind, r):
        build, dims, strict = NETWORKS[kind]
        for handler in handlers_for(dims):
            overlay = build(11)
            initiator = overlay.peers()[3]
            recursive = run_ripple(initiator, handler, r,
                                   restriction=overlay.domain(),
                                   strict=strict)
            message = event_driven_ripple(initiator, handler, r,
                                          restriction=overlay.domain(),
                                          strict=strict)
            engine = QueryEngine(capacity=3)
            job = engine.submit(initiator, handler, r,
                                restriction=overlay.domain(), strict=strict)
            outcome = engine.run()[job]
            assert isinstance(outcome, QueryCompleted)
            assert outcome.answer == recursive.answer
            assert outcome.answer == message.answer
            assert outcome.stats == message.stats
            assert outcome.stats.latency == recursive.stats.latency
            assert outcome.stats.processed == recursive.stats.processed

    @given(st.integers(0, 10 ** 6), st.integers(0, 4))
    @settings(max_examples=10, deadline=None)
    def test_fuzz_midas_topk(self, seed, r):
        overlay = midas_network(seed, peers=20, tuples=150)
        handler = TopKHandler(LinearScore([1, 0.5]), 3)
        initiator = overlay.random_peer(np.random.default_rng(seed))
        message = event_driven_ripple(initiator, handler, r,
                                      restriction=overlay.domain())
        engine = QueryEngine()
        job = engine.submit(initiator, handler, r,
                            restriction=overlay.domain())
        outcome = engine.run()[job]
        assert isinstance(outcome, QueryCompleted)
        assert outcome.answer == message.answer
        assert outcome.stats == message.stats


class TestBitIdentityUnderFaults:
    @pytest.mark.parametrize("drop_prob,jitter", [(0.0, 0), (0.3, 2)])
    def test_matches_resilient_ripple_lossy(self, drop_prob, jitter):
        overlay = midas_network(9, peers=24, tuples=200)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[3]
        baseline = resilient_ripple(
            initiator, handler, 1, restriction=overlay.domain(),
            faults=FaultPlan(seed=11, drop_prob=drop_prob, jitter=jitter))
        engine = QueryEngine(
            faults=FaultPlan(seed=11, drop_prob=drop_prob, jitter=jitter))
        job = engine.submit(initiator, handler, 1,
                            restriction=overlay.domain())
        outcome = engine.run()[job]
        assert isinstance(outcome, QueryCompleted)
        assert outcome.answer == baseline.answer
        assert outcome.stats == baseline.stats

    @pytest.mark.parametrize("kind", sorted(NETWORKS))
    def test_matches_resilient_ripple_churn_with_replicas(self, kind):
        build, dims, _ = NETWORKS[kind]
        handler = SkylineHandler(dims)

        def run_baseline():
            overlay = build(7)
            plan = FaultPlan.churn(overlay, crash_fraction=0.2, seed=4)
            replicas = ReplicaDirectory(overlay, copies=2)
            initiator = overlay.peers()[1]
            return resilient_ripple(initiator, handler, 0,
                                    restriction=overlay.domain(),
                                    faults=plan, replicas=replicas)

        def run_engine():
            overlay = build(7)
            plan = FaultPlan.churn(overlay, crash_fraction=0.2, seed=4)
            replicas = ReplicaDirectory(overlay, copies=2)
            initiator = overlay.peers()[1]
            engine = QueryEngine(faults=plan, replicas=replicas)
            job = engine.submit(initiator, handler, 0,
                                restriction=overlay.domain())
            return engine.run()[job]

        baseline = run_baseline()
        outcome = run_engine()
        assert isinstance(outcome, QueryCompleted)
        assert outcome.answer == baseline.answer
        assert outcome.stats == baseline.stats


class TestAdmissionControl:
    def test_overflow_is_shed_with_typed_outcome(self):
        overlay = midas_network(5, peers=16, tuples=100)
        handler = SkylineHandler(2)
        engine = QueryEngine(capacity=1, queue_limit=1)
        jobs = [engine.submit(overlay.peers()[i], handler, 0,
                              restriction=overlay.domain(), strict=False)
                for i in range(3)]
        outcomes = engine.run()
        kinds = [type(outcomes[j]) for j in jobs]
        # One runs, one queues (both complete), the third is shed.
        assert kinds.count(QueryRejected) == 1
        assert kinds.count(QueryCompleted) == 2
        shed = next(o for o in outcomes.values()
                    if isinstance(o, QueryRejected))
        assert shed.reason == "queue-full"
        assert shed.stats.processed == 0
        assert shed.stats.completeness == 0.0
        assert shed.finished_at == shed.submitted_at

    def test_queued_query_completes_exactly(self):
        overlay = midas_network(5, peers=16, tuples=100)
        handler = TopKHandler(LinearScore([1, 1]), 3)
        initiator = overlay.peers()[2]
        solo = event_driven_ripple(initiator, handler, 1,
                                   restriction=overlay.domain())
        engine = QueryEngine(capacity=1, queue_limit=4)
        first = engine.submit(overlay.peers()[0], handler, 1,
                              restriction=overlay.domain())
        queued = engine.submit(initiator, handler, 1,
                               restriction=overlay.domain())
        outcomes = engine.run()
        assert isinstance(outcomes[first], QueryCompleted)
        result = outcomes[queued]
        assert isinstance(result, QueryCompleted)
        assert result.answer == solo.answer
        # Turnaround includes the admission wait; execution stats do not.
        assert result.stats.latency == solo.stats.latency
        assert result.turnaround >= result.stats.latency

    def test_priority_policy_orders_admission(self):
        overlay = midas_network(5, peers=16, tuples=100)
        handler = SkylineHandler(2)
        engine = QueryEngine(capacity=1, queue_limit=8,
                             policy=PriorityPolicy())
        jobs = {}
        for priority in (0, 1, 5, 3):
            jobs[priority] = engine.submit(
                overlay.peers()[priority], handler, 0,
                restriction=overlay.domain(), strict=False,
                priority=priority)
        outcomes = engine.run()
        finished = sorted(
            (outcome.finished_at, priority)
            for priority, job in jobs.items()
            for outcome in [outcomes[job]])
        # After the first (admitted immediately), highest priority first.
        assert [p for _, p in finished[1:]] == [5, 3, 1]

    def test_weighted_fair_policy_shares_admissions(self):
        policy = WeightedFairPolicy({"a": 2, "b": 1})
        overlay = midas_network(5, peers=24, tuples=100)
        handler = SkylineHandler(2)
        engine = QueryEngine(capacity=1, queue_limit=12, policy=policy)
        jobs = {}
        for i in range(12):
            cls = "a" if i < 6 else "b"
            jobs[engine.submit(overlay.peers()[i], handler, 0,
                               restriction=overlay.domain(), strict=False,
                               weight_class=cls)] = cls
        outcomes = engine.run()
        order = [jobs[j] for j, _ in sorted(
            outcomes.items(), key=lambda kv: (kv[1].finished_at, kv[0]))]
        # FIFO would drain all of "a" (submitted first) before any "b";
        # weighted fairness interleaves them roughly 2:1 instead.
        assert order != ["a"] * 6 + ["b"] * 6
        assert "b" in order[:4]
        assert 3 <= order[:6].count("a") <= 5

    def test_fifo_is_default_and_validates_bounds(self):
        assert isinstance(QueryEngine().policy, FifoPolicy)
        with pytest.raises(ValueError):
            QueryEngine(capacity=0)
        with pytest.raises(ValueError):
            QueryEngine(queue_limit=-1)
        with pytest.raises(ValueError):
            WeightedFairPolicy({"a": 0})

    def test_counters_reach_registry(self):
        registry = MetricsRegistry()
        overlay = midas_network(5, peers=16, tuples=100)
        handler = SkylineHandler(2)
        engine = QueryEngine(capacity=1, queue_limit=0, registry=registry)
        for i in range(2):
            engine.submit(overlay.peers()[i], handler, 0,
                          restriction=overlay.domain(), strict=False)
        engine.run()
        counters = registry.as_dict()["counters"]
        assert counters["queries.submitted"] == 2
        assert counters["queries.admitted"] == 1
        assert counters["queries.completed"] == 1
        assert counters["queries.shed"] == 1


class _RecordingSink:
    """Minimal TraceSink capturing every instrumentation timestamp."""

    enabled = True

    def __init__(self):
        self.times = []
        self._ids = iter(range(1, 10 ** 9))

    def begin_span(self, kind, peer, time, **attrs):
        self.times.append(time)
        return next(self._ids)

    def end_span(self, span, time, **attrs):
        self.times.append(time)

    def event(self, kind, time, **attrs):
        self.times.append(time)

    def on_stats(self, stats):
        pass


class TestDeadlines:
    def test_deadline_exceeded_returns_partial_stats(self):
        overlay = midas_network(3, peers=48, tuples=400)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[7]
        solo = event_driven_ripple(initiator, handler, 10 ** 9,
                                   restriction=overlay.domain())
        deadline = solo.stats.latency // 2
        assert deadline > 0
        engine = QueryEngine()
        job = engine.submit(initiator, handler, 10 ** 9,
                            restriction=overlay.domain(), deadline=deadline)
        outcome = engine.run()[job]
        assert isinstance(outcome, QueryDeadlineExceeded)
        assert outcome.deadline == deadline
        assert outcome.turnaround == deadline
        assert 0 < outcome.stats.processed < solo.stats.processed
        assert outcome.stats.latency <= deadline

    def test_no_work_runs_past_the_deadline(self):
        """Retries and recovery respect the deadline budget: no span,
        event, or message is recorded after the cut-off."""
        overlay = midas_network(9, peers=24, tuples=200)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[3]
        plan = FaultPlan.churn(overlay, crash_fraction=0.3, seed=2,
                               drop_prob=0.3)
        sink = _RecordingSink()
        deadline = 20
        engine = QueryEngine(faults=plan, sink=sink)
        job = engine.submit(initiator, handler, 1,
                            restriction=overlay.domain(), deadline=deadline)
        outcome = engine.run()[job]
        assert isinstance(outcome, QueryDeadlineExceeded)
        assert outcome.stats.retries > 0  # the plan really forced retries
        assert max(sink.times) <= deadline
        assert outcome.stats.latency <= deadline

    def test_deadline_can_expire_in_admission_queue(self):
        overlay = midas_network(3, peers=48, tuples=400)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        engine = QueryEngine(capacity=1, queue_limit=4)
        first = engine.submit(overlay.peers()[7], handler, 10 ** 9,
                              restriction=overlay.domain())
        starved = engine.submit(overlay.peers()[1], handler, 0,
                                restriction=overlay.domain(), deadline=1)
        outcomes = engine.run()
        assert isinstance(outcomes[first], QueryCompleted)
        result = outcomes[starved]
        assert isinstance(result, QueryDeadlineExceeded)
        assert result.stats.processed == 0
        assert result.stats.completeness == 0.0
        assert result.turnaround == 1

    def test_completed_queries_unaffected_by_neighbour_deadline(self):
        overlay = midas_network(3, peers=48, tuples=400)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        solo = event_driven_ripple(overlay.peers()[2], handler, 0,
                                   restriction=overlay.domain())
        doomed_solo = event_driven_ripple(overlay.peers()[7], handler, 0,
                                          restriction=overlay.domain())
        assert doomed_solo.stats.latency >= 2
        engine = QueryEngine(capacity=4)
        doomed = engine.submit(overlay.peers()[7], handler, 0,
                               restriction=overlay.domain(),
                               deadline=doomed_solo.stats.latency - 1)
        fine = engine.submit(overlay.peers()[2], handler, 0,
                             restriction=overlay.domain())
        outcomes = engine.run()
        assert isinstance(outcomes[doomed], QueryDeadlineExceeded)
        survivor = outcomes[fine]
        assert isinstance(survivor, QueryCompleted)
        assert survivor.answer == solo.answer
        assert survivor.stats.completeness == 1.0


class TestPerQueryBudgets:
    def test_runaway_query_cannot_kill_co_tenants(self):
        overlay = midas_network(3, peers=48, tuples=400)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        solo = event_driven_ripple(overlay.peers()[2], handler, 0,
                                   restriction=overlay.domain())
        engine = QueryEngine(capacity=4)
        # A parallel skyline floods every peer: far more than 10 events.
        runaway = engine.submit(overlay.peers()[7], SkylineHandler(2), 0,
                                restriction=overlay.domain(), max_events=10)
        fine = engine.submit(overlay.peers()[2], handler, 0,
                             restriction=overlay.domain())
        outcomes = engine.run()
        blown = outcomes[runaway]
        assert isinstance(blown, QueryBudgetExceeded)
        assert blown.cap == 10
        assert blown.stats.processed > 0  # partial work is reported
        survivor = outcomes[fine]
        assert isinstance(survivor, QueryCompleted)
        assert survivor.answer == solo.answer

    def test_standalone_per_query_budget_raises_with_query_id(self):
        sim = EventSimulator()
        ctx = QueryContext()
        ctx.query_id = "q-7"
        ctx.max_events = 3

        def tick():
            sim.schedule(1, tick, ctx)

        sim.schedule(0, tick, ctx)
        with pytest.raises(SimulationBudgetExceeded) as exc:
            sim.run()
        assert exc.value.cap == 3
        assert exc.value.executed == 4
        assert exc.value.query_id == "q-7"
        assert exc.value.stats is not None

    def test_unattributed_events_do_not_charge_budgets(self):
        sim = EventSimulator()
        ctx = QueryContext()
        ctx.max_events = 1
        ran = []
        sim.schedule(0, lambda: ran.append("free"))
        sim.schedule(1, lambda: ran.append("free too"))
        sim.run()
        assert ran == ["free", "free too"]
        assert ctx.events_executed == 0


class TestServiceQueues:
    def test_zero_service_time_is_bit_identical(self):
        overlay = midas_network(3)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[7]
        solo = event_driven_ripple(initiator, handler, 2,
                                   restriction=overlay.domain())
        engine = QueryEngine(service_time=0)
        job = engine.submit(initiator, handler, 2,
                            restriction=overlay.domain())
        outcome = engine.run()[job]
        assert isinstance(outcome, QueryCompleted)
        assert outcome.stats == solo.stats
        assert not engine.sim.busy_time

    def test_contention_charges_queue_delay(self):
        overlay = midas_network(3, peers=32, tuples=300)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[7]
        baseline = event_driven_ripple(initiator, handler, 0,
                                       restriction=overlay.domain())
        engine = QueryEngine(capacity=4, service_time=2)
        jobs = [engine.submit(initiator, handler, 0,
                              restriction=overlay.domain(), strict=False)
                for _ in range(3)]
        outcomes = engine.run()
        results = [outcomes[j] for j in jobs]
        assert all(isinstance(o, QueryCompleted) for o in results)
        # Identical fan-outs race for the same peers: someone waited.
        assert sum(o.stats.queue_delay for o in results) > 0
        assert max(o.stats.latency for o in results) \
            > baseline.stats.latency
        assert engine.sim.busy_time  # saturation accounting populated

    def test_single_query_with_service_time_pays_no_contention(self):
        sim = EventSimulator(service_time=3)
        order = []
        sim.deliver("p", 1, lambda: order.append(sim.now))
        sim.deliver("p", 1, lambda: order.append(sim.now))
        sim.deliver("p", 1, lambda: order.append(sim.now))
        sim.run()
        # FIFO service every 3 units: arrivals at 1 serve at 1, 4, 7.
        assert order == [1, 4, 7]
        assert sim.busy_time["p"] == 9

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            EventSimulator(service_time=-1)
