"""Cross-validation: message-level execution == recursive cost model.

The recursive engine computes latency analytically (max over parallel
branches, sum over sequential iterations); the event-driven engine reads
it off message timestamps.  For identical queries on identical overlays
the two must agree on answers, visited peers, forwards, and latency —
for every ripple parameter.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import LinearScore, MidasOverlay, run_ripple
from repro.net.eventsim import EventSimulator, event_driven_ripple
from repro.overlays.chord import ChordOverlay
from repro.queries.skyline import SkylineHandler
from repro.queries.topk import TopKHandler


class TestEventSimulator:
    def test_fifo_at_same_time(self):
        sim = EventSimulator()
        order = []
        sim.schedule(1, lambda: order.append("a"))
        sim.schedule(1, lambda: order.append("b"))
        sim.schedule(0, lambda: order.append("first"))
        assert sim.run() == 1
        assert order == ["first", "a", "b"]

    def test_nested_scheduling(self):
        sim = EventSimulator()
        times = []
        sim.schedule(2, lambda: (times.append(sim.now),
                                 sim.schedule(3, lambda: times.append(
                                     sim.now))))
        assert sim.run() == 5
        assert times == [2, 5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventSimulator().schedule(-1, lambda: None)


def midas_network(seed, peers=48, tuples=400):
    rng = np.random.default_rng(seed)
    data = rng.random((tuples, 2)) * 0.999
    overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay


class TestAgreement:
    @pytest.mark.parametrize("r", [0, 1, 3, 10 ** 9])
    def test_topk_agrees_on_midas(self, r):
        overlay = midas_network(3)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[7]
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain())
        message_level = event_driven_ripple(initiator, handler, r,
                                            restriction=overlay.domain())
        assert message_level.answer == recursive.answer
        assert message_level.stats.processed == recursive.stats.processed
        assert message_level.stats.latency == recursive.stats.latency
        assert (message_level.stats.forward_messages
                == recursive.stats.forward_messages)

    @pytest.mark.parametrize("r", [0, 2, 10 ** 9])
    def test_skyline_agrees_on_midas(self, r):
        overlay = midas_network(5)
        handler = SkylineHandler(2)
        initiator = overlay.peers()[0]
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain())
        message_level = event_driven_ripple(initiator, handler, r,
                                            restriction=overlay.domain())
        assert message_level.answer == recursive.answer
        assert message_level.stats.latency == recursive.stats.latency
        assert message_level.stats.processed == recursive.stats.processed

    def test_agrees_on_chord(self):
        overlay = ChordOverlay(size=32, seed=2)
        overlay.load(np.random.default_rng(1).random((300, 1)) * 0.999)
        handler = TopKHandler(LinearScore([1]), 4)
        initiator = overlay.peers()[5]
        for r in (0, 10 ** 9):
            recursive = run_ripple(initiator, handler, r,
                                   restriction=overlay.domain())
            message_level = event_driven_ripple(
                initiator, handler, r, restriction=overlay.domain())
            assert message_level.answer == recursive.answer
            assert message_level.stats.latency == recursive.stats.latency

    @given(st.integers(0, 10 ** 6), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_fuzz_agreement(self, seed, r):
        overlay = midas_network(seed, peers=20, tuples=150)
        handler = TopKHandler(LinearScore([1, 0.5]), 3)
        rng = np.random.default_rng(seed)
        initiator = overlay.random_peer(rng)
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain())
        message_level = event_driven_ripple(initiator, handler, r,
                                            restriction=overlay.domain())
        assert message_level.answer == recursive.answer
        assert message_level.stats.latency == recursive.stats.latency
        assert message_level.stats.processed == recursive.stats.processed


class TestRequestRegistry:
    """The supervised-request registry (:class:`_RequestEntry`).

    Regression cover for the refactor that replaced the registry's raw
    ``(incarnation, result-or-sentinel)`` bookkeeping with an explicit
    dataclass: in-progress entries must read as result-less (never as an
    empty result), and duplicate deliveries under message loss must be
    answered from the cached result, keeping answers exact.
    """

    def test_entry_starts_in_progress(self):
        from repro.net.eventsim import _RequestEntry

        entry = _RequestEntry(incarnation=2)
        assert entry.result is None  # in progress, not "empty answer"
        entry.result = []
        assert entry.result == []  # an empty cached result is distinct

    def test_lossy_run_stays_exact(self):
        from repro.net.faults import FaultPlan, resilient_ripple

        overlay = midas_network(9, peers=24, tuples=200)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[3]
        baseline = run_ripple(initiator, handler, 1,
                              restriction=overlay.domain())
        lossy = resilient_ripple(
            initiator, handler, 1, restriction=overlay.domain(),
            faults=FaultPlan(seed=11, drop_prob=0.3))
        assert lossy.answer == baseline.answer
        assert lossy.stats.completeness == 1.0
        # Loss forced retransmissions, i.e. the dedup path actually ran.
        assert lossy.stats.dropped_messages > 0
