"""Cross-validation: message-level execution == recursive cost model.

The recursive engine computes latency analytically (max over parallel
branches, sum over sequential iterations); the event-driven engine reads
it off message timestamps.  For identical queries on identical overlays
the two must agree on answers, visited peers, forwards, and latency —
for every ripple parameter.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import LinearScore, MidasOverlay, run_ripple
from repro.net.eventsim import EventSimulator, event_driven_ripple
from repro.overlays.chord import ChordOverlay
from repro.queries.skyline import SkylineHandler
from repro.queries.topk import TopKHandler


class TestEventSimulator:
    def test_fifo_at_same_time(self):
        sim = EventSimulator()
        order = []
        sim.schedule(1, lambda: order.append("a"))
        sim.schedule(1, lambda: order.append("b"))
        sim.schedule(0, lambda: order.append("first"))
        assert sim.run() == 1
        assert order == ["first", "a", "b"]

    def test_nested_scheduling(self):
        sim = EventSimulator()
        times = []
        sim.schedule(2, lambda: (times.append(sim.now),
                                 sim.schedule(3, lambda: times.append(
                                     sim.now))))
        assert sim.run() == 5
        assert times == [2, 5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventSimulator().schedule(-1, lambda: None)


def midas_network(seed, peers=48, tuples=400):
    rng = np.random.default_rng(seed)
    data = rng.random((tuples, 2)) * 0.999
    overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay


class TestAgreement:
    @pytest.mark.parametrize("r", [0, 1, 3, 10 ** 9])
    def test_topk_agrees_on_midas(self, r):
        overlay = midas_network(3)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[7]
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain())
        message_level = event_driven_ripple(initiator, handler, r,
                                            restriction=overlay.domain())
        assert message_level.answer == recursive.answer
        assert message_level.stats.processed == recursive.stats.processed
        assert message_level.stats.latency == recursive.stats.latency
        assert (message_level.stats.forward_messages
                == recursive.stats.forward_messages)

    @pytest.mark.parametrize("r", [0, 2, 10 ** 9])
    def test_skyline_agrees_on_midas(self, r):
        overlay = midas_network(5)
        handler = SkylineHandler(2)
        initiator = overlay.peers()[0]
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain())
        message_level = event_driven_ripple(initiator, handler, r,
                                            restriction=overlay.domain())
        assert message_level.answer == recursive.answer
        assert message_level.stats.latency == recursive.stats.latency
        assert message_level.stats.processed == recursive.stats.processed

    def test_agrees_on_chord(self):
        overlay = ChordOverlay(size=32, seed=2)
        overlay.load(np.random.default_rng(1).random((300, 1)) * 0.999)
        handler = TopKHandler(LinearScore([1]), 4)
        initiator = overlay.peers()[5]
        for r in (0, 10 ** 9):
            recursive = run_ripple(initiator, handler, r,
                                   restriction=overlay.domain())
            message_level = event_driven_ripple(
                initiator, handler, r, restriction=overlay.domain())
            assert message_level.answer == recursive.answer
            assert message_level.stats.latency == recursive.stats.latency

    @given(st.integers(0, 10 ** 6), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_fuzz_agreement(self, seed, r):
        overlay = midas_network(seed, peers=20, tuples=150)
        handler = TopKHandler(LinearScore([1, 0.5]), 3)
        rng = np.random.default_rng(seed)
        initiator = overlay.random_peer(rng)
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain())
        message_level = event_driven_ripple(initiator, handler, r,
                                            restriction=overlay.domain())
        assert message_level.answer == recursive.answer
        assert message_level.stats.latency == recursive.stats.latency
        assert message_level.stats.processed == recursive.stats.processed
