"""Open-loop workload driver: determinism, arrival process, reporting.

The centrepiece is the concurrent-run determinism property (a hypothesis
test over seeds and engine shapes): two runs of the same seeded workload
— same arrivals, same fault plan — must produce identical per-query
answers, stats, and shed decisions, across MIDAS / Chord / CAN and the
topk/skyline mix.  That property is what makes the committed
``BENCH_load.json`` baseline a meaningful CI gate.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (CanOverlay, ChordOverlay, MidasOverlay,
                   WeightedFairPolicy)
from repro.net.faults import FaultPlan
from repro.net.scheduler import (QueryCompleted, QueryEngine,
                                 QueryRejected)
from repro.net.workload import (WorkloadReport, WorkloadSpec,
                                poisson_arrivals, run_workload)
from repro.obs.metrics import MetricsRegistry


def midas_network(seed, peers=24, tuples=200):
    rng = np.random.default_rng(seed)
    data = rng.random((tuples, 2)) * 0.999
    overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay


def chord_network(seed, peers=24, tuples=200):
    overlay = ChordOverlay(size=peers, seed=seed)
    overlay.load(np.random.default_rng(seed).random((tuples, 1)) * 0.999)
    return overlay


def can_network(seed, peers=24, tuples=200):
    rng = np.random.default_rng(seed)
    data = rng.random((tuples, 2)) * 0.999
    overlay = CanOverlay(2, size=1, seed=seed)
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay


NETWORKS = {"midas": midas_network, "chord": chord_network,
            "can": can_network}


class TestPoissonArrivals:
    def test_deterministic_and_monotone(self):
        spec = WorkloadSpec(queries=200, rate=0.5, seed=9)
        one = poisson_arrivals(spec)
        two = poisson_arrivals(spec)
        assert one == two
        assert len(one) == 200
        assert all(b >= a for a, b in zip(one, one[1:]))
        assert poisson_arrivals(WorkloadSpec(queries=200, rate=0.5,
                                             seed=10)) != one

    def test_rate_shapes_the_schedule(self):
        slow = poisson_arrivals(WorkloadSpec(queries=100, rate=0.1, seed=1))
        fast = poisson_arrivals(WorkloadSpec(queries=100, rate=10.0, seed=1))
        assert fast[-1] < slow[-1]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(queries=0, rate=1.0)
        with pytest.raises(ValueError):
            WorkloadSpec(queries=1, rate=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(queries=1, rate=1.0, topk_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(queries=1, rate=1.0, rs=())


def _signature(outcomes):
    """Everything determinism must pin: per-query disposition, full
    stats, and (for completed queries) the exact answer."""
    signature = {}
    for job_id, outcome in sorted(outcomes.items()):
        answer = outcome.answer if isinstance(outcome, QueryCompleted) \
            else None
        signature[job_id] = (type(outcome).__name__, outcome.submitted_at,
                             outcome.finished_at, outcome.stats, answer)
    return signature


class TestConcurrentDeterminism:
    @pytest.mark.parametrize("kind", sorted(NETWORKS))
    def test_identical_runs_across_overlays(self, kind):
        spec = WorkloadSpec(queries=40, rate=0.6, seed=5, deadline=500,
                            strict=False, rs=(0, 1))

        def run_once():
            overlay = NETWORKS[kind](3)
            plan = FaultPlan.churn(overlay, crash_fraction=0.15, seed=8,
                                   drop_prob=0.1)
            engine = QueryEngine(capacity=3, queue_limit=6, faults=plan,
                                 service_time=1)
            return run_workload(overlay, spec, engine=engine)

        first, second = run_once(), run_once()
        assert _signature(first.outcomes) == _signature(second.outcomes)
        assert first.as_dict() == second.as_dict()

    @given(seed=st.integers(0, 10 ** 6), capacity=st.integers(1, 4),
           queue_limit=st.integers(0, 6), drop=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_fuzz_determinism(self, seed, capacity, queue_limit, drop):
        spec = WorkloadSpec(queries=25, rate=0.8, seed=seed, deadline=400,
                            strict=False, priorities=(0, 1, 2),
                            classes=(("gold", 3), ("bronze", 1)))

        def run_once():
            overlay = midas_network(4)
            plan = FaultPlan(seed=seed, drop_prob=0.2 if drop else 0.0)
            engine = QueryEngine(capacity=capacity,
                                 queue_limit=queue_limit, faults=plan,
                                 policy=WeightedFairPolicy({"gold": 3,
                                                            "bronze": 1}),
                                 service_time=1)
            return run_workload(overlay, spec, engine=engine)

        first, second = run_once(), run_once()
        assert _signature(first.outcomes) == _signature(second.outcomes)


class TestWorkloadReport:
    def _run(self, *, capacity=2, queue_limit=4, rate=0.8, queries=60,
             registry=None, service_time=1):
        overlay = midas_network(3)
        spec = WorkloadSpec(queries=queries, rate=rate, seed=7,
                            strict=False)
        engine = QueryEngine(capacity=capacity, queue_limit=queue_limit,
                             service_time=service_time, registry=registry)
        return run_workload(overlay, spec, engine=engine)

    def test_outcomes_partition_submissions(self):
        report = self._run()
        assert report.submitted == 60
        assert (report.completed + report.shed + report.deadline_exceeded
                + report.budget_exceeded) == report.submitted
        assert report.errors == 0
        assert len(report.outcomes) == report.submitted

    def test_percentiles_are_exact_order_statistics(self):
        report = self._run()
        assert report.completed > 0
        assert report.latencies == tuple(sorted(report.latencies))
        assert report.p50 in [float(v) for v in report.latencies]
        assert report.p99 in [float(v) for v in report.latencies]
        assert report.p50 <= report.p99 <= float(report.latencies[-1])
        assert math.isfinite(report.p99)

    def test_admitted_queries_stay_complete(self):
        report = self._run()
        assert report.admitted_completeness == 1.0
        for outcome in report.outcomes.values():
            if isinstance(outcome, QueryCompleted):
                assert outcome.stats.completeness == 1.0
            elif isinstance(outcome, QueryRejected):
                assert outcome.stats.completeness == 0.0

    def test_overload_sheds_and_calm_does_not(self):
        overloaded = self._run(capacity=1, queue_limit=1, rate=2.0)
        assert overloaded.shed_rate > 0.0
        calm = self._run(capacity=8, queue_limit=60, rate=0.01)
        assert calm.shed_rate == 0.0
        assert calm.completed == calm.submitted

    def test_registry_gets_saturation_and_latency(self):
        registry = MetricsRegistry()
        self._run(registry=registry)
        payload = registry.as_dict()
        assert payload["counters"]["queries.submitted"] == 60
        assert "query.latency" in payload["histograms"]
        assert "peer.saturation" in payload["histograms"]

    def test_report_as_dict_is_json_ready(self):
        import json
        report = self._run()
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["submitted"] == 60
        assert isinstance(report, WorkloadReport)
