"""Heartbeat failure detector: state machine, incarnations, determinism."""

import math

import pytest

from repro.net.detector import ALIVE, DEAD, SUSPECT, FailureDetector
from repro.net.eventsim import EventSimulator
from repro.net.faults import FaultPlan


def run_until(sim, horizon):
    """Drain events up to ``horizon`` by scheduling a stop marker."""
    sim.schedule(horizon, lambda: None)
    deadline = sim.now + horizon

    class _Stop(Exception):
        pass

    def guard():
        raise _Stop

    sim.schedule(horizon, guard)
    try:
        sim.run()
    except _Stop:
        pass


class TestStateMachine:
    def test_crashed_peer_walks_suspect_then_dead(self):
        plan = FaultPlan(crashes={"w": [(0, math.inf)]})
        sim = EventSimulator(faults=plan)
        transitions = []
        detector = FailureDetector(sim, plan, ["w", "x"],
                                   on_dead=lambda pid: transitions.append(pid))
        detector.start()
        run_until(sim, 3 * plan.heartbeat_period + 1)
        assert detector.status("w") == DEAD
        assert detector.is_dead("w")
        assert detector.status("x") == ALIVE
        assert transitions == ["w"]
        assert detector.probes > 0

    def test_suspect_precedes_dead(self):
        plan = FaultPlan(crashes={"w": [(0, math.inf)]},
                         suspect_after=1, dead_after=3)
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, ["w"])
        detector.start()
        run_until(sim, plan.heartbeat_period + 1)
        assert detector.status("w") == SUSPECT
        run_until(sim, 2 * plan.heartbeat_period + 1)
        assert detector.status("w") == DEAD

    def test_recovery_fires_on_alive(self):
        plan = FaultPlan(crashes={"w": [(0, 20)]}, heartbeat_period=4,
                         dead_after=2)
        sim = EventSimulator(faults=plan)
        revived = []
        detector = FailureDetector(sim, plan, ["w"],
                                   on_alive=lambda pid: revived.append(pid))
        detector.start()
        run_until(sim, 40)
        assert detector.status("w") == ALIVE
        assert revived == ["w"]

    def test_incarnation_bump_reports_rebirth(self):
        # Down only between probes: the detector never sees the outage,
        # but the incarnation counter moved, so a prior suspicion clears.
        plan = FaultPlan(crashes={"w": [(5, 7)]}, heartbeat_period=4,
                         suspect_after=1, dead_after=99)
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, ["w"])
        detector.start()
        run_until(sim, 20)
        assert detector.status("w") == ALIVE
        assert detector._incarnations["w"] == 1

    def test_unmonitored_peers_read_alive(self):
        plan = FaultPlan.none()
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, ["a"])
        assert detector.status("zzz") == ALIVE
        assert not detector.is_dead("zzz")


class TestLifecycle:
    def test_protected_peers_are_not_probed(self):
        plan = FaultPlan(crashes={"w": [(0, math.inf)]})
        plan.protect("w")
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, ["w", "x"])
        assert detector.peer_ids == ["x"]

    def test_stop_drains_the_queue(self):
        plan = FaultPlan.none()
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, ["a", "b"])
        detector.start()
        sim.schedule(3 * plan.heartbeat_period, detector.stop)
        sim.run()  # terminates: the stopped sweep does not reschedule
        # the stop fires before the same-timestamp third sweep (FIFO order),
        # so exactly two sweeps of two peers each probed
        assert detector.probes == 2 * 2

    def test_start_is_idempotent(self):
        plan = FaultPlan.none()
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, ["a"])
        detector.start()
        detector.start()  # must not double-schedule sweeps
        sim.schedule(plan.heartbeat_period, detector.stop)
        sim.run()
        assert detector.probes == 1

    def test_knob_validation(self):
        plan = FaultPlan.none()
        sim = EventSimulator(faults=plan)
        with pytest.raises(ValueError, match="period"):
            FailureDetector(sim, plan, [], period=0)
        with pytest.raises(ValueError, match="suspect_after"):
            FailureDetector(sim, plan, [], suspect_after=3, dead_after=2)


class TestDeterminism:
    def test_no_message_ids_consumed_on_reliable_networks(self):
        """With drop_prob == 0 probing must not disturb the fault draws of
        the query traffic sharing the simulator (bit-identity guarantee)."""
        plan = FaultPlan(crashes={"w": [(0, math.inf)]})
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, ["w", "x", "y"])
        detector.start()
        run_until(sim, 5 * plan.heartbeat_period + 1)
        assert sim.new_message_id() == 0

    def test_lossy_probes_can_falsely_suspect(self):
        plan = FaultPlan(seed=2, drop_prob=0.6, heartbeat_period=4,
                         suspect_after=1, dead_after=99)
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, [f"p{i}" for i in range(10)])
        detector.start()
        run_until(sim, 3 * plan.heartbeat_period + 1)
        suspected = [pid for pid in detector.peer_ids
                     if detector.status(pid) == SUSPECT]
        assert suspected  # heavy loss: some live peer was suspected
        run_until(sim, 40 * plan.heartbeat_period)
        # eventual accuracy: every suspicion keeps being corrected (the
        # miss counters reset on each successful probe), and with
        # dead_after out of reach no live peer is ever declared dead
        assert all(not detector.is_dead(pid) for pid in detector.peer_ids)
        assert all(misses < plan.dead_after
                   for misses in detector._misses.values())
        assert any(detector.status(pid) == ALIVE
                   for pid in detector.peer_ids)
