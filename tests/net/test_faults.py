"""Fault-injection subsystem: plan determinism, resilient execution.

Two pillars:

* **Zero-fault equivalence** — under ``FaultPlan.none()`` the supervised
  engine must reproduce the recursive engine's answers, processed sets,
  message counts, and latencies exactly, on MIDAS, Chord, and CAN, for
  all three query handlers (property-tested over seeded random networks).
* **Degradation under churn** — with injected crashes and losses every
  query terminates, never raises, and reports completeness < 1.0 with the
  unreachable-region volume accounted whenever data was lost.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (LinearScore, RangeHandler, Rect, TopKHandler, run_ripple)
from repro.net.eventsim import EventSimulator, event_driven_ripple
from repro.net.faults import FaultPlan, region_volume, resilient_ripple
from repro.queries.rangeq import range_reference

from tests import netlib
from tests.netlib import ENGINE_CASES, handlers_for, seed_data


def midas_network(seed, peers=40, tuples=300):
    return (netlib.midas_network(seed, peers=peers, tuples=tuples),
            seed_data(seed, tuples, 2))


def chord_network(seed, peers=32, tuples=300):
    return (netlib.chord_network(seed, peers=peers, tuples=tuples),
            seed_data(seed, tuples, 1))


def can_network(seed, peers=40, tuples=300):
    return (netlib.can_network(seed, peers=peers, tuples=tuples),
            seed_data(seed, tuples, 2))


class TestFaultPlan:
    def test_zero_plan_injects_nothing(self):
        plan = FaultPlan.none()
        assert not plan.can_fail
        assert plan.alive("x", 0) and plan.alive("x", 10 ** 9)
        assert plan.incarnation("x", 5) == 0
        assert not plan.drops(0) and not plan.drops(123456)
        assert plan.forward_delay(7) == 1

    def test_crash_windows(self):
        plan = FaultPlan(crashes={"a": [(3, 7)], "b": [(0, math.inf)]})
        assert plan.alive("a", 2) and not plan.alive("a", 3)
        assert not plan.alive("a", 6) and plan.alive("a", 7)
        assert not plan.alive("b", 0) and not plan.alive("b", 10 ** 6)
        assert plan.incarnation("a", 2) == 0
        assert plan.incarnation("a", 3) == plan.incarnation("a", 100) == 1

    def test_empty_crash_window_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes={"a": [(5, 5)]})

    def test_drop_prob_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=1.0)

    def test_churn_fraction_validated(self):
        with pytest.raises(ValueError, match="crash_fraction"):
            FaultPlan.churn(["a", "b"], crash_fraction=1.5)
        with pytest.raises(ValueError, match="crash_fraction"):
            FaultPlan.churn(["a", "b"], crash_fraction=-0.1)

    def test_protection_overrides_schedule(self):
        plan = FaultPlan(crashes={"a": [(0, math.inf)]})
        plan.protect("a")
        assert plan.alive("a", 0)
        assert plan.incarnation("a", 99) == 0

    def test_deterministic_draws(self):
        one = FaultPlan(seed=9, drop_prob=0.4, jitter=3)
        two = FaultPlan(seed=9, drop_prob=0.4, jitter=3)
        assert [one.drops(i) for i in range(200)] \
            == [two.drops(i) for i in range(200)]
        assert [one.forward_delay(i) for i in range(200)] \
            == [two.forward_delay(i) for i in range(200)]
        assert any(one.drops(i) for i in range(200))
        other = FaultPlan(seed=10, drop_prob=0.4, jitter=3)
        assert [one.drops(i) for i in range(200)] \
            != [other.drops(i) for i in range(200)]

    def test_jitter_bounds(self):
        plan = FaultPlan(jitter=2)
        delays = {plan.forward_delay(i) for i in range(300)}
        assert delays == {1, 2, 3}

    def test_churn_fraction(self):
        overlay, _ = midas_network(1, peers=60)
        plan = FaultPlan.churn(overlay, crash_fraction=0.5, seed=4)
        assert 10 < len(plan.crashes) < 50  # ~30 expected
        again = FaultPlan.churn(overlay, crash_fraction=0.5, seed=4)
        assert plan.crashes == again.crashes
        assert FaultPlan.churn(overlay, crash_fraction=0.0, seed=4).crashes == {}

    def test_churn_recovery_windows_are_bounded(self):
        overlay, _ = midas_network(1, peers=40)
        plan = FaultPlan.churn(overlay, crash_fraction=0.9, seed=2,
                               horizon=16, recovery=8)
        assert plan.crashes
        for windows in plan.crashes.values():
            for down, up in windows:
                assert 0 <= down < 16
                assert down < up <= down + 9

    def test_from_overlay_freezes_alive_flags(self):
        overlay, _ = midas_network(2, peers=16)
        dead = [overlay.peers()[3], overlay.peers()[8]]
        for peer in dead:
            peer.alive = False
        plan = FaultPlan.from_overlay(overlay)
        for peer in overlay.peers():
            assert plan.alive(peer.peer_id, 0) == peer.alive
            assert plan.alive(peer.peer_id, 10 ** 9) == peer.alive


class TestRegionVolume:
    def test_domain_volume_is_one(self):
        overlay, _ = midas_network(0, peers=8)
        assert region_volume(overlay.domain()) == pytest.approx(1.0)

    def test_link_regions_partition_the_domain(self):
        overlay, _ = midas_network(0, peers=16)
        peer = overlay.peers()[0]
        total = sum(region_volume(ln.region) for ln in peer.links())
        assert total + peer.zone.volume() == pytest.approx(1.0)


class TestMaxEventGuard:
    def test_runaway_scheduling_fails_fast(self):
        sim = EventSimulator(max_events=25)

        def reschedule():
            sim.schedule(1, reschedule)

        sim.schedule(0, reschedule)
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run()

    def test_run_override_takes_precedence(self):
        sim = EventSimulator(max_events=None)
        counter = [0]

        def reschedule():
            counter[0] += 1
            sim.schedule(1, reschedule)

        sim.schedule(0, reschedule)
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run(max_events=10)

    def test_normal_queries_stay_far_under_default(self):
        overlay, _ = midas_network(0)
        handler = TopKHandler(LinearScore([1, 1]), 3)
        result = event_driven_ripple(overlay.peers()[0], handler, 0,
                                     restriction=overlay.domain())
        assert result.stats.processed > 0  # ran to completion under the cap


ZERO_FAULT_CASES = [(kind, build, dims, strict)
                    for kind, (build, dims, strict) in ENGINE_CASES.items()]


class TestZeroFaultEquivalence:
    @pytest.mark.parametrize("name,build,dims,strict", ZERO_FAULT_CASES,
                             ids=[c[0] for c in ZERO_FAULT_CASES])
    @pytest.mark.parametrize("r", [0, 1, 10 ** 9])
    def test_matches_recursive_engine(self, name, build, dims, strict, r):
        overlay = build(seed=11)
        initiator = overlay.random_peer(np.random.default_rng(11))
        for handler in handlers_for(dims):
            recursive = run_ripple(initiator, handler, r,
                                   restriction=overlay.domain(),
                                   strict=strict)
            driven = event_driven_ripple(initiator, handler, r,
                                         restriction=overlay.domain(),
                                         strict=strict)
            resilient = resilient_ripple(initiator, handler, r,
                                         restriction=overlay.domain())
            assert resilient.answer == recursive.answer
            assert resilient.stats.latency == recursive.stats.latency
            assert resilient.stats.processed == recursive.stats.processed
            # message counts match the event-driven engine exactly (the
            # recursive engine's CAN dedup order can differ by a hair)
            assert (resilient.stats.forward_messages
                    == driven.stats.forward_messages)
            assert (resilient.stats.response_messages
                    == driven.stats.response_messages)
            assert resilient.stats.completeness == 1.0
            assert resilient.stats.timeouts == 0
            assert resilient.stats.retries == 0
            assert resilient.stats.reroutes == 0
            assert resilient.stats.dropped_messages == 0
            assert resilient.stats.unreachable_volume == 0.0

    @given(st.integers(0, 10 ** 6), st.integers(0, 4))
    @settings(max_examples=20, deadline=None)
    def test_property_random_midas_networks(self, seed, r):
        overlay, _ = midas_network(seed, peers=20, tuples=150)
        handler = TopKHandler(LinearScore([1, 0.5]), 3)
        initiator = overlay.random_peer(np.random.default_rng(seed))
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain())
        resilient = resilient_ripple(initiator, handler, r,
                                     restriction=overlay.domain())
        assert resilient.answer == recursive.answer
        assert resilient.stats.latency == recursive.stats.latency
        assert resilient.stats.processed == recursive.stats.processed

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_property_random_chord_networks(self, seed):
        overlay, _ = chord_network(seed, peers=20, tuples=150)
        handler = RangeHandler(Rect((0.2,), (0.7,)))
        initiator = overlay.random_peer(np.random.default_rng(seed))
        for r in (0, 10 ** 9):
            recursive = run_ripple(initiator, handler, r,
                                   restriction=overlay.domain())
            resilient = resilient_ripple(initiator, handler, r,
                                         restriction=overlay.domain())
            assert sorted(resilient.answer) == sorted(recursive.answer)
            assert resilient.stats.latency == recursive.stats.latency
            assert resilient.stats.processed == recursive.stats.processed


class TestUnderFaults:
    def crashed_plan(self, overlay, seed, **kw):
        kw.setdefault("crash_fraction", 0.3)
        kw.setdefault("drop_prob", 0.1)
        kw.setdefault("jitter", 1)
        return FaultPlan.churn(overlay, seed=seed, **kw)

    @pytest.mark.parametrize("r", [0, 10 ** 9])
    def test_every_query_terminates_and_accounts(self, r):
        """Acceptance sweep: >=10% churn, non-pruning query (whole domain)."""
        degraded = fired = 0
        for seed in range(8):
            overlay, _ = midas_network(seed)
            handler = RangeHandler(Rect((0.0, 0.0), (1.0, 1.0)))
            plan = self.crashed_plan(overlay, seed + 50)
            initiator = overlay.random_peer(np.random.default_rng(seed))
            result = resilient_ripple(initiator, handler, r,
                                      restriction=overlay.domain(),
                                      faults=plan)
            stats = result.stats
            assert 0.0 <= stats.completeness <= 1.0
            if stats.timeouts or stats.retries:
                fired += 1
            if stats.completeness < 1.0:
                degraded += 1
                assert stats.unreachable_volume > 0.0
                assert stats.timeouts > 0
        assert fired > 0, "faults never exercised the recovery machinery"
        assert degraded > 0, "no query ever degraded under 30% churn"

    def test_degraded_range_answer_is_a_subset(self):
        """Partial answers contain only true tuples, never fabrications."""
        overlay, data = midas_network(7)
        box = Rect((0.0, 0.0), (1.0, 1.0))
        handler = RangeHandler(box)
        reference = {tuple(p) for p in range_reference(data, box)}
        plan = self.crashed_plan(overlay, 57)
        result = resilient_ripple(overlay.random_peer(), handler, 0,
                                  restriction=overlay.domain(), faults=plan)
        answer = {tuple(p) for p in result.answer}
        assert answer <= reference
        if result.stats.completeness >= 1.0:
            assert answer == reference

    def test_drop_only_faults_recover_fully(self):
        """Pure message loss (no crashes) is repaired by retries: the
        answer is complete and retransmissions are visible in the stats."""
        overlay, data = midas_network(3)
        box = Rect((0.0, 0.0), (1.0, 1.0))
        handler = RangeHandler(box)
        plan = FaultPlan(seed=21, drop_prob=0.15)
        result = resilient_ripple(overlay.random_peer(), handler, 0,
                                  restriction=overlay.domain(), faults=plan)
        assert result.stats.dropped_messages > 0
        assert result.stats.retries > 0
        assert result.stats.completeness == 1.0
        assert {tuple(p) for p in result.answer} \
            == {tuple(p) for p in range_reference(data, box)}

    def test_dead_neighborhood_is_rerouted_or_accounted(self):
        """Statically killing peers (alive flags) degrades completeness by
        roughly the dead volume, never silently."""
        overlay, _ = midas_network(9, peers=32)
        initiator = overlay.peers()[0]
        dead = [p for p in overlay.peers()[1:] if p.peer_id % 3 == 0]
        for peer in dead:
            peer.alive = False
        plan = FaultPlan.from_overlay(overlay)
        handler = RangeHandler(Rect((0.0, 0.0), (1.0, 1.0)))
        result = resilient_ripple(initiator, handler, 0,
                                  restriction=overlay.domain(), faults=plan)
        stats = result.stats
        assert stats.completeness < 1.0
        assert stats.timeouts > 0 and stats.retries > 0
        dead_volume = sum(p.zone.volume() for p in dead)
        # every abandoned region contains at least its dead owner's zone,
        # so the accounted volume is at least ... bounded sanely.
        assert stats.unreachable_volume <= 1.0
        assert stats.completeness >= 1.0 - 3 * dead_volume - 0.25

    def test_recovered_peer_serves_retries(self):
        """A peer that is down briefly and recovers ends up processed."""
        overlay, data = midas_network(5, peers=16)
        initiator = overlay.peers()[0]
        victim = initiator.links()[0].peer  # first forward lands at t=1
        plan = FaultPlan(seed=1, crashes={victim.peer_id: [(0, 4)]})
        handler = RangeHandler(Rect((0.0, 0.0), (1.0, 1.0)))
        result = resilient_ripple(initiator, handler, 0,
                                  restriction=overlay.domain(), faults=plan)
        assert result.stats.completeness == 1.0
        assert result.stats.timeouts > 0
        assert {tuple(p) for p in result.answer} \
            == {tuple(p) for p in
                range_reference(data, Rect((0.0, 0.0), (1.0, 1.0)))}

    def test_determinism_same_plan_same_result(self):
        overlay, _ = midas_network(13)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        initiator = overlay.peers()[2]

        def run():
            plan = FaultPlan.churn(overlay, crash_fraction=0.3, seed=77,
                                   drop_prob=0.1, jitter=2)
            return resilient_ripple(initiator, handler, 10 ** 9,
                                    restriction=overlay.domain(), faults=plan)

        first, second = run(), run()
        assert first.answer == second.answer
        assert first.stats == second.stats

    @pytest.mark.parametrize("name",
                             [k for k in ENGINE_CASES if k != "midas"])
    def test_other_overlays_survive_churn(self, name):
        build, dims, _ = ENGINE_CASES[name]
        for seed in range(3):
            overlay = build(seed)
            plan = self.crashed_plan(overlay, seed + 9)
            handler = TopKHandler(LinearScore([1.0] * dims), 4)
            for r in (0, 10 ** 9):
                result = resilient_ripple(
                    overlay.random_peer(np.random.default_rng(seed)),
                    handler, r, restriction=overlay.domain(), faults=plan)
                assert 0.0 <= result.stats.completeness <= 1.0

    def test_stats_serialize_with_fault_counters(self):
        overlay, _ = midas_network(4)
        plan = self.crashed_plan(overlay, 44)
        handler = RangeHandler(Rect((0.0, 0.0), (1.0, 1.0)))
        result = resilient_ripple(overlay.random_peer(), handler, 0,
                                  restriction=overlay.domain(), faults=plan)
        payload = result.stats.as_dict()
        for key in ("timeouts", "retries", "reroutes", "dropped_messages",
                    "ack_messages", "unreachable_volume", "completeness",
                    "latency", "processed", "total_messages"):
            assert key in payload
        import json
        json.dumps(payload)  # must be JSON-serializable as-is
