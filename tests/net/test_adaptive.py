"""Adaptive-fanout controller: pressure, calibration, determinism.

The controller may change *when* and *how wide* queries fan out — never
what they answer: the framework's r-invariance means every choice of
``r`` returns the identical result, so the tests pin (a) the control
law itself on fabricated loads, (b) the replay-calibrated cost model's
lemma-shaped frontier, and (c) end-to-end determinism and answer
invariance under ``WorkloadSpec.adaptive_r``.
"""

import pytest

from repro import calibrate_fanout
from repro.net.adaptive import (AdaptiveFanout, CostEstimate, CostModel,
                                EngineLoad)
from repro.net.context import QueryStats
from repro.net.scheduler import QueryCompleted, QueryEngine
from repro.net.workload import WorkloadSpec, run_workload

from tests.netlib import handlers_for, midas_network


class TestEngineLoad:
    def test_idle_is_zero(self):
        load = EngineLoad(running=0, capacity=4, waiting=0, queue_limit=8)
        assert load.pressure == 0.0

    def test_saturated_is_one(self):
        load = EngineLoad(running=4, capacity=4, waiting=8, queue_limit=8)
        assert load.pressure == 1.0

    def test_full_capacity_alone_is_half(self):
        # Running full is normal operation; queue fill is the other half
        # of the signal, so capacity occupancy alone cannot saturate.
        load = EngineLoad(running=4, capacity=4, waiting=0, queue_limit=8)
        assert load.pressure == 0.5

    def test_monotone_in_queue_fill(self):
        pressures = [
            EngineLoad(running=2, capacity=4, waiting=w,
                       queue_limit=8).pressure
            for w in range(9)]
        assert pressures == sorted(pressures)


def load_at(pressure):
    """An EngineLoad whose blended pressure equals ``pressure``."""
    return EngineLoad(running=int(round(4 * pressure)), capacity=4,
                      waiting=int(round(8 * pressure)), queue_limit=8)


class TestLadder:
    def test_idle_picks_latency_optimal(self):
        fanout = AdaptiveFanout(rs=(0, 1, 2))
        assert fanout.choose(None, load_at(0.0)) == 0

    def test_saturated_picks_message_optimal(self):
        fanout = AdaptiveFanout(rs=(0, 1, 2))
        assert fanout.choose(None, load_at(1.0)) == 2

    def test_middle_pressure_picks_the_middle(self):
        fanout = AdaptiveFanout(rs=(0, 1, 2))
        assert fanout.choose(None, load_at(0.5)) == 1

    def test_decisions_are_tallied(self):
        fanout = AdaptiveFanout(rs=(0, 2))
        for _ in range(3):
            fanout.choose(None, load_at(0.0))
        assert fanout.decisions == {0: 3, 2: 0}

    def test_candidates_are_required(self):
        with pytest.raises(ValueError):
            AdaptiveFanout(rs=())


class TestCostModelChoice:
    MODEL = CostModel({0: CostEstimate(latency=2.0, messages=10.0),
                       2: CostEstimate(latency=5.0, messages=2.0)})

    def test_idle_minimizes_latency(self):
        fanout = AdaptiveFanout(rs=(0, 2), cost_model=self.MODEL)
        assert fanout.choose(None, load_at(0.0)) == 0

    def test_pressure_flips_to_message_optimal(self):
        # At pressure 1, weight 2: r=0 costs 2 + 20, r=2 costs 5 + 4.
        fanout = AdaptiveFanout(rs=(0, 2), cost_model=self.MODEL)
        assert fanout.choose(None, load_at(1.0)) == 2

    def test_model_must_cover_all_candidates(self):
        with pytest.raises(ValueError):
            AdaptiveFanout(rs=(0, 1, 2), cost_model=self.MODEL)


class TestObserve:
    def test_queue_delay_fraction_feeds_the_ewma(self):
        fanout = AdaptiveFanout(rs=(0, 2), smoothing=0.3)
        outcome = QueryCompleted(job=None,
                                 stats=QueryStats(queue_delay=5),
                                 submitted_at=0, finished_at=10)
        fanout.observe(outcome)
        assert fanout.pressure == pytest.approx(0.3 * 0.5)
        fanout.observe(outcome)
        assert fanout.pressure == pytest.approx(0.15 + 0.3 * (0.5 - 0.15))

    def test_sustained_congestion_raises_the_choice(self):
        fanout = AdaptiveFanout(rs=(0, 1, 2), smoothing=1.0)
        congested = QueryCompleted(job=None,
                                   stats=QueryStats(queue_delay=9),
                                   submitted_at=0, finished_at=10)
        fanout.observe(congested)
        # The EWMA keeps steering even when the instantaneous load dips.
        assert fanout.choose(None, load_at(0.0)) == 2


class TestCalibration:
    def test_replayed_frontier_has_the_lemma_shape(self):
        overlay = midas_network(7)
        handler = handlers_for(2)[0]
        model = calibrate_fanout(overlay.peers()[0], handler, [0, 1, 2],
                                 restriction=overlay.domain())
        assert sorted(model.estimates) == [0, 1, 2]
        messages = [model.estimates[r].messages for r in (0, 1, 2)]
        # Larger r serializes propagation and prunes more: the message
        # count is non-increasing along the candidate ladder (Lemma 2).
        assert messages == sorted(messages, reverse=True)
        assert all(m > 0 for m in messages)

    def test_calibration_is_deterministic(self):
        overlay = midas_network(7)
        handler = handlers_for(2)[0]
        args = (overlay.peers()[0], handler, [0, 2])
        first = calibrate_fanout(*args, restriction=overlay.domain())
        second = calibrate_fanout(*args, restriction=overlay.domain())
        assert first == second


def adaptive_spec(adaptive):
    return WorkloadSpec(queries=30, rate=2.0, seed=3, rs=(0, 1, 2),
                        adaptive_r=adaptive)


def run_once(adaptive):
    overlay = midas_network(5, peers=16, tuples=120)
    engine = QueryEngine(capacity=2, queue_limit=30, service_time=1)
    report = run_workload(overlay, adaptive_spec(adaptive), engine=engine)
    answers = {job_id: outcome.answer
               for job_id, outcome in report.outcomes.items()
               if isinstance(outcome, QueryCompleted)}
    return report, answers


class TestWorkloadIntegration:
    def test_adaptive_runs_are_deterministic(self):
        first, first_answers = run_once(adaptive=True)
        second, second_answers = run_once(adaptive=True)
        assert first.fanout_decisions == second.fanout_decisions
        assert first_answers == second_answers

    def test_adaptation_never_changes_answers(self):
        # r-invariance end to end: the adaptive run answers exactly what
        # the fixed-r run answers, query for query.
        fixed, fixed_answers = run_once(adaptive=False)
        adaptive, adaptive_answers = run_once(adaptive=True)
        assert fixed.fanout_decisions is None
        assert adaptive.fanout_decisions is not None
        assert sum(adaptive.fanout_decisions.values()) \
            == adaptive.completed
        common = set(fixed_answers) & set(adaptive_answers)
        assert common
        for job_id in common:
            assert fixed_answers[job_id] == adaptive_answers[job_id]
