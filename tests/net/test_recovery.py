"""Replica-aware recovery: exact answers under survivable churn.

The tentpole property of the self-healing subsystem: whenever every
crashed peer has at least one live replica holder, ``resilient_ripple``
run with a :class:`~repro.overlays.replication.ReplicaDirectory` must
return completeness 1.0 *and* the byte-identical answer of the fault-free
engines — for top-k, skyline, and diversification, on every substrate in
``tests.netlib.OVERLAYS``.  Alongside it:

* zero-fault + directory attached stays bit-identical to the fault-free
  engines (the detector never starts, no message-id draws shift);
* a total partition (every replica and alternate dead) still terminates,
  with completeness < 1.0 and no livelock;
* a blown event budget raises ``SimulationBudgetExceeded`` carrying the
  partial stats (not a bare ``RuntimeError`` with no observability);
* the seeded fault draws of ``FaultPlan.churn`` / ``from_overlay`` are
  pinned by golden fingerprints so a refactor cannot silently reshuffle
  every recorded benchmark scenario.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (LinearScore, ReplicaDirectory, SimulationBudgetExceeded,
                   TopKHandler, run_ripple)
from repro.net.eventsim import event_driven_ripple
from repro.net.faults import FaultPlan, resilient_ripple

from tests.netlib import (NETWORKS, OVERLAYS, STRICT, chord_network,
                          midas_network)
from tests.netlib import handlers_for as _handlers_for


def handlers_for(dims):
    return _handlers_for(dims, third="diversify")


def survivable_churn(overlay, initiator, *, seed, crash_fraction=0.3,
                     copies=2, drop_prob=0.0):
    """A from-time-zero churn plan where every crash is survivable.

    Builds the directory, draws the churn, then deletes the crashes of
    any owner whose replica holders would *all* be down too — the
    remaining failures are exactly the ones the tentpole guarantees
    recovery from.
    """
    directory = ReplicaDirectory(overlay, copies=copies)
    plan = FaultPlan.churn(overlay, crash_fraction=crash_fraction,
                           seed=seed, horizon=1, drop_prob=drop_prob)
    plan.protect(initiator.peer_id)
    live = lambda pid: pid not in plan.crashes or pid in plan.protected
    plan.crashes = {
        pid: windows for pid, windows in plan.crashes.items()
        if pid not in plan.protected
        and any(live(h.peer_id) for h in directory.holders(pid))}
    return plan, directory


class TestExactRecovery:
    @pytest.mark.parametrize("kind", OVERLAYS)
    @pytest.mark.parametrize("r", (0, 2))
    def test_completeness_one_and_exact_answers(self, kind, r):
        crashed_somewhere = recovered_somewhere = False
        for seed in range(4):
            overlay = NETWORKS[kind](seed)
            initiator = overlay.peers()[0]
            restriction = overlay.domain()
            plan, directory = survivable_churn(overlay, initiator, seed=seed)
            crashed_somewhere |= bool(plan.crashes)
            for handler in handlers_for(restriction.rect.dims):
                expected = run_ripple(initiator, handler, r,
                                      restriction=restriction,
                                      strict=STRICT[kind])
                result = resilient_ripple(initiator, handler, r,
                                          restriction=restriction,
                                          faults=plan, replicas=directory)
                assert result.stats.completeness == 1.0
                assert result.answer == expected.answer
                recovered_somewhere |= result.stats.regions_recovered > 0
        assert crashed_somewhere
        assert recovered_somewhere

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 40),
           kind=st.sampled_from(OVERLAYS),
           r=st.sampled_from((0, 2)))
    def test_property_survivable_churn_is_lossless(self, seed, kind, r):
        overlay = NETWORKS[kind](seed)
        initiator = overlay.peers()[0]
        restriction = overlay.domain()
        plan, directory = survivable_churn(overlay, initiator, seed=seed,
                                           drop_prob=0.03)
        handler = handlers_for(restriction.rect.dims)[seed % 3]
        expected = run_ripple(initiator, handler, r, restriction=restriction,
                              strict=STRICT[kind])
        result = resilient_ripple(initiator, handler, r,
                                  restriction=restriction,
                                  faults=plan, replicas=directory)
        assert result.stats.completeness == 1.0
        assert result.answer == expected.answer

    def test_replica_reads_and_recoveries_are_counted(self):
        overlay = midas_network(7, peers=48)
        initiator = overlay.peers()[0]
        plan, directory = survivable_churn(overlay, initiator, seed=3,
                                           crash_fraction=0.4)
        assert plan.crashes
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        result = resilient_ripple(initiator, handler, 0,
                                  restriction=overlay.domain(),
                                  faults=plan, replicas=directory)
        assert result.stats.regions_recovered > 0
        assert result.stats.replica_reads > 0
        assert result.stats.completeness == 1.0
        stats = result.stats.as_dict()
        assert stats["regions_recovered"] == result.stats.regions_recovered
        assert stats["replica_reads"] == result.stats.replica_reads


class TestZeroFaultIdentity:
    @pytest.mark.parametrize("kind", OVERLAYS)
    @pytest.mark.parametrize("copies", (0, 2))
    def test_directory_alone_changes_nothing(self, kind, copies):
        """With a zero-fault plan the detector never starts; attaching a
        directory of any degree must keep the supervised engine
        bit-identical to the fault-free engines."""
        overlay = NETWORKS[kind](11)
        initiator = overlay.peers()[0]
        restriction = overlay.domain()
        directory = ReplicaDirectory(overlay, copies=copies)
        for r in (0, 2):
            for handler in handlers_for(restriction.rect.dims):
                plain = event_driven_ripple(initiator, handler, r,
                                            restriction=restriction,
                                            strict=False)
                resilient = resilient_ripple(initiator, handler, r,
                                             restriction=restriction,
                                             faults=FaultPlan.none(),
                                             replicas=directory)
                assert resilient.answer == plain.answer
                assert resilient.stats.latency == plain.stats.latency
                assert resilient.stats.processed == plain.stats.processed
                assert resilient.stats.forward_messages \
                    == plain.stats.forward_messages
                assert resilient.stats.regions_recovered == 0
                assert resilient.stats.replica_reads == 0


class TestTotalPartition:
    @pytest.mark.parametrize("kind", OVERLAYS)
    def test_terminates_with_partial_answer(self, kind):
        """Every peer but the initiator dead and no replicas anywhere —
        must degrade to a partial answer, never livelock or raise."""
        overlay = NETWORKS[kind](5)
        initiator = overlay.peers()[0]
        directory = ReplicaDirectory(overlay, copies=0)
        crashes = {p.peer_id: [(0.0, math.inf)] for p in overlay.peers()
                   if p.peer_id != initiator.peer_id}
        plan = FaultPlan(seed=5, crashes=crashes)
        handler = TopKHandler(
            LinearScore([1.0] * overlay.domain().rect.dims), 4)
        result = resilient_ripple(initiator, handler, 0,
                                  restriction=overlay.domain(),
                                  faults=plan, replicas=directory,
                                  max_events=200_000)
        assert result.stats.completeness < 1.0
        assert result.stats.regions_recovered == 0
        # only the initiator's own data made it into the answer
        assert result.stats.processed == 1

    def test_initiator_held_replicas_rescue_their_owners(self):
        """Kill exactly the owners mirrored on the initiator (and their
        other holders): promotion must land on the initiator's replicas
        and the query must stay lossless."""
        overlay = midas_network(5)
        initiator = overlay.peers()[0]
        directory = ReplicaDirectory(overlay, copies=2)
        owners = set(initiator.replicas)
        assert owners  # the initiator hosts someone's mirror
        doomed = set(owners)
        for owner_id in owners:
            doomed |= {h.peer_id for h in directory.holders(owner_id)
                       if h.peer_id != initiator.peer_id}
        doomed.discard(initiator.peer_id)
        plan = FaultPlan(
            seed=5, crashes={pid: [(0.0, math.inf)] for pid in doomed})
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        expected = run_ripple(initiator, handler, 0,
                              restriction=overlay.domain())
        result = resilient_ripple(initiator, handler, 0,
                                  restriction=overlay.domain(),
                                  faults=plan, replicas=directory,
                                  max_events=500_000)
        assert result.stats.completeness == 1.0
        assert result.answer == expected.answer

    def test_dead_holders_fall_through_to_abandonment(self):
        """A crash set that kills an owner *and* all its holders gives up
        on that owner's region instead of cycling through dead stand-ins."""
        from repro import RangeHandler, Rect

        overlay = chord_network(9)
        initiator = overlay.peers()[0]
        directory = ReplicaDirectory(overlay, copies=2)
        victim = overlay.peers()[4]
        doomed = {victim.peer_id} | {
            h.peer_id for h in directory.holders(victim.peer_id)}
        assert initiator.peer_id not in doomed
        plan = FaultPlan(
            seed=9, crashes={pid: [(0.0, math.inf)] for pid in doomed})
        # a whole-domain range query cannot prune, so the victim's arc
        # must be either served or abandoned — never silently skipped
        handler = RangeHandler(Rect((0.0,), (1.0,)))
        result = resilient_ripple(initiator, handler, 0,
                                  restriction=overlay.domain(),
                                  faults=plan, replicas=directory,
                                  max_events=200_000)
        assert result.stats.completeness < 1.0
        assert result.stats.unreachable_volume > 0.0


class TestBudgetExceeded:
    def test_carries_partial_stats(self):
        overlay = midas_network(3)
        initiator = overlay.peers()[0]
        handler = TopKHandler(LinearScore([1.0, 1.0]), 4)
        with pytest.raises(SimulationBudgetExceeded,
                           match="event budget") as info:
            resilient_ripple(initiator, handler, 0,
                             restriction=overlay.domain(),
                             faults=FaultPlan.none(), max_events=10)
        exc = info.value
        assert isinstance(exc, RuntimeError)  # backward compatible
        assert exc.cap == 10
        assert exc.executed == 11
        assert exc.stats is not None
        assert exc.stats.processed >= 1  # partial progress is visible
        assert exc.stats.forward_messages > 0

    def test_plain_run_carries_stats_from_attached_context(self):
        from repro.net.context import QueryContext
        from repro.net.eventsim import EventSimulator

        sim = EventSimulator(max_events=3)
        sim.context = QueryContext(strict=False)
        sim.context.on_forward()

        def spin():
            sim.schedule(1, spin)

        sim.schedule(0, spin)
        with pytest.raises(SimulationBudgetExceeded) as info:
            sim.run()
        assert info.value.stats.forward_messages == 1
        assert info.value.executed == 4

    def test_no_context_means_no_stats(self):
        from repro.net.eventsim import EventSimulator

        sim = EventSimulator(max_events=2)

        def spin():
            sim.schedule(1, spin)

        sim.schedule(0, spin)
        with pytest.raises(SimulationBudgetExceeded) as info:
            sim.run()
        assert info.value.stats is None


class TestSeedStability:
    """Golden fingerprints: the seeded fault draws must never reshuffle.

    Recorded benchmark scenarios (BENCH_churn.json) and any published
    completeness numbers are keyed by (seed, fraction) — a refactor of the
    hashing or of the draw order would silently invalidate all of them.
    These fingerprints pin the exact outcomes for fixed inputs.
    """

    def test_churn_draws_are_pinned(self):
        ids = list(range(64))
        plan = FaultPlan.churn(ids, crash_fraction=0.25, seed=42, horizon=16)
        assert sorted(plan.crashes) == [
            6, 9, 12, 13, 14, 17, 20, 24, 31, 35, 40, 44, 50, 51, 54, 56]
        assert [plan.crashes[pid][0][0] for pid in sorted(plan.crashes)] == [
            8.0, 8.0, 9.0, 3.0, 5.0, 7.0, 11.0, 10.0, 0.0, 7.0, 5.0, 13.0,
            6.0, 6.0, 2.0, 12.0]
        assert all(up == math.inf
                   for windows in plan.crashes.values()
                   for _, up in windows)

    def test_churn_with_recovery_is_pinned(self):
        plan = FaultPlan.churn(list(range(32)), crash_fraction=0.5, seed=7,
                               horizon=8, recovery=4)
        assert sorted(plan.crashes) == [
            2, 3, 4, 5, 9, 10, 11, 13, 15, 16, 17, 18, 24, 30]
        windows = [plan.crashes[pid][0] for pid in sorted(plan.crashes)]
        assert windows == [
            (2.0, 5.0), (0.0, 4.0), (0.0, 1.0), (3.0, 4.0), (7.0, 10.0),
            (3.0, 5.0), (4.0, 6.0), (4.0, 6.0), (3.0, 5.0), (7.0, 8.0),
            (2.0, 6.0), (4.0, 5.0), (5.0, 9.0), (3.0, 6.0)]

    def test_from_overlay_freezes_alive_flags(self):
        overlay = chord_network(2, peers=16)
        dead = {p.peer_id for i, p in enumerate(overlay.peers())
                if i % 3 == 0}
        for peer in overlay.peers():
            peer.alive = peer.peer_id not in dead
        plan = FaultPlan.from_overlay(overlay, seed=2)
        assert set(plan.crashes) == dead
        assert all(windows == ((0.0, math.inf),)
                   for windows in plan.crashes.values())

    def test_message_draw_sequences_are_pinned(self):
        plan = FaultPlan(seed=42, drop_prob=0.2, jitter=3)
        drops = [i for i in range(64) if plan.drops(i)]
        assert drops == [10, 17, 20, 30, 32, 35, 42, 43, 46, 48, 53, 56, 57]
        delays = [plan.forward_delay(i) for i in range(16)]
        assert delays == [3, 1, 4, 2, 4, 3, 4, 3, 2, 3, 3, 4, 4, 2, 3, 4]
