"""Unit tests for the query cost ledger."""

import pytest

from repro.net.context import (DuplicateVisitError, QueryContext,
                               QueryStats)


class TestQueryStats:
    def test_total_messages(self):
        stats = QueryStats(latency=3, processed=5, forward_messages=4,
                           response_messages=2, answer_messages=1,
                           tuples_shipped=9)
        assert stats.total_messages == 7

    def test_combine_sequential_adds_everything(self):
        first = QueryStats(latency=3, processed=5, forward_messages=4,
                           response_messages=2, answer_messages=1,
                           tuples_shipped=9)
        second = QueryStats(latency=2, processed=1, forward_messages=1,
                            response_messages=0, answer_messages=1,
                            tuples_shipped=3)
        combined = first.combine_sequential(second)
        assert combined.latency == 5
        assert combined.processed == 6
        assert combined.forward_messages == 5
        assert combined.tuples_shipped == 12

    def test_default_is_zero(self):
        stats = QueryStats()
        assert stats.latency == 0 and stats.total_messages == 0
        assert stats.completeness == 1.0
        assert stats.unreachable_volume == 0.0

    def test_as_dict_round_trips_every_field(self):
        import json
        stats = QueryStats(latency=3, processed=5, forward_messages=4,
                           response_messages=2, answer_messages=1,
                           tuples_shipped=9, timeouts=2, retries=1,
                           reroutes=1, dropped_messages=3, ack_messages=4,
                           unreachable_volume=0.125, completeness=0.875)
        payload = stats.as_dict()
        for field, value in (("latency", 3), ("timeouts", 2), ("retries", 1),
                             ("reroutes", 1), ("dropped_messages", 3),
                             ("ack_messages", 4),
                             ("unreachable_volume", 0.125),
                             ("completeness", 0.875),
                             ("total_messages", 7)):
            assert payload[field] == value
        json.dumps(payload)  # plain scalars only

    def test_combine_sequential_sums_fault_counters(self):
        first = QueryStats(latency=3, timeouts=2, retries=1, reroutes=1,
                           dropped_messages=4, ack_messages=5,
                           unreachable_volume=0.1, completeness=0.9)
        second = QueryStats(latency=1, timeouts=1, retries=3,
                            dropped_messages=2, ack_messages=7,
                            unreachable_volume=0.05, completeness=0.95)
        combined = first.combine_sequential(second)
        assert combined.timeouts == 3
        assert combined.retries == 4
        assert combined.reroutes == 1
        assert combined.dropped_messages == 6
        assert combined.ack_messages == 12
        assert combined.unreachable_volume == pytest.approx(0.15)
        # completeness is a min, not a sum: the worst phase dominates
        assert combined.completeness == 0.9


class TestQueryContext:
    def test_answer_collection(self):
        ctx = QueryContext()
        ctx.on_answer(["t1", "t2"], 2)
        ctx.on_answer([], 0)
        assert ctx.collected_answers == [["t1", "t2"], []]
        assert ctx.answer_messages == 1  # empty answers cost nothing
        assert ctx.tuples_shipped == 2

    def test_stats_snapshot(self):
        ctx = QueryContext()
        ctx.begin_processing("a")
        ctx.on_forward()
        ctx.on_response(3)
        stats = ctx.stats(latency=7)
        assert stats.latency == 7
        assert stats.processed == 1
        assert stats.forward_messages == 1
        assert stats.response_messages == 3

    def test_duplicate_error_names_peer(self):
        ctx = QueryContext(strict=True)
        ctx.begin_processing("peer-x")
        with pytest.raises(DuplicateVisitError, match="peer-x"):
            ctx.begin_processing("peer-x")

    def test_fault_counters(self):
        ctx = QueryContext()
        ctx.on_timeout()
        ctx.on_retry()
        ctx.on_retry()
        ctx.on_reroute()
        ctx.on_drop()
        ctx.on_ack()
        ctx.on_ack()
        ctx.on_ack()
        stats = ctx.stats(latency=1)
        assert stats.timeouts == 1
        assert stats.retries == 2
        assert stats.reroutes == 1
        assert stats.dropped_messages == 1
        assert stats.ack_messages == 3

    def test_completeness_accounting(self):
        ctx = QueryContext()
        ctx.restriction_volume = 0.5
        assert ctx.completeness() == 1.0
        ctx.on_unreachable(0.125)
        assert ctx.completeness() == pytest.approx(0.75)
        ctx.on_unreachable(10.0)  # conservative covers can over-account
        assert ctx.completeness() == 0.0  # clamped, never negative

    def test_completeness_with_zero_volume_restriction(self):
        ctx = QueryContext()  # restriction_volume stays 0.0
        assert ctx.completeness() == 1.0
        ctx.on_unreachable(0.1)
        assert ctx.completeness() == 0.0

    def test_note_time_keeps_high_watermark(self):
        ctx = QueryContext()
        ctx.note_time(4)
        ctx.note_time(2)
        assert ctx.last_activity == 4
        ctx.note_time(9)
        assert ctx.last_activity == 9
