"""Unit tests for the query cost ledger."""

import pytest

from repro.net.context import (DuplicateVisitError, QueryContext,
                               QueryStats)


class TestQueryStats:
    def test_total_messages(self):
        stats = QueryStats(latency=3, processed=5, forward_messages=4,
                           response_messages=2, answer_messages=1,
                           tuples_shipped=9)
        assert stats.total_messages == 7

    def test_combine_sequential_adds_everything(self):
        first = QueryStats(latency=3, processed=5, forward_messages=4,
                           response_messages=2, answer_messages=1,
                           tuples_shipped=9)
        second = QueryStats(latency=2, processed=1, forward_messages=1,
                            response_messages=0, answer_messages=1,
                            tuples_shipped=3)
        combined = first.combine_sequential(second)
        assert combined.latency == 5
        assert combined.processed == 6
        assert combined.forward_messages == 5
        assert combined.tuples_shipped == 12

    def test_default_is_zero(self):
        stats = QueryStats()
        assert stats.latency == 0 and stats.total_messages == 0


class TestQueryContext:
    def test_answer_collection(self):
        ctx = QueryContext()
        ctx.on_answer(["t1", "t2"], 2)
        ctx.on_answer([], 0)
        assert ctx.collected_answers == [["t1", "t2"], []]
        assert ctx.answer_messages == 1  # empty answers cost nothing
        assert ctx.tuples_shipped == 2

    def test_stats_snapshot(self):
        ctx = QueryContext()
        ctx.begin_processing("a")
        ctx.on_forward()
        ctx.on_response(3)
        stats = ctx.stats(latency=7)
        assert stats.latency == 7
        assert stats.processed == 1
        assert stats.forward_messages == 1
        assert stats.response_messages == 3

    def test_duplicate_error_names_peer(self):
        ctx = QueryContext(strict=True)
        ctx.begin_processing("peer-x")
        with pytest.raises(DuplicateVisitError, match="peer-x"):
            ctx.begin_processing("peer-x")
