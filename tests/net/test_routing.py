"""Unit tests for generic greedy routing and seeded drivers."""

import numpy as np
import pytest

from repro import LinearScore, MidasOverlay
from repro.net.routing import RoutingError, greedy_route, route_around
from repro.queries.drivers import run_seeded
from repro.queries.topk import TopKHandler, topk_reference


@pytest.fixture(scope="module")
def network():
    rng = np.random.default_rng(41)
    data = rng.random((600, 2)) * 0.999
    overlay = MidasOverlay(2, size=1, seed=9, join_policy="data")
    overlay.load(data)
    overlay.grow_to(64)
    return overlay, data


class TestGreedyRoute:
    def test_reaches_owner(self, network):
        overlay, _ = network
        rng = np.random.default_rng(0)
        for _ in range(25):
            point = tuple(rng.random(2))
            owner, path = greedy_route(overlay.random_peer(rng), point)
            assert owner.zone.contains(point)

    def test_self_route_is_empty(self, network):
        overlay, _ = network
        peer = overlay.peers()[0]
        owner, path = greedy_route(peer, peer.zone.center)
        assert owner is peer
        assert path == [peer]

    def test_hops_bounded_by_depth(self, network):
        overlay, _ = network
        rng = np.random.default_rng(1)
        for _ in range(25):
            _, path = greedy_route(overlay.random_peer(rng),
                                   tuple(rng.random(2)))
            assert len(path) - 1 <= overlay.tree.max_depth()

    def test_loop_detection(self):
        """A broken overlay whose regions point back raises RoutingError."""
        class FakePeer:
            def __init__(self, pid):
                self.peer_id = pid
                self.link = None

            def links(self):
                return [self.link]

        from repro.core.framework import Link
        from repro.core.regions import RectRegion
        from repro.common.geometry import Rect

        a, b = FakePeer("a"), FakePeer("b")
        everywhere = RectRegion(Rect.unit(2))
        a.link = Link(peer=b, region=everywhere)
        b.link = Link(peer=a, region=everywhere)
        with pytest.raises(RoutingError, match="loop"):
            greedy_route(a, (0.5, 0.5))

    def test_no_convergence_raises(self):
        """An endless chain of fresh peers trips the hop budget, not a
        loop: every hop visits a brand-new peer so ``seen`` never fires."""
        from repro.core.framework import Link
        from repro.core.regions import RectRegion
        from repro.common.geometry import Rect

        everywhere = RectRegion(Rect.unit(2))

        class ChainPeer:
            counter = 0

            def __init__(self):
                ChainPeer.counter += 1
                self.peer_id = ChainPeer.counter

            def links(self):
                return [Link(peer=ChainPeer(), region=everywhere)]

        with pytest.raises(RoutingError, match="no convergence"):
            greedy_route(ChainPeer(), (0.5, 0.5), max_hops=50)

    def test_max_hops_generous_enough_for_real_overlays(self, network):
        """The default budget never truncates a legitimate MIDAS route."""
        overlay, _ = network
        rng = np.random.default_rng(3)
        for _ in range(10):
            owner, _ = greedy_route(overlay.random_peer(rng),
                                    tuple(rng.random(2)),
                                    max_hops=len(overlay.peers()))
            assert owner.zone.contains  # reached without RoutingError


class TestRouteAround:
    def test_finds_live_coordinator(self, network):
        """With everything alive, a neighbor coordinating any region is one
        hop away."""
        overlay, _ = network
        peer = overlay.peers()[0]
        target_region = peer.links()[0].region
        found, hops = route_around(peer, target_region, lambda pid: True)
        assert found is not None and found is not peer
        assert hops >= 1
        assert any(ln.region.intersect(target_region) is not None
                   for ln in found.links())

    def test_excluded_peer_is_skipped(self, network):
        overlay, _ = network
        peer = overlay.peers()[0]
        region = peer.links()[0].region
        first, _ = route_around(peer, region, lambda pid: True)
        second, _ = route_around(peer, region, lambda pid: True,
                                 exclude=(first.peer_id,))
        assert second is not None
        assert second.peer_id != first.peer_id

    def test_dead_links_are_not_traversed(self, network):
        """Killing every neighbor of the start isolates it: no coordinator
        is reachable."""
        overlay, _ = network
        peer = overlay.peers()[0]
        dead = {ln.peer.peer_id for ln in peer.links()}
        region = peer.links()[0].region
        found, hops = route_around(peer, region,
                                   lambda pid: pid not in dead)
        assert found is None and hops == 0

    def test_routes_around_a_dead_peer(self, network):
        """With one neighbor dead, the search still reaches a coordinator
        for that neighbor's region through the remaining live links."""
        overlay, _ = network
        peer = overlay.peers()[0]
        victim = peer.links()[0].peer
        region = peer.links()[0].region
        found, hops = route_around(peer, region,
                                   lambda pid: pid != victim.peer_id,
                                   exclude=(victim.peer_id,))
        assert found is not None
        assert found.peer_id != victim.peer_id
        assert any(ln.region.intersect(region) is not None
                   for ln in found.links())

    def test_max_peers_budget(self, network):
        overlay, _ = network
        peer = overlay.peers()[0]
        region = peer.links()[-1].region
        found, _ = route_around(peer, region, lambda pid: True, max_peers=1)
        assert found is None  # budget spent on the start peer itself


class TestSeededDriver:
    def test_seeded_correct_for_every_r(self, network):
        overlay, data = network
        fn = LinearScore([1, 1])
        handler = TopKHandler(fn, 5)
        reference = [s for s, _ in topk_reference(data, fn, 5)]
        for r in (0, 2, 10 ** 9):
            result = run_seeded(overlay.random_peer(), handler, r,
                                restriction=overlay.domain(),
                                seed_point=(0.999, 0.999))
            assert [s for s, _ in result.answer] == reference

    def test_seed_path_counts_in_latency(self, network):
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1]), 5)
        result = run_seeded(overlay.random_peer(), handler, 0,
                            restriction=overlay.domain(),
                            seed_point=(0.999, 0.999))
        assert result.stats.latency >= 1

    def test_initial_state_threads_through(self, network):
        """An initial state that certifies everything suppresses answers."""
        import math
        from repro.queries.topk import TopKState

        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1]), 5)
        result = run_seeded(overlay.random_peer(), handler, 0,
                            restriction=overlay.domain(),
                            seed_point=(0.999, 0.999),
                            initial_state=TopKState((math.inf,) * 5,
                                                    math.inf))
        assert result.answer == []

    def test_strict_mode_by_default(self, network):
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1]), 3)
        # would raise DuplicateVisitError if the seed bookkeeping leaked
        run_seeded(overlay.random_peer(), handler, 1,
                   restriction=overlay.domain(), seed_point=(0.5, 0.5),
                   strict=True)
