"""The shared overlay parametrization matrix for the test suites.

Every suite that sweeps "all substrates" (handler x engine bit-identity,
fault-plan/recovery properties, replica placement, mirror parity, trace
replay) parametrizes over the tables below instead of keeping its own
builder list — so a new overlay joins the entire robustness matrix by
being added here, with no per-test edits.  That is how the skip graph
became the fourth substrate.

Builders are seeded and deterministic: the same ``(kind, seed, peers,
tuples)`` always yields the same network, and :func:`seed_data` exposes
the exact dataset a builder loaded so reference answers can be computed
independently.
"""

import numpy as np

from repro import (CanOverlay, ChordOverlay, LinearScore, MidasOverlay,
                   RangeHandler, Rect, SkipGraphOverlay, SkylineHandler,
                   TopKHandler)
from repro.queries.diversify import (DiversificationObjective,
                                     SingleDiversificationHandler)

#: Every churn-capable substrate, in matrix-report order.
OVERLAYS = ("midas", "chord", "can", "skipgraph")

#: Data dimensionality per substrate (the ring substrates are 1-d).
DIMS = {"midas": 2, "chord": 1, "can": 2, "skipgraph": 1}

#: Whether the substrate's link regions are exact (strict mode allowed).
STRICT = {"midas": True, "chord": True, "can": False, "skipgraph": True}


def seed_data(seed, tuples, dims):
    """The canonical seeded dataset the builders load."""
    return np.random.default_rng(seed).random((tuples, dims)) * 0.999


def midas_network(seed, peers=36, tuples=260):
    overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
    overlay.load(seed_data(seed, tuples, 2))
    overlay.grow_to(peers)
    return overlay


def chord_network(seed, peers=32, tuples=260):
    overlay = ChordOverlay(size=peers, seed=seed)
    overlay.load(seed_data(seed, tuples, 1))
    return overlay


def can_network(seed, peers=36, tuples=260):
    overlay = CanOverlay(2, size=1, seed=seed)
    overlay.load(seed_data(seed, tuples, 2))
    overlay.grow_to(peers)
    return overlay


def skipgraph_network(seed, peers=32, tuples=260):
    overlay = SkipGraphOverlay(size=peers, seed=seed)
    overlay.load(seed_data(seed, tuples, 1))
    return overlay


NETWORKS = {"midas": midas_network, "chord": chord_network,
            "can": can_network, "skipgraph": skipgraph_network}

#: kind -> (builder, dims, strict): the engine-equality matrix rows.
ENGINE_CASES = {kind: (NETWORKS[kind], DIMS[kind], STRICT[kind])
                for kind in OVERLAYS}


def build_network(kind, seed, **kwargs):
    return NETWORKS[kind](seed, **kwargs)


def handlers_for(dims, third="range"):
    """The three handler families of the robustness matrix.

    ``third`` selects the family that joins top-k and skyline: the
    fault/engine suites sweep a range scan ("range"), the recovery and
    parity suites a distributed diversification ("diversify").
    """
    handlers = [TopKHandler(LinearScore([1.0] * dims), 4),
                SkylineHandler(dims)]
    if third == "range":
        handlers.append(RangeHandler(Rect((0.1,) * dims, (0.8,) * dims)))
    else:
        objective = DiversificationObjective([0.4] * dims, lam=0.5)
        handlers.append(SingleDiversificationHandler(
            objective, members=[(0.2,) * dims, (0.7,) * dims]))
    return handlers
