"""Tests for the whole-program pipeline: symbols, call graph, reachability.

The contract under test is *monotone scoping*: the reachability pass may
only ever widen where the determinism rules apply relative to the old
module-prefix heuristic — never narrow it — and unresolvable call edges
(dynamic dispatch the graph cannot follow) must degrade to exactly the
old prefix behavior.
"""

from pathlib import Path

import pytest

from repro.analysis_tools.ripplelint import ENTRY_POINTS, ParsedModule, Project
from repro.analysis_tools.ripplelint.engine import (
    SIM_FALLBACK_SCOPE, _SHARED_SCOPE, in_scope, in_shared_scope, sim_scope)
from repro.analysis_tools.ripplelint.reachability import SimReachability

REPO = Path(__file__).resolve().parents[2]


def project_from(sources):
    """A Project built from ``{virtual_path: source}`` fixture modules."""
    return Project.from_modules(
        ParsedModule.from_source(text, path=path)
        for path, text in sources.items())


@pytest.fixture(scope="module")
def repo_project():
    return Project.discover([REPO / "src" / "repro" / "core" / "framework.py"])


# -- entry points ----------------------------------------------------------


class TestEntryPoints:
    def test_every_entry_point_resolves_in_the_repo(self, repo_project):
        # A rename of run_ripple/wavefront_execute/QueryEngine.submit must
        # not silently detach the analysis from an engine.
        assert repo_project.reachability.missing_roots == ()

    def test_linter_is_never_sim_reachable(self, repo_project):
        reachable = repo_project.reachability.reachable
        assert not any(q.startswith("repro.analysis_tools")
                       for q in reachable)


# -- golden reachable sets per root ----------------------------------------


#: Per-root members the conservative graph must keep finding: the
#: framework recursion, the dynamically dispatched handler protocol, the
#: store read API, and the context accounting reached through tracing.
_GOLDEN = {
    "repro.core.framework.run_ripple": (
        "repro.core.framework.execute",
        "repro.core.handler.QueryHandler.compute_local_state",
        "repro.common.store.LocalStore.top_scoring",
        "repro.net.context.QueryContext.on_forward",
    ),
    "repro.net.scheduler.QueryEngine.submit": (
        "repro.core.handler.QueryHandler.compute_local_state",
        "repro.common.store.LocalStore.top_scoring",
        "repro.net.context.QueryContext.on_forward",
    ),
    "repro.overlays.arena.wavefront_execute": (
        "repro.core.framework.execute",
        "repro.core.handler.QueryHandler.compute_local_state",
        "repro.common.store.LocalStore.top_scoring",
    ),
}


class TestGoldenReachability:
    @pytest.mark.parametrize("root", sorted(_GOLDEN))
    def test_root_reaches_golden_members(self, repo_project, root):
        reachable = repo_project.callgraph.reachable_from({root})
        missing = [q for q in _GOLDEN[root] if q not in reachable]
        assert missing == [], f"{root} lost edges to {missing}"

    def test_union_of_roots_is_the_sim_scope(self, repo_project):
        pass_ = repo_project.reachability
        union = repo_project.callgraph.reachable_from(set(pass_.roots))
        assert pass_.reachable <= union


# -- cycles ----------------------------------------------------------------


class TestCycles:
    def test_mutual_recursion_terminates_and_closes(self):
        project = project_from({
            "src/repro/net/cyc.py": (
                "def ping(n):\n"
                "    return pong(n - 1)\n"
                "def pong(n):\n"
                "    return ping(n - 1)\n"
                "def solo():\n"
                "    return 0\n"),
        })
        reachable = project.callgraph.reachable_from({"repro.net.cyc.ping"})
        assert "repro.net.cyc.ping" in reachable
        assert "repro.net.cyc.pong" in reachable
        assert "repro.net.cyc.solo" not in reachable

    def test_self_recursion(self):
        project = project_from({
            "src/repro/net/rec.py": "def again(n):\n    return again(n)\n",
        })
        reachable = project.callgraph.reachable_from({"repro.net.rec.again"})
        assert reachable == {"repro.net.rec.again"}


# -- unresolvable calls degrade to the prefix fallback ---------------------


class TestUnresolvableFallback:
    def test_dynamic_call_is_counted_unresolved(self):
        project = project_from({
            "src/repro/net/dyn.py": (
                "def pump(plugins):\n"
                "    fn = getattr(plugins, 'step')\n"
                "    fn()\n"),
        })
        assert project.callgraph.has_unresolved("repro.net.dyn.pump")

    def test_prefix_scope_survives_a_fully_opaque_graph(self):
        # Even when the graph resolves nothing, every module the old
        # module-prefix heuristic covered is still in scope: the union
        # semantics make a lost edge cost coverage, never soundness.
        project = project_from({
            "src/repro/net/dyn.py": "def pump(f):\n    f()\n",
            "src/repro/queries/q.py": "def run(f):\n    f()\n",
        })
        for module in project.modules.values():
            assert sim_scope(module, 1, project)
            assert in_shared_scope(module, project)

    def test_repo_scope_is_superset_of_module_prefix(self, repo_project):
        # The acceptance criterion, proven over the real tree: every
        # (module, line) the old _SHARED_SCOPE / sim-prefix heuristic
        # put in scope is still in scope under the new pipeline.
        for module in repo_project.modules.values():
            if in_scope(module, _SHARED_SCOPE):
                assert in_shared_scope(module, repo_project)
            if in_scope(module, SIM_FALLBACK_SCOPE):
                last = getattr(module.tree.body[-1], "end_lineno", 1) \
                    if module.tree.body else 1
                for line in (1, max(1, last // 2), last):
                    assert sim_scope(module, line, repo_project)

    def test_reachability_extends_beyond_the_prefix(self, repo_project):
        # The point of the pipeline: at least one module outside the
        # historical sim prefixes is now provably sim-reachable.
        extended = [
            module for module in repo_project.modules.values()
            if not in_scope(module, SIM_FALLBACK_SCOPE)
            and repo_project.module_reachable(module)]
        assert extended, "reachability added no coverage beyond prefixes"


# -- symbol table ----------------------------------------------------------


class TestSymbols:
    def test_import_chain_resolution(self):
        project = project_from({
            "src/repro/common/util.py": "def helper():\n    return 1\n",
            "src/repro/common/__init__.py": (
                '"""pkg"""\n'
                "from repro.common.util import helper\n"
                "__all__ = ['helper']\n"),
            "src/repro/net/use.py": (
                "from repro.common import helper\n"
                "def go():\n"
                "    return helper()\n"),
        })
        symbols = project.symbols
        assert symbols.resolve_name("repro.net.use", "helper") == \
            "repro.common.util.helper"
        reachable = project.callgraph.reachable_from({"repro.net.use.go"})
        assert "repro.common.util.helper" in reachable

    def test_relative_import_resolution(self):
        project = project_from({
            "src/repro/net/aux.py": "def fix():\n    return 0\n",
            "src/repro/net/use.py": (
                "from .aux import fix\n"
                "def go():\n"
                "    return fix()\n"),
        })
        assert "repro.net.aux.fix" in \
            project.callgraph.reachable_from({"repro.net.use.go"})

    def test_subclasses_of_walks_transitively(self, repo_project):
        names = {cls.qualname.rsplit(".", 1)[-1]
                 for cls in repo_project.symbols.subclasses_of("QueryHandler")}
        assert "TopKHandler" in names

    def test_entry_point_methods_exist_as_functions(self, repo_project):
        for qualname in ENTRY_POINTS:
            assert qualname in repo_project.symbols.functions
