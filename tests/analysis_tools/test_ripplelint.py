"""ripplelint's own test-suite: golden fixtures per rule plus self-checks.

Every rule gets one known-bad fixture (the rule must fire, with the right
rule id and line) and one known-good fixture (the rule must stay silent
on the legitimate twin of the pattern).  The repo-wide self-check at the
bottom is the real gate: ``src/`` lints clean, so any new violation fails
the suite locally exactly as the CI static-analysis job would.
"""

import importlib
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis_tools import ripplelint

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def findings_for(source, virtual_path="src/repro/somewhere/mod.py"):
    return ripplelint.lint_source(source, virtual_path=virtual_path)


def rules_of(findings):
    return [f.rule for f in findings]


# -- RPL001: unseeded randomness ------------------------------------------


class TestRPL001:
    def test_bad_import_random(self):
        findings = findings_for("import random\nx = random.random()\n")
        assert "RPL001" in rules_of(findings)
        assert findings[0].line == 1

    def test_bad_from_random_import(self):
        findings = findings_for("from random import shuffle\n")
        assert rules_of(findings) == ["RPL001"]

    def test_bad_legacy_np_random_call(self):
        findings = findings_for(
            "import numpy as np\nx = np.random.random(4)\n")
        assert rules_of(findings) == ["RPL001"]
        assert findings[0].line == 2

    def test_good_seeded_generator(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng(7)\n"
                  "x = rng.random(4)\n"
                  "ss = np.random.SeedSequence(3)\n")
        assert findings_for(source) == []

    def test_out_of_scope_path_is_ignored(self):
        findings = ripplelint.lint_source(
            "import random\n", virtual_path="scripts/mod.py")
        assert findings == []


# -- RPL002: wall-clock reads ---------------------------------------------


class TestRPL002:
    def test_bad_time_time(self):
        findings = findings_for("import time\nstart = time.time()\n")
        assert rules_of(findings) == ["RPL002"]
        assert findings[0].line == 2

    def test_bad_perf_counter_import(self):
        findings = findings_for("from time import perf_counter\n")
        assert rules_of(findings) == ["RPL002"]

    def test_bad_datetime_now(self):
        findings = findings_for(
            "import datetime\nstamp = datetime.datetime.now()\n")
        assert rules_of(findings) == ["RPL002"]

    def test_good_inside_wallclock_helper(self):
        source = ("import time\n"
                  "def _wallclock() -> float:\n"
                  "    return time.time()\n")
        assert findings_for(source) == []

    def test_good_virtual_time(self):
        assert findings_for("def f(sim):\n    return sim.now\n") == []


# -- RPL003: LocalStore internals -----------------------------------------


class TestRPL003:
    def test_bad_direct_size_write(self):
        findings = findings_for("def f(store):\n    store._size += 1\n")
        assert "RPL003" in rules_of(findings)

    def test_bad_private_method_call(self):
        findings = findings_for("def f(store):\n    store._invalidate()\n")
        assert rules_of(findings) == ["RPL003"]

    def test_good_mutation_api(self):
        source = ("def f(store, rows):\n"
                  "    store.bulk_load(rows)\n"
                  "    return store.array, store.version\n")
        assert findings_for(source) == []

    def test_store_module_itself_is_exempt(self):
        findings = ripplelint.lint_source(
            "class LocalStore:\n"
            "    def _invalidate(self) -> None:\n"
            "        self._cache = {}\n",
            virtual_path="src/repro/common/store.py")
        assert findings == []


# -- RPL004: handler protocol ---------------------------------------------


COMPLETE_HANDLER = """
from repro.core.handler import QueryHandler

class GoodHandler(QueryHandler):
    def initial_state(self): return None
    def compute_local_state(self, store, state): return None
    def compute_global_state(self, received, local): return None
    def update_local_state(self, states): return None
    def compute_local_answer(self, store, state): return []
    def is_link_relevant(self, region, state): return True
    def link_priority(self, region): return 0.0
    def finalize(self, answers): return []
"""


class TestRPL004:
    def test_good_complete_handler(self):
        assert findings_for(COMPLETE_HANDLER) == []

    def test_bad_missing_method(self):
        source = COMPLETE_HANDLER.replace(
            "    def finalize(self, answers): return []\n", "")
        findings = findings_for(source)
        assert rules_of(findings) == ["RPL004"]
        assert "finalize" in findings[0].message

    def test_bad_wrong_arity(self):
        source = COMPLETE_HANDLER.replace(
            "def link_priority(self, region):",
            "def link_priority(self, region, extra):")
        findings = findings_for(source)
        assert rules_of(findings) == ["RPL004"]
        assert "link_priority" in findings[0].message

    def test_bad_optional_hook_arity(self):
        source = COMPLETE_HANDLER + (
            "    def seed_satisfied(self, a, b): return False\n")
        findings = findings_for(source)
        assert rules_of(findings) == ["RPL004"]

    def test_abstract_intermediate_is_exempt(self):
        source = ("from repro.core.handler import QueryHandler\n"
                  "from abc import abstractmethod\n"
                  "class Base(QueryHandler):\n"
                  "    @abstractmethod\n"
                  "    def extra(self): ...\n")
        assert findings_for(source) == []


# -- RPL005: replication contract -----------------------------------------


OVERLAY_PATH = "src/repro/overlays/custom.py"

REPLICATED_OVERLAY = """
class CustomPeer:
    __slots__ = ("peer_id", "store", "alive", "replicas")

class CustomOverlay:
    def join(self): ...
    def leave(self): ...
    def replica_targets(self, peer, count): return []
"""


class TestRPL005:
    def test_good_full_contract(self):
        assert ripplelint.lint_source(
            REPLICATED_OVERLAY, virtual_path=OVERLAY_PATH) == []

    def test_bad_missing_replica_targets(self):
        source = REPLICATED_OVERLAY.replace(
            "    def replica_targets(self, peer, count): return []\n", "")
        findings = ripplelint.lint_source(source, virtual_path=OVERLAY_PATH)
        assert rules_of(findings) == ["RPL005"]
        assert "replica_targets" in findings[0].message

    def test_bad_wrong_replica_targets_arity(self):
        source = REPLICATED_OVERLAY.replace(
            "def replica_targets(self, peer, count):",
            "def replica_targets(self, peer):")
        findings = ripplelint.lint_source(source, virtual_path=OVERLAY_PATH)
        assert rules_of(findings) == ["RPL005"]

    def test_bad_peer_missing_replica_slots(self):
        source = REPLICATED_OVERLAY.replace(
            '__slots__ = ("peer_id", "store", "alive", "replicas")',
            '__slots__ = ("peer_id", "store")')
        findings = ripplelint.lint_source(source, virtual_path=OVERLAY_PATH)
        assert sorted(rules_of(findings)) == ["RPL005", "RPL005"]

    def test_bad_partial_physical_identity(self):
        source = ("class HalfPromoted:\n"
                  '    __slots__ = ("physical_id", "store")\n')
        findings = ripplelint.lint_source(source, virtual_path=OVERLAY_PATH)
        assert rules_of(findings) == ["RPL005"]
        assert "physical_id" in findings[0].message

    def test_outside_overlays_is_exempt(self):
        source = REPLICATED_OVERLAY.replace(
            "    def replica_targets(self, peer, count): return []\n", "")
        assert findings_for(source) == []


SKIPGRAPH_PATH = "src/repro/overlays/skipgraph.py"

SKIPGRAPH_OVERLAY = '''
class SkipGraphPeer:
    __slots__ = ("peer_id", "overlay", "key", "store", "alive", "replicas",
                 "_links")

class SkipGraphOverlay:
    MAX_DEGREE = 6
    def join(self): ...
    def leave(self, peer=None): ...
    def replica_targets(self, peer, count): return []
'''


class TestRPL005SkipGraph:
    """The skip-graph shapes are inside the replication contract too."""

    def test_skipgraph_shapes_satisfy_the_contract(self):
        assert ripplelint.lint_source(
            SKIPGRAPH_OVERLAY, virtual_path=SKIPGRAPH_PATH) == []

    def test_peer_without_replicas_slot_is_flagged(self):
        source = SKIPGRAPH_OVERLAY.replace('"replicas",\n                 ', '')
        findings = ripplelint.lint_source(source,
                                          virtual_path=SKIPGRAPH_PATH)
        assert rules_of(findings) == ["RPL005"]
        assert "replicas" in findings[0].message

    def test_peer_without_alive_slot_is_flagged(self):
        source = SKIPGRAPH_OVERLAY.replace('"alive", ', '')
        findings = ripplelint.lint_source(source,
                                          virtual_path=SKIPGRAPH_PATH)
        assert rules_of(findings) == ["RPL005"]

    def test_overlay_without_replica_targets_is_flagged(self):
        source = SKIPGRAPH_OVERLAY.replace(
            "    def replica_targets(self, peer, count): return []\n", "")
        findings = ripplelint.lint_source(source,
                                          virtual_path=SKIPGRAPH_PATH)
        assert rules_of(findings) == ["RPL005"]

    def test_tower_signature_with_extra_args_is_flagged(self):
        source = SKIPGRAPH_OVERLAY.replace(
            "def replica_targets(self, peer, count):",
            "def replica_targets(self, peer, count, tower):")
        findings = ripplelint.lint_source(source,
                                          virtual_path=SKIPGRAPH_PATH)
        assert rules_of(findings) == ["RPL005"]

    def test_real_module_is_clean(self):
        findings = ripplelint.lint_paths(["src/repro/overlays/skipgraph.py"])
        assert findings == []


# -- RPL006: mutable defaults / bare except -------------------------------


class TestRPL006:
    def test_bad_mutable_default(self):
        findings = findings_for("def f(xs=[]):\n    return xs\n")
        assert rules_of(findings) == ["RPL006"]

    def test_bad_mutable_call_default(self):
        findings = findings_for("def f(xs=dict()):\n    return xs\n")
        assert rules_of(findings) == ["RPL006"]

    def test_bad_bare_except(self):
        source = ("def f():\n"
                  "    try:\n"
                  "        return 1\n"
                  "    except:\n"
                  "        return 2\n")
        findings = findings_for(source)
        assert rules_of(findings) == ["RPL006"]

    def test_good_none_default_and_narrow_except(self):
        source = ("def f(xs=None, ys=frozenset()):\n"
                  "    try:\n"
                  "        return list(xs or [])\n"
                  "    except ValueError:\n"
                  "        return []\n")
        assert findings_for(source) == []


# -- RPL007: float equality in kernels ------------------------------------


KERNEL_PATH = "src/repro/common/scoring.py"


class TestRPL007:
    def test_bad_arithmetic_equality(self):
        findings = ripplelint.lint_source(
            "def f(a, b, c):\n    return a + b == c\n",
            virtual_path=KERNEL_PATH)
        assert rules_of(findings) == ["RPL007"]

    def test_bad_inequality_on_product(self):
        findings = ripplelint.lint_source(
            "def f(x, w, t):\n    return x * w != t\n",
            virtual_path=KERNEL_PATH)
        assert rules_of(findings) == ["RPL007"]

    def test_good_stored_value_comparison(self):
        # Comparing two stored coordinates exactly is legitimate: zones
        # tile the domain with shared, bit-identical face coordinates.
        findings = ripplelint.lint_source(
            "def f(a, b):\n    return a.lo == b.hi\n",
            virtual_path=KERNEL_PATH)
        assert findings == []

    def test_non_kernel_module_is_exempt(self):
        assert findings_for("def f(a, b, c):\n    return a + b == c\n") == []


# -- RPL008: __all__ hygiene ----------------------------------------------


class TestRPL008:
    def test_bad_unresolved_name(self):
        findings = findings_for('__all__ = ["missing"]\n')
        assert rules_of(findings) == ["RPL008"]
        assert "missing" in findings[0].message

    def test_good_resolved_names(self):
        source = ('__all__ = ["f", "X"]\n'
                  "def f():\n    return 1\n"
                  "class X:\n    pass\n")
        assert findings_for(source) == []

    def test_pep562_getattr_exempts_resolution(self):
        source = ('__all__ = ["lazy"]\n'
                  "def __getattr__(name):\n"
                  "    raise AttributeError(name)\n")
        assert findings_for(source) == []

    def test_bad_package_without_all(self):
        findings = ripplelint.lint_source(
            '"""docstring."""\n',
            virtual_path="src/repro/newpkg/__init__.py")
        assert rules_of(findings) == ["RPL008"]

    def test_bad_package_without_docstring(self):
        findings = ripplelint.lint_source(
            "__all__ = []\n",
            virtual_path="src/repro/newpkg/__init__.py")
        assert rules_of(findings) == ["RPL008"]


# -- RPL009: type-ignore hygiene ------------------------------------------


class TestRPL009:
    def test_bad_blanket_ignore(self):
        findings = findings_for("x = f()  # type: ignore\n")
        assert rules_of(findings) == ["RPL009"]

    def test_bad_unjustified_narrow_ignore(self):
        findings = findings_for("x = f()  # type: ignore[arg-type]\n")
        assert rules_of(findings) == ["RPL009"]

    def test_good_justified_narrow_ignore(self):
        source = ("x = f()  # type: ignore[arg-type]  "
                  "# the checker cannot see the runtime registry\n")
        assert findings_for(source) == []

    def test_mention_inside_string_is_not_a_finding(self):
        source = 'doc = "never write # type: ignore without codes"\n'
        assert findings_for(source) == []


# -- RPL010: passive trace sinks -------------------------------------------


SINK_PATH = "src/repro/obs/custom_sink.py"

RECORDING_SINK = """
class RecordingSink(TraceSink):
    enabled = True

    def begin_span(self, kind, peer, t, *, parent=None, region=None, **attrs):
        self.spans.append((kind, peer, t))
        return len(self.spans)

    def end_span(self, span_id, t, **attrs):
        self.closed[span_id] = t

    def event(self, kind, t, *, span=0, count=1, **attrs):
        self.events.append((kind, t, count))

    def on_stats(self, stats):
        self.stats_records.append(stats)
"""


class TestRPL010:
    def test_good_recording_sink(self):
        assert ripplelint.lint_source(
            RECORDING_SINK, virtual_path=SINK_PATH) == []

    def test_bad_context_mutator_call(self):
        source = RECORDING_SINK.replace(
            "        self.events.append((kind, t, count))",
            "        attrs['ctx'].on_forward()")
        findings = ripplelint.lint_source(source, virtual_path=SINK_PATH)
        assert rules_of(findings) == ["RPL010"]
        assert "on_forward" in findings[0].message

    def test_bad_assignment_through_parameter(self):
        source = RECORDING_SINK.replace(
            "        self.stats_records.append(stats)",
            "        stats.latency = 0")
        findings = ripplelint.lint_source(source, virtual_path=SINK_PATH)
        assert rules_of(findings) == ["RPL010"]
        assert "stats" in findings[0].message

    def test_bad_container_mutation_of_parameter(self):
        source = RECORDING_SINK.replace(
            "        self.stats_records.append(stats)",
            "        stats.fault_events.clear()")
        findings = ripplelint.lint_source(source, virtual_path=SINK_PATH)
        assert rules_of(findings) == ["RPL010"]

    def test_duck_typed_sink_is_recognized(self):
        # No TraceSink base: two protocol methods are enough to classify.
        source = ("class Sneaky:\n"
                  "    def begin_span(self, kind, peer, t, **attrs):\n"
                  "        return 0\n"
                  "    def on_stats(self, stats):\n"
                  "        stats.retries += 1\n")
        findings = ripplelint.lint_source(source, virtual_path=SINK_PATH)
        assert rules_of(findings) == ["RPL010"]

    def test_single_method_class_is_not_a_sink(self):
        # One coincidentally named method must not classify as a sink.
        source = ("class Telemetry:\n"
                  "    def on_stats(self, stats):\n"
                  "        stats.latency = 1\n")
        assert ripplelint.lint_source(source, virtual_path=SINK_PATH) == []

    def test_non_sink_methods_are_exempt(self):
        source = RECORDING_SINK + (
            "\n    def reset(self, stats):\n"
            "        stats.latency = 0\n")
        assert ripplelint.lint_source(source, virtual_path=SINK_PATH) == []


# -- RPL011: bounded retry/queue loops -------------------------------------


NET_PATH = "src/repro/net/custom_pump.py"


class TestRPL011:
    def test_bad_unbounded_pump(self):
        source = ("def pump(sim):\n"
                  "    while True:\n"
                  "        sim.schedule(1, sim.tick)\n")
        findings = ripplelint.lint_source(source, virtual_path=NET_PATH)
        assert rules_of(findings) == ["RPL011"]
        assert findings[0].line == 2

    def test_bad_truthiness_loop_without_bound(self):
        source = ("def drain(queue):\n"
                  "    while queue:\n"
                  "        queue.pop()\n")
        findings = ripplelint.lint_source(source, virtual_path=NET_PATH)
        assert rules_of(findings) == ["RPL011"]

    def test_good_compare_bounded_loop(self):
        source = ("def pump(sim, max_pumps):\n"
                  "    pumps = 0\n"
                  "    while pumps < max_pumps:\n"
                  "        pumps += 1\n"
                  "        sim.schedule(1, sim.tick)\n")
        assert ripplelint.lint_source(source, virtual_path=NET_PATH) == []

    def test_good_bound_token_in_body(self):
        # The event pump's shape: truthiness condition, but the body
        # consults an explicit cap every iteration.
        source = ("def run(self):\n"
                  "    while self._queue:\n"
                  "        if self.max_events is not None:\n"
                  "            self._charge()\n")
        assert ripplelint.lint_source(source, virtual_path=NET_PATH) == []

    def test_outside_net_is_exempt(self):
        source = "while True:\n    pass\n"
        assert ripplelint.lint_source(
            source, virtual_path="src/repro/queries/mod.py") == []


# -- RPL012: arena modules stay vectorized ---------------------------------


ARENA_PATH = "src/repro/overlays/arena.py"


class TestRPL012:
    def test_bad_object_dtype(self):
        source = ("import numpy as np\n"
                  "views = np.empty(9, dtype=object)\n")
        findings = ripplelint.lint_source(source, virtual_path=ARENA_PATH)
        assert rules_of(findings) == ["RPL012"]
        assert findings[0].line == 2

    def test_bad_object_dtype_string_and_astype(self):
        source = ("import numpy as np\n"
                  "a = np.zeros(4, dtype=\"O\")\n"
                  "b = a.astype(object)\n")
        findings = ripplelint.lint_source(source, virtual_path=ARENA_PATH)
        assert rules_of(findings) == ["RPL012", "RPL012"]

    def test_bad_loop_over_peers_call(self):
        source = ("def snapshot(overlay):\n"
                  "    for peer in overlay.peers():\n"
                  "        peer.links()\n")
        findings = ripplelint.lint_source(source, virtual_path=ARENA_PATH)
        assert rules_of(findings) == ["RPL012"]
        assert findings[0].line == 2

    def test_bad_comprehension_over_peer_range(self):
        source = "zones = [walk(i) for i in range(n_peers)]\n"
        findings = ripplelint.lint_source(source, virtual_path=ARENA_PATH)
        assert rules_of(findings) == ["RPL012"]

    def test_good_vectorized_code(self):
        source = ("import numpy as np\n"
                  "order = np.lexsort((-scores, group))\n"
                  "sizes = np.diff(store_ptr)\n"
                  "for cap in (4, 16, 64):\n"
                  "    pass\n")
        assert ripplelint.lint_source(source, virtual_path=ARENA_PATH) == []

    def test_outside_arena_modules_exempt(self):
        source = "links = [peer for peer in overlay.peers()]\n"
        assert ripplelint.lint_source(
            source, virtual_path="src/repro/overlays/midas.py") == []

    def test_suppressed_snapshot_walk(self):
        source = ("def snapshot(overlay):\n"
                  "    for peer in overlay.peers():"
                  "  # ripplelint: disable=RPL012\n"
                  "        peer.links()\n")
        assert ripplelint.lint_source(source, virtual_path=ARENA_PATH) == []


# -- suppression comments --------------------------------------------------


class TestSuppression:
    def test_targeted_suppression_silences_one_line(self):
        source = ("import time\n"
                  "a = time.time()  # ripplelint: disable=RPL002 -- profiling\n"
                  "b = time.time()\n")
        findings = findings_for(source)
        assert rules_of(findings) == ["RPL002"]
        assert findings[0].line == 3

    def test_suppression_is_rule_specific(self):
        source = "x = time.time()  # ripplelint: disable=RPL001\n"
        findings = findings_for("import time\n" + source)
        assert "RPL002" in rules_of(findings)

    def test_multiple_rules_in_one_comment(self):
        source = ("import time  # ripplelint: disable=RPL001, RPL002\n")
        assert findings_for(source) == []


# -- CLI behavior ----------------------------------------------------------


class TestCli:
    def test_exit_nonzero_and_location_output(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "queries" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        code = ripplelint.main([str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert f"{bad.as_posix()}:1:1: RPL001" in out

    def test_github_format(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "queries" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        code = ripplelint.main(["--format", "github", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("::error file=")
        assert "line=1" in out and "RPL001" in out

    def test_list_rules(self, capsys):
        assert ripplelint.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
                        "RPL006", "RPL007", "RPL008", "RPL009", "RPL010",
                        "RPL011", "RPL012"):
            assert rule_id in out

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "queries" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = f()  # type: ignore\n")
        assert ripplelint.main(["--rule", "RPL009", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPL009" in out and "RPL001" not in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis_tools.ripplelint",
             "--list-rules"],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0
        assert "RPL001" in proc.stdout

    def test_tools_wrapper(self):
        wrapper = REPO / "tools" / "ripplelint"
        proc = subprocess.run(
            [sys.executable, str(wrapper), "--list-rules"],
            capture_output=True, text=True, cwd=REPO,
            env={"PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0
        assert "RPL001" in proc.stdout


# -- repo-wide gates -------------------------------------------------------


class TestRepoSelfCheck:
    def test_src_lints_clean(self):
        findings = ripplelint.lint_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_benchmarks_and_tools_lint_clean(self):
        """The shared-scope rules bind benchmark drivers and repo scripts
        too (including the extensionless ``tools/ripplelint`` launcher,
        picked up via shebang sniffing)."""
        paths = [str(REPO / "benchmarks"), str(REPO / "tools")]
        linted = [p.as_posix() for p in ripplelint.iter_python_files(paths)]
        assert any(p.endswith("tools/ripplelint") for p in linted), linted
        findings = ripplelint.lint_paths(paths)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_all_exports_resolve_at_runtime(self):
        """Every ``__all__`` name of every repro module imports for real."""
        names = [path.relative_to(SRC).with_suffix("")
                 for path in sorted((SRC / "repro").rglob("*.py"))]
        modules = [".".join(p.parts[:-1] if p.parts[-1] == "__init__"
                            else p.parts) for p in names]
        assert modules, "no modules found under src/repro"
        for module_name in sorted(set(modules)):
            module = importlib.import_module(module_name)
            for export in getattr(module, "__all__", ()):
                assert hasattr(module, export), \
                    f"{module_name}.__all__ names unresolvable {export!r}"

    def test_strict_packages_fully_annotated(self):
        """Local stand-in for the CI mypy gate (mypy may be absent here):
        every function in the strict packages carries full annotations."""
        import ast
        missing = []
        for pkg in ("core", "net", "common", "overlays", "obs"):
            for path in sorted((SRC / "repro" / pkg).rglob("*.py")):
                tree = ast.parse(path.read_text())
                for node in ast.walk(tree):
                    if not isinstance(node, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                        continue
                    args = node.args
                    unannotated = [
                        a.arg
                        for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)
                        if a.annotation is None
                        and a.arg not in ("self", "cls")]
                    if args.vararg is not None \
                            and args.vararg.annotation is None:
                        unannotated.append("*" + args.vararg.arg)
                    if args.kwarg is not None \
                            and args.kwarg.annotation is None:
                        unannotated.append("**" + args.kwarg.arg)
                    if node.returns is None:
                        unannotated.append("return")
                    if unannotated:
                        missing.append(
                            f"{path}:{node.lineno} {node.name}: "
                            + ", ".join(unannotated))
        assert missing == [], "\n".join(missing)

    @pytest.mark.skipif(shutil.which("mypy") is None,
                        reason="mypy not installed; CI runs the real gate")
    def test_mypy_strict_packages(self):
        proc = subprocess.run(
            ["mypy", "-p", "repro.core", "-p", "repro.net",
             "-p", "repro.common", "-p", "repro.overlays",
             "-p", "repro.obs"],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/local/bin:/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
