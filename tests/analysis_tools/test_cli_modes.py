"""Tests for the CLI's baseline and changed-only modes.

Both modes wrap the same lint pipeline, so the tests pin the *contract*:
exit codes, which findings fail the run, and that ``--changed`` narrows
reporting without narrowing the whole-program analysis.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis_tools import ripplelint
from repro.analysis_tools.ripplelint import baseline
from repro.analysis_tools.ripplelint.cli import main

CLEAN = "def f(sim):\n    return sim.now\n"
DIRTY = "import random\n\ndef f(sim):\n    return sim.now\n"


def write_tree(root: Path, text: str, name: str = "mod.py") -> Path:
    target = root / "src" / "repro" / "net"
    target.mkdir(parents=True, exist_ok=True)
    path = target / name
    path.write_text(text, encoding="utf-8")
    return path


# -- baselines -------------------------------------------------------------


class TestBaseline:
    def test_write_then_compare_is_clean(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        base = tmp_path / "lint-baseline.json"
        src = str(tmp_path / "src")
        assert main([src, "--baseline", str(base),
                     "--write-baseline"]) == 0
        payload = json.loads(base.read_text())
        assert payload["version"] == 1
        assert [e["rule"] for e in payload["findings"]] == ["RPL001"]
        # The recorded finding is excused; the run is green.
        assert main([src, "--baseline", str(base)]) == 0
        err = capsys.readouterr().err
        assert "1 known finding(s)" in err

    def test_new_finding_still_fails(self, tmp_path):
        write_tree(tmp_path, DIRTY)
        base = tmp_path / "lint-baseline.json"
        src = str(tmp_path / "src")
        assert main([src, "--baseline", str(base),
                     "--write-baseline"]) == 0
        write_tree(tmp_path, DIRTY + "import time\nt = time.time()\n")
        assert main([src, "--baseline", str(base)]) == 1

    def test_matching_is_line_insensitive(self, tmp_path):
        write_tree(tmp_path, DIRTY)
        base = tmp_path / "lint-baseline.json"
        src = str(tmp_path / "src")
        assert main([src, "--baseline", str(base),
                     "--write-baseline"]) == 0
        # Shift the known finding down two lines: still excused.
        write_tree(tmp_path, "\n\n" + DIRTY)
        assert main([src, "--baseline", str(base)]) == 0

    def test_duplicate_findings_consume_allowances(self):
        finding = ripplelint.Finding(path="p.py", line=1, col=1,
                                     rule="RPL001", message="m")
        twin = ripplelint.Finding(path="p.py", line=9, col=1,
                                  rule="RPL001", message="m")
        known = baseline.compare([finding], {("p.py", "RPL001", "m"): 1})
        assert known == ([], [finding])
        new, old = baseline.compare([finding, twin],
                                    {("p.py", "RPL001", "m"): 1})
        assert (len(new), len(old)) == (1, 1)

    def test_write_baseline_requires_file(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--write-baseline"])
        assert excinfo.value.code == 2

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{\"version\": 99}")
        write_tree(tmp_path, CLEAN)
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "src"), "--baseline", str(bad)])
        assert excinfo.value.code == 2


# -- changed-only mode -----------------------------------------------------


def git(cwd: Path, *args: str) -> str:
    proc = subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *args],
        cwd=cwd, capture_output=True, text=True, check=True)
    return proc.stdout


@pytest.fixture
def git_repo(tmp_path, monkeypatch):
    git(tmp_path, "init", "-q", "-b", "main")
    write_tree(tmp_path, CLEAN, "stale.py")
    write_tree(tmp_path, CLEAN, "touched.py")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestChanged:
    def test_only_changed_files_are_reported(self, git_repo, capsys):
        # Both files become dirty, but only one changed since HEAD:
        # --changed reports just the touched file.
        stale = write_tree(git_repo, DIRTY, "stale.py")
        git(git_repo, "add", str(stale))
        git(git_repo, "commit", "-qm", "preexisting debt")
        write_tree(git_repo, DIRTY, "touched.py")
        assert main(["src", "--changed", "HEAD"]) == 1
        out = capsys.readouterr().out
        assert "touched.py" in out
        assert "stale.py" not in out

    def test_untracked_files_are_linted(self, git_repo, capsys):
        write_tree(git_repo, DIRTY, "brandnew.py")
        assert main(["src", "--changed", "HEAD"]) == 1
        assert "brandnew.py" in capsys.readouterr().out

    def test_no_changes_is_green(self, git_repo, capsys):
        assert main(["src", "--changed", "HEAD"]) == 0
        assert "no changed python files" in capsys.readouterr().err

    def test_changed_outside_scope_is_ignored(self, git_repo, capsys):
        (git_repo / "notes.py").write_text("import random\n")
        assert main(["src", "--changed", "HEAD"]) == 0


# -- contract regressions --------------------------------------------------


class TestContract:
    def test_exit_codes_and_github_format(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        src = str(tmp_path / "src")
        assert main([src]) == 1
        assert main([src, "--rule", "RPL002"]) == 0
        assert main([src, "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "RPL001" in out

    def test_unknown_rule_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--rule", "RPL999"])
        assert excinfo.value.code == 2
