"""Fixture tests for the whole-program rules (RPL013-RPL016) and the
span-aware suppression fix.

The rules run in two modes: bare-source fixtures (``project=None``) use
the sim-prefix fallback scope, while project-backed fixtures prove the
reachability-driven widening — a module *outside* every sim prefix gets
checked once the call graph connects it to an engine.
"""

from pathlib import Path

import pytest

from repro.analysis_tools.ripplelint import (ParsedModule, Project,
                                             lint_module, lint_source)

REPO = Path(__file__).resolve().parents[2]


def findings_for(source, virtual_path="src/repro/net/mod.py"):
    return lint_source(source, virtual_path=virtual_path)


def rules_of(findings):
    return [f.rule for f in findings]


def project_from(sources):
    return Project.from_modules(
        ParsedModule.from_source(text, path=path)
        for path, text in sources.items())


# -- RPL013: hash-order iteration -----------------------------------------


class TestRPL013:
    def test_bad_for_over_set_literal_name(self):
        findings = findings_for(
            "def drain(xs):\n"
            "    seen = set()\n"
            "    for x in seen:\n"
            "        print(x)\n")
        assert rules_of(findings) == ["RPL013"]
        assert findings[0].line == 3

    def test_bad_comprehension_over_set(self):
        findings = findings_for(
            "def collect(ids: set):\n"
            "    return [i + 1 for i in ids]\n")
        assert rules_of(findings) == ["RPL013"]

    def test_bad_list_of_set(self):
        findings = findings_for(
            "def snapshot():\n"
            "    pending = {1, 2}\n"
            "    return list(pending)\n")
        assert rules_of(findings) == ["RPL013"]

    def test_bad_os_environ_iteration(self):
        findings = findings_for(
            "import os\n"
            "def dump():\n"
            "    return [k for k in os.environ]\n")
        assert rules_of(findings) == ["RPL013"]

    def test_bad_set_algebra_iteration(self):
        findings = findings_for(
            "def merge(a: set, b: set):\n"
            "    out = []\n"
            "    for x in a | b:\n"
            "        out.append(x)\n"
            "    return out\n")
        assert rules_of(findings) == ["RPL013"]

    def test_good_sorted_wrap(self):
        assert findings_for(
            "def drain(seen: set):\n"
            "    for x in sorted(seen):\n"
            "        print(x)\n") == []

    def test_good_order_insensitive_sinks(self):
        assert findings_for(
            "def stats(seen: set):\n"
            "    total = sum(x for x in seen)\n"
            "    n = len(seen)\n"
            "    lo = min(seen)\n"
            "    return total, n, lo\n") == []

    def test_good_set_to_set_comprehension(self):
        assert findings_for(
            "def shift(seen: set):\n"
            "    return {x + 1 for x in seen}\n") == []

    def test_good_list_iteration_untouched(self):
        assert findings_for(
            "def drain(xs: list):\n"
            "    for x in xs:\n"
            "        print(x)\n") == []

    def test_out_of_sim_scope_without_project(self):
        # The fallback scope is the sim prefixes; an analysis module is
        # not sim code, so bare-source lints leave it alone.
        assert findings_for(
            "def drain():\n"
            "    for x in {1, 2}:\n"
            "        print(x)\n",
            virtual_path="src/repro/analysis_tools/x.py") == []

    def test_project_reachability_extends_the_scope(self):
        # repro/obs is outside every sim prefix; the call graph connects
        # it to run_ripple, so the iteration gets flagged — and an
        # unconnected twin stays exempt.
        sources = {
            "src/repro/core/framework.py": (
                "from repro.obs.hot import fanout\n"
                "def run_ripple(q):\n"
                "    return fanout(q)\n"),
            "src/repro/obs/hot.py": (
                "def fanout(q):\n"
                "    for x in {1, 2}:\n"
                "        q.append(x)\n"),
            "src/repro/obs/cold.py": (
                "def unconnected():\n"
                "    for x in {1, 2}:\n"
                "        print(x)\n"),
        }
        project = project_from(sources)
        hot = [f for f in lint_module(
            project.modules["repro.obs.hot"], project=project)]
        cold = [f for f in lint_module(
            project.modules["repro.obs.cold"], project=project)]
        assert "RPL013" in rules_of(hot)
        assert "RPL013" not in rules_of(cold)


# -- RPL014: handler purity ------------------------------------------------


class TestRPL014:
    def test_bad_store_mutation_in_handler_method(self):
        findings = findings_for(
            "class H(QueryHandler):\n"
            "    def compute_local_answer(self, store, state):\n"
            "        peer.store.insert(1.0)\n"
            "        return []\n",
            virtual_path="src/repro/queries/h.py")
        assert "RPL014" in rules_of(findings)

    def test_bad_peer_state_assignment(self):
        findings = findings_for(
            "class H(QueryHandler):\n"
            "    def update_local_state(self, states):\n"
            "        peer.alive = False\n",
            virtual_path="src/repro/queries/h.py")
        assert "RPL014" in rules_of(findings)

    def test_good_self_state_and_reads(self):
        findings = findings_for(
            "class H(QueryHandler):\n"
            "    def update_local_state(self, states):\n"
            "        self.best = max(states)\n"
            "    def compute_local_answer(self, store, state):\n"
            "        return store.top_scoring(state, 5)\n",
            virtual_path="src/repro/queries/h.py")
        assert "RPL014" not in rules_of(findings)

    def test_overlay_data_plane_is_exempt(self):
        assert findings_for(
            "def load(peer, rows):\n"
            "    peer.store.bulk_load(rows)\n",
            virtual_path="src/repro/overlays/grid.py") == []

    def test_project_closure_taints_helpers(self):
        # The handler method itself is clean, but a helper it calls
        # mutates a peer: the call-graph closure attributes the
        # violation to the helper.
        sources = {
            "src/repro/queries/h.py": (
                "from repro.queries.util import boost\n"
                "class H(QueryHandler):\n"
                "    def update_local_state(self, states):\n"
                "        return boost(states)\n"),
            "src/repro/queries/util.py": (
                "def boost(states):\n"
                "    peer.links = []\n"
                "    return states\n"),
        }
        project = project_from(sources)
        util = lint_module(project.modules["repro.queries.util"],
                           project=project)
        assert "RPL014" in rules_of(util)


# -- RPL015: context threading ---------------------------------------------


class TestRPL015:
    def test_bad_fresh_sink_construction(self):
        findings = findings_for(
            "def route(q, sink=None):\n"
            "    return probe(q, sink=NullSink())\n")
        assert rules_of(findings) == ["RPL015"]

    def test_bad_fresh_context_construction(self):
        findings = findings_for(
            "def hop(q, ctx):\n"
            "    return advance(q, ctx=QueryContext(q))\n")
        assert rules_of(findings) == ["RPL015"]

    def test_good_forwarding(self):
        assert findings_for(
            "def route(q, sink=None, executor=None):\n"
            "    return probe(q, sink=sink, executor=executor)\n") == []

    def test_good_defaulting_statement(self):
        assert findings_for(
            "def route(q, sink=None):\n"
            "    sink = sink if sink is not None else NullSink()\n"
            "    return probe(q, sink=sink)\n") == []

    def test_good_boolean_fallback(self):
        assert findings_for(
            "def route(q, sink=None):\n"
            "    return probe(q, sink=sink or child)\n") == []

    def test_project_detects_dropped_threading(self):
        sources = {
            "src/repro/net/route.py": (
                "from repro.net.probe import probe\n"
                "def route(q, sink=None):\n"
                "    return probe(q)\n"),
            "src/repro/net/probe.py": (
                "def probe(q, sink=None):\n"
                "    return q\n"),
        }
        project = project_from(sources)
        findings = lint_module(project.modules["repro.net.route"],
                               project=project)
        assert "RPL015" in rules_of(findings)

    def test_project_positional_pass_is_fine(self):
        sources = {
            "src/repro/net/route.py": (
                "from repro.net.probe import probe\n"
                "def route(q, sink=None):\n"
                "    return probe(q, sink)\n"),
            "src/repro/net/probe.py": (
                "def probe(q, sink=None):\n"
                "    return q\n"),
        }
        project = project_from(sources)
        findings = lint_module(project.modules["repro.net.route"],
                               project=project)
        assert "RPL015" not in rules_of(findings)

    def test_project_kwargs_spread_is_trusted(self):
        sources = {
            "src/repro/net/route.py": (
                "from repro.net.probe import probe\n"
                "def route(q, sink=None, **kw):\n"
                "    return probe(q, **kw)\n"),
            "src/repro/net/probe.py": (
                "def probe(q, sink=None):\n"
                "    return q\n"),
        }
        project = project_from(sources)
        findings = lint_module(project.modules["repro.net.route"],
                               project=project)
        assert "RPL015" not in rules_of(findings)


# -- RPL016: ad-hoc query-answer caching -----------------------------------


class TestRPL016:
    def test_bad_cache_subscript_write(self):
        findings = findings_for(
            "def answer(q):\n"
            "    _answer_cache[q.key] = run(q)\n"
            "    return _answer_cache[q.key]\n")
        assert rules_of(findings) == ["RPL016"]
        assert findings[0].line == 2

    def test_bad_memo_setdefault(self):
        findings = findings_for(
            "class Engine:\n"
            "    def answer(self, q):\n"
            "        return self._memo.setdefault(q.key, run(q))\n")
        assert rules_of(findings) == ["RPL016"]

    def test_bad_cache_update(self):
        findings = findings_for(
            "def warm(queries):\n"
            "    query_cache.update({q.key: run(q) for q in queries})\n")
        assert rules_of(findings) == ["RPL016"]

    def test_good_cache_directory_usage(self):
        # The sanctioned path: method calls on a CacheDirectory, no
        # subscript writes into a dict.
        assert findings_for(
            "def answer(engine, q):\n"
            "    hit = engine.cache.lookup(q.handler, q.restriction)\n"
            "    engine.cache.store(q.handler, q.restriction, hit)\n"
            "    return hit\n") == []

    def test_good_non_cache_container(self):
        assert findings_for(
            "def tally(outcomes):\n"
            "    counts = {}\n"
            "    counts['done'] = len(outcomes)\n"
            "    return counts\n") == []

    def test_good_cache_read_is_fine(self):
        assert findings_for(
            "def peek(q):\n"
            "    return _answer_cache.get(q.key)\n") == []

    def test_sanctioned_modules_exempt(self):
        source = ("def store(key, answer):\n"
                  "    _cache[key] = answer\n")
        assert findings_for(
            source, virtual_path="src/repro/net/resultcache.py") == []
        assert findings_for(
            source, virtual_path="src/repro/common/store.py") == []
        assert findings_for(
            source, virtual_path="src/repro/baselines/speerto.py") == []

    def test_out_of_sim_scope_without_project(self):
        assert findings_for(
            "def remember(k, v):\n"
            "    _cache[k] = v\n",
            virtual_path="src/repro/analysis_tools/x.py") == []

    def test_project_reachability_extends_the_scope(self):
        # Same widening contract as RPL013: an obs module outside every
        # sim prefix is checked once the call graph ties it to an
        # engine entry point, and an unconnected twin stays exempt.
        sources = {
            "src/repro/core/framework.py": (
                "from repro.obs.hot import cached\n"
                "def run_ripple(q):\n"
                "    return cached(q)\n"),
            "src/repro/obs/hot.py": (
                "_cache = {}\n"
                "def cached(q):\n"
                "    _cache[q] = q\n"
                "    return _cache[q]\n"),
            "src/repro/obs/cold.py": (
                "_cache = {}\n"
                "def unconnected(q):\n"
                "    _cache[q] = q\n"),
        }
        project = project_from(sources)
        hot = lint_module(project.modules["repro.obs.hot"],
                          project=project)
        cold = lint_module(project.modules["repro.obs.cold"],
                           project=project)
        assert "RPL016" in rules_of(hot)
        assert "RPL016" not in rules_of(cold)


# -- span-aware suppression ------------------------------------------------


class TestSuppressionSpan:
    def test_disable_on_continuation_line_suppresses(self):
        source = ("import time\n"
                  "start = time.time(\n"
                  ")  # ripplelint: disable=RPL002\n")
        assert findings_for(source) == []

    def test_disable_on_first_line_still_suppresses(self):
        source = ("import time\n"
                  "start = time.time()  # ripplelint: disable=RPL002\n")
        assert findings_for(source) == []

    def test_disable_inside_body_does_not_silence_the_header(self):
        # The span of def/class/loop headers is clamped: a disable
        # buried in the body must not excuse a header-anchored finding.
        source = ("class H(QueryHandler):\n"
                  "    def finalize(self, answers):\n"
                  "        # ripplelint: disable=RPL004\n"
                  "        return []\n")
        findings = lint_source(source,
                               virtual_path="src/repro/queries/h.py")
        assert "RPL004" in rules_of(findings)

    def test_disable_of_other_rule_does_not_suppress(self):
        source = ("import time\n"
                  "start = time.time(\n"
                  ")  # ripplelint: disable=RPL001\n")
        assert rules_of(findings_for(source)) == ["RPL002"]

    def test_multiline_set_iteration_suppressible(self):
        source = ("def drain(seen: set):\n"
                  "    for x in sorted_or_not(\n"
                  "        seen,\n"
                  "    ):\n"
                  "        print(x)\n")
        # Not a violation (call wrapper is opaque) — but the span fix is
        # exercised by the RPL013 twin below.
        assert findings_for(source) == []
        flagged = ("def drain(seen: set):\n"
                   "    for x in (\n"
                   "        seen  # ripplelint: disable=RPL013\n"
                   "    ):\n"
                   "        print(x)\n")
        assert findings_for(flagged) == []
