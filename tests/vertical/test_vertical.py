"""Tests for the vertical top-k algorithms (Section 2.1 lineage)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vertical.algorithms import fagin, klee, threshold_algorithm, tput
from repro.vertical.network import VerticalNetwork


def network(n=200, m=3, seed=0):
    rng = np.random.default_rng(seed)
    return VerticalNetwork(rng.random((n, m)))


class TestNetwork:
    def test_validation(self):
        with pytest.raises(ValueError):
            VerticalNetwork(np.zeros((5,)))
        with pytest.raises(ValueError):
            VerticalNetwork(np.zeros((5, 1)))

    def test_sorted_access_descending(self):
        net = network()
        from repro.vertical.network import AccessStats
        stats = AccessStats()
        values = [net.peers[0].sorted_access(i, stats)[1] for i in range(20)]
        assert values == sorted(values, reverse=True)
        assert stats.sorted_accesses == 20

    def test_random_access_counts(self):
        net = network()
        from repro.vertical.network import AccessStats
        stats = AccessStats()
        value = net.peers[1].random_access(7, stats)
        assert value == pytest.approx(net.data[7, 1])
        assert stats.random_accesses == 1

    def test_above_threshold(self):
        net = network()
        from repro.vertical.network import AccessStats
        out = net.peers[0].above_threshold(0.9, AccessStats())
        assert all(v >= 0.9 for _, v in out)
        assert len(out) == int((net.data[:, 0] >= 0.9).sum())

    def test_reference(self):
        net = network()
        ref = net.reference_topk(5, [1, 1, 1])
        assert len(ref) == 5
        assert ref[0][0] >= ref[-1][0]


class TestExactAlgorithms:
    @pytest.mark.parametrize("algorithm", [fagin, threshold_algorithm, tput])
    def test_matches_reference(self, algorithm):
        net = network(seed=1)
        ref = net.reference_topk(10, [1, 1, 1])
        result = algorithm(net, 10)
        assert [s for s, _ in result.answer] == \
            pytest.approx([s for s, _ in ref])

    @pytest.mark.parametrize("algorithm", [fagin, threshold_algorithm, tput])
    def test_weighted(self, algorithm):
        net = network(seed=2)
        weights = [2.0, 0.5, 1.0]
        ref = net.reference_topk(5, weights)
        result = algorithm(net, 5, weights)
        assert [s for s, _ in result.answer] == \
            pytest.approx([s for s, _ in ref])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            threshold_algorithm(network(), 3, [-1, 1, 1])

    def test_weight_count_checked(self):
        with pytest.raises(ValueError):
            tput(network(), 3, [1, 1])

    def test_ta_prunes_accesses(self):
        """TA stops early: it reads far fewer than all n*m values."""
        net = network(n=2000, m=3, seed=3)
        result = threshold_algorithm(net, 5)
        assert result.stats.total_accesses < 2000 * 3 / 2

    def test_ta_never_more_sorted_rows_than_fa(self):
        """TA's stopping rule fires no later than FA's (both lockstep)."""
        net1, net2 = network(seed=4), network(seed=4)
        ta = threshold_algorithm(net1, 5)
        fa = fagin(net2, 5)
        assert ta.stats.rounds <= fa.stats.rounds + 1

    def test_tput_three_rounds(self):
        result = tput(network(seed=5), 5)
        assert result.stats.rounds == 3

    @given(st.integers(0, 10 ** 6), st.integers(1, 15))
    @settings(max_examples=15, deadline=None)
    def test_fuzz_exactness(self, seed, k):
        rng = np.random.default_rng(seed)
        net = VerticalNetwork(rng.random((80, 4)))
        weights = list(rng.random(4))
        ref = [s for s, _ in net.reference_topk(k, weights)]
        for algorithm in (fagin, threshold_algorithm, tput):
            fresh = VerticalNetwork(net.data)
            result = algorithm(fresh, k, weights)
            assert [s for s, _ in result.answer] == pytest.approx(ref)


class TestKlee:
    def test_two_rounds_no_random_access(self):
        result = klee(network(seed=6), 5)
        assert result.stats.rounds == 2
        assert result.stats.random_accesses == 0

    def test_estimates_upper_bound_truth(self):
        net = network(seed=7)
        result = klee(net, 5)
        for estimate, obj in result.answer:
            assert estimate >= net.score(obj, np.ones(3)) - 1e-9

    def test_reasonable_recall_on_correlated_lists(self):
        """KLEE's sweet spot: attribute ranks agree, so shallow prefixes
        already contain the true winners."""
        rng = np.random.default_rng(8)
        base = rng.random((1000, 1))
        data = np.clip(base + rng.normal(0, 0.02, (1000, 3)), 0, 1)
        net = VerticalNetwork(data)
        ref_ids = {obj for _, obj in net.reference_topk(10, [1, 1, 1])}
        got_ids = {obj for _, obj in klee(net, 10, prefix_factor=5).answer}
        assert len(ref_ids & got_ids) >= 7

    def test_deep_prefix_converges_to_truth(self):
        net = network(n=300, seed=9)
        ref_ids = {obj for _, obj in net.reference_topk(5, [1, 1, 1])}
        got_ids = {obj for _, obj in
                   klee(net, 5, prefix_factor=60).answer}
        assert ref_ids == got_ids
