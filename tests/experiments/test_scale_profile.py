"""The ``scale`` experiment: Lemma validation rows over complete arenas."""

import pytest

from repro.core.analysis import fast_latency, ripple_latency, slow_latency
from repro.experiments.config import paper_config, smoke_config
from repro.experiments.scale_profile import (SEQUENTIAL_DEPTH_CAP,
                                             print_scale_rows, scale_profile)


class TestScaleProfile:
    def test_smoke_rows_all_match_lemmas(self):
        rows = scale_profile(smoke_config())
        depths = smoke_config().scale_depths
        # Four modes per depth (all smoke depths are under the cap).
        assert len(rows) == 4 * len(depths)
        for row in rows:
            assert row["match"] is True
            assert row["processed"] == row["peers"] == 2 ** row["depth"]
        by_mode = {(row["depth"], row["mode"]): row["latency"]
                   for row in rows}
        for depth in depths:
            assert by_mode[(depth, "fast")] == fast_latency(depth)
            assert by_mode[(depth, "r=1")] == ripple_latency(depth, 1)
            assert by_mode[(depth, "r=2")] == ripple_latency(depth, 2)
            assert by_mode[(depth, "slow")] == slow_latency(depth)

    def test_sequential_modes_capped(self):
        assert all(depth <= SEQUENTIAL_DEPTH_CAP
                   for depth in smoke_config().scale_depths)
        # The paper tier reaches past the cap: those depths must only
        # carry the wavefront ("fast") row.
        deep = [d for d in paper_config().scale_depths
                if d > SEQUENTIAL_DEPTH_CAP]
        assert deep  # the 1M-peer row exists

    def test_print_raises_on_divergence(self, capsys):
        rows = scale_profile(smoke_config())
        print_scale_rows(rows)
        assert "fast" in capsys.readouterr().out
        rows[0]["match"] = False
        with pytest.raises(SystemExit):
            print_scale_rows(rows)
