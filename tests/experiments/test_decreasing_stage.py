"""The decreasing stage: departures keep queries exact and cheap."""

import pytest

from repro.experiments.analysis_figures import decreasing_stage
from repro.experiments.config import smoke_config
from repro.experiments.runner import rows_to_series


@pytest.fixture(scope="module")
def rows():
    config = smoke_config().scaled(
        sizes=(2 ** 4, 2 ** 5), queries=2, network_seeds=(3,),
        nba_tuples=1200)
    return decreasing_stage(config)


class TestDecreasingStage:
    def test_all_levels_measured_at_all_sizes(self, rows):
        series = rows_to_series(rows, "latency")
        assert set(series) == {"r=0", "r=D/3", "r=2D/3", "r=D"}
        for points in series.values():
            assert [x for x, _ in points] == [2 ** 4, 2 ** 5]

    def test_congestion_bounded_by_size(self, rows):
        for row in rows:
            assert row.congestion <= row.x

    def test_results_analogous_to_increasing(self, rows):
        """The paper's remark: decreasing-stage results are analogous —
        smaller networks cost less, orderings unchanged."""
        series = rows_to_series(rows, "congestion")
        for points in series.values():
            assert points[0][1] <= points[-1][1] * 1.5 + 5
