"""Smoke and shape tests for the experiment suite (at tiny scale)."""

import numpy as np
import pytest

from repro.experiments.analysis_figures import ablation_link_policy, lemmas_table
from repro.experiments.config import (ExperimentConfig, default_config,
                                      paper_config, smoke_config)
from repro.experiments.diversify_figures import fig9_div_scale
from repro.experiments.figures import merge_seed_rows, ripple_levels
from repro.experiments.runner import Row, print_rows, rows_to_series
from repro.experiments.skyline_figures import fig7_skyline_scale
from repro.experiments.topk_figures import fig4_topk_scale, fig6_topk_k


@pytest.fixture(scope="module")
def tiny():
    return smoke_config().scaled(
        sizes=(2 ** 5, 2 ** 6), queries=2, network_seeds=(7,),
        nba_tuples=1500, mirflickr_tuples=800, synth_tuples=1200,
        default_size=2 ** 5, div_sizes=(2 ** 4, 2 ** 5), div_k=4,
        div_queries=1, div_max_iters=2)


class TestConfig:
    def test_defaults_cover_paper_grid_shape(self):
        paper = paper_config()
        assert paper.sizes[0] == 2 ** 10 and paper.sizes[-1] == 2 ** 17
        assert paper.dims == tuple(range(2, 11))
        assert paper.default_k == 10
        assert paper.default_lambda == 0.5

    def test_scaled_override(self):
        config = default_config().scaled(queries=3)
        assert config.queries == 3

    def test_ripple_levels(self):
        levels = dict(ripple_levels(12))
        assert levels["r=0"] == 0
        assert levels["r=D/3"] == 4
        assert levels["r=2D/3"] == 8
        assert levels["r=D"] == 12


class TestRunnerHelpers:
    def make_row(self, x, method, latency):
        return Row(figure="f", x_name="x", x=x, method=method,
                   latency=latency, congestion=1.0, messages=1.0,
                   tuples_shipped=0.0, queries=1)

    def test_merge_seed_rows_averages(self):
        rows = [self.make_row(1, "m", 10.0), self.make_row(1, "m", 20.0)]
        merged = merge_seed_rows(rows)
        assert len(merged) == 1
        assert merged[0].latency == 15.0
        assert merged[0].queries == 2

    def test_rows_to_series(self):
        rows = [self.make_row(1, "a", 5.0), self.make_row(2, "a", 7.0),
                self.make_row(1, "b", 3.0)]
        series = rows_to_series(rows, "latency")
        assert series["a"] == [(1, 5.0), (2, 7.0)]

    def test_print_rows_renders(self):
        text = print_rows([self.make_row(1, "a", 5.0)])
        assert "latency" in text and "a" in text


class TestLemmasTable:
    def test_measured_equals_analytical(self):
        rows = lemmas_table(depths=(2, 3), ripple_rs=(1,))
        by_method = {}
        for row in rows:
            by_method.setdefault(row.x, {})[row.method] = row.latency
        for depth, methods in by_method.items():
            assert methods["fast (measured)"] == methods["fast (Lemma 1)"]
            assert methods["slow (measured)"] == methods["slow (Lemma 2)"]
            assert methods["ripple r=1 (measured)"] == \
                methods["ripple r=1 (Lemma 3)"]


class TestFigures:
    def test_fig4_shapes(self, tiny):
        rows = fig4_topk_scale(tiny)
        latency = rows_to_series(rows, "latency")
        assert set(latency) == {"r=0", "r=D/3", "r=2D/3", "r=D"}
        # the parallel extreme is the fastest at every size
        for (_, fast), (_, slow) in zip(latency["r=0"], latency["r=D"]):
            assert fast <= slow + 1e-9

    def test_fig6_k_grows_cost(self, tiny):
        config = tiny.scaled(ks=(2, 20))
        rows = fig6_topk_k(config)
        congestion = rows_to_series(rows, "congestion")
        for series in congestion.values():
            assert series[0][1] <= series[-1][1] + 1e-9

    def test_fig7_all_methods_present(self, tiny):
        rows = fig7_skyline_scale(tiny)
        methods = {row.method for row in rows}
        assert methods == {"ripple-fast", "ripple-slow", "dsl", "ssp"}

    def test_fig9_baseline_floods(self, tiny):
        rows = fig9_div_scale(tiny)
        congestion = rows_to_series(rows, "congestion")
        for (_, base), (_, fast) in zip(congestion["baseline"],
                                        congestion["ripple-fast"]):
            assert base >= fast

    def test_ablation_runs_both_policies(self, tiny):
        rows = ablation_link_policy(tiny)
        assert {row.method for row in rows} == {
            "random/fast", "random/slow", "boundary/fast", "boundary/slow"}


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        import csv

        from repro.experiments.runner import Row, rows_to_csv

        rows = [Row("f", "n", 1, "m", 2.0, 3.0, 4.0, 5.0, 6)]
        path = tmp_path / "rows.csv"
        rows_to_csv(rows, path)
        with open(path) as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[0]["method"] == "m"
        assert float(parsed[0]["latency"]) == 2.0
