"""Tests for the experiment builders and the churn stages."""

import numpy as np
import pytest

from repro.experiments.builders import (build_baton, build_can, build_midas,
                                        grow_stages, mirflickr, nba_min,
                                        nba_raw, synth)
from repro.experiments.config import smoke_config


@pytest.fixture(scope="module")
def config():
    return smoke_config()


class TestDatasets:
    def test_nba_deterministic_per_seed(self, config):
        assert np.array_equal(nba_raw(config, 1), nba_raw(config, 1))
        assert not np.array_equal(nba_raw(config, 1), nba_raw(config, 2))

    def test_nba_min_is_flipped(self, config):
        raw = nba_raw(config, 0)
        flipped = nba_min(config, 0)
        assert np.allclose(flipped, np.clip(1 - raw, 0, 1 - 1e-9))

    def test_synth_dims(self, config):
        assert synth(config, 4, 0).shape == (config.synth_tuples, 4)

    def test_mirflickr_dims(self, config):
        assert mirflickr(config, 0).shape == (config.mirflickr_tuples, 5)


class TestOverlayBuilders:
    def test_build_midas_loads_then_grows(self, config):
        data = nba_raw(config, 0)
        overlay = build_midas(data, 32, 7)
        assert len(overlay) == 32
        assert overlay.total_tuples() == len(data)
        # data-adaptive joins: no peer hoards a large share of the data
        assert max(len(p.store) for p in overlay.peers()) < len(data) / 4

    def test_build_midas_link_policy(self, config):
        data = nba_min(config, 0)
        overlay = build_midas(data, 16, 7, link_policy="boundary")
        assert overlay.link_policy == "boundary"

    def test_build_can(self, config):
        data = nba_raw(config, 0)
        overlay = build_can(data, 24, 7)
        assert len(overlay) == 24
        assert overlay.total_tuples() == len(data)

    def test_build_baton_bits_capped_by_dims(self, config):
        data = synth(config, 4, 0)
        overlay = build_baton(data, 15, 7, bits_per_dim=20)
        assert overlay.zcurve.bits_per_dim * 4 <= 62

    def test_grow_stages_increasing(self, config):
        data = nba_raw(config, 0)
        overlay = build_midas(data, 8, 7)
        sizes = list(grow_stages(overlay, (8, 16, 32)))
        assert sizes == [8, 16, 32]
        assert len(overlay) == 32
        assert overlay.total_tuples() == len(data)
