"""Unit tests for the per-peer local store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.geometry import Rect
from repro.common.scoring import LinearScore
from repro.common.store import LocalStore


class TestBasics:
    def test_empty(self):
        store = LocalStore(3)
        assert len(store) == 0
        assert store.array.shape == (0, 3)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LocalStore(0)

    def test_insert_and_len(self):
        store = LocalStore(2)
        store.insert((0.1, 0.2))
        store.insert((0.3, 0.4))
        assert len(store) == 2
        assert store.array[1, 1] == pytest.approx(0.4)

    def test_insert_wrong_dims(self):
        store = LocalStore(2)
        with pytest.raises(ValueError):
            store.insert((1, 2, 3))

    def test_growth_beyond_initial_capacity(self):
        store = LocalStore(1)
        for i in range(100):
            store.insert((i / 100,))
        assert len(store) == 100
        assert store.array[99, 0] == pytest.approx(0.99)

    def test_bulk_load_shape_check(self):
        store = LocalStore(2)
        with pytest.raises(ValueError):
            store.bulk_load(np.zeros((3, 3)))

    def test_array_is_read_only(self):
        store = LocalStore(2, [(0.1, 0.2)])
        with pytest.raises(ValueError):
            store.array[0, 0] = 5.0

    def test_iter_points(self):
        store = LocalStore(2, [(0.1, 0.2), (0.3, 0.4)])
        assert list(store.iter_points()) == [(0.1, 0.2), (0.3, 0.4)]


class TestExtract:
    def test_extract_moves_inside_tuples(self):
        store = LocalStore(2, [(0.1, 0.1), (0.6, 0.6), (0.2, 0.9)])
        moved = store.extract(Rect((0.0, 0.0), (0.5, 0.5)))
        assert len(moved) == 1
        assert tuple(moved[0]) == (0.1, 0.1)
        assert len(store) == 2

    def test_extract_half_open(self):
        store = LocalStore(1, [(0.5,)])
        assert len(store.extract(Rect((0.0,), (0.5,)))) == 0
        assert len(store.extract(Rect((0.5,), (1.0,)))) == 1

    def test_take_all(self):
        store = LocalStore(2, [(0.1, 0.1), (0.6, 0.6)])
        taken = store.take_all()
        assert len(taken) == 2 and len(store) == 0

    @given(st.lists(st.tuples(st.floats(0, 0.999), st.floats(0, 0.999)),
                    max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_extract_partitions(self, points):
        store = LocalStore(2, points)
        total = len(store)
        moved = store.extract(Rect((0.0, 0.0), (0.5, 1.0)))
        assert len(moved) + len(store) == total
        assert all(p[0] < 0.5 for p in moved)
        assert all(p[0] >= 0.5 for p in store.iter_points())


class TestScans:
    def store(self):
        return LocalStore(2, [(0.9, 0.9), (0.1, 0.1), (0.5, 0.5), (0.7, 0.1)])

    def test_top_scoring_order(self):
        fn = LinearScore([1, 1])
        top = self.store().top_scoring(fn, 2)
        assert [t for _, t in top] == [(0.9, 0.9), (0.5, 0.5)]
        assert top[0][0] == pytest.approx(1.8)

    def test_top_scoring_threshold(self):
        fn = LinearScore([1, 1])
        top = self.store().top_scoring(fn, 10, above=0.9)
        assert [t for _, t in top] == [(0.9, 0.9), (0.5, 0.5)]

    def test_top_scoring_empty(self):
        fn = LinearScore([1, 1])
        assert LocalStore(2).top_scoring(fn, 3) == []
        assert self.store().top_scoring(fn, 0) == []

    def test_scoring_at_least(self):
        fn = LinearScore([1, 1])
        out = self.store().scoring_at_least(fn, 0.79)
        assert sorted(out) == [(0.5, 0.5), (0.7, 0.1), (0.9, 0.9)]

    def test_scoring_at_least_inclusive(self):
        fn = LinearScore([1, 1])
        store = LocalStore(2, [(0.25, 0.25)])
        assert (0.25, 0.25) in store.scoring_at_least(fn, 0.5)
