"""Unit tests for deterministic mixing."""

import numpy as np
from hypothesis import given, strategies as st

from repro.common.hashing import mix, mix_array, path_key


class TestMix:
    def test_deterministic(self):
        assert mix(1, 2, 3) == mix(1, 2, 3)

    def test_order_sensitive(self):
        assert mix(1, 2) != mix(2, 1)

    def test_64_bit_range(self):
        for args in [(0,), (1, 2, 3), (2 ** 70,)]:
            assert 0 <= mix(*args) < 2 ** 64

    @given(st.lists(st.integers(0, 2 ** 64 - 1), min_size=1, max_size=4))
    def test_bit_balance(self, values):
        assert mix(*values) != mix(*values, 0) or values == [0]

    def test_avalanche(self):
        base = mix(42)
        flipped = mix(43)
        assert bin(base ^ flipped).count("1") > 10


class TestPathKey:
    def test_root(self):
        assert path_key(()) == 1

    def test_distinguishes_depth(self):
        assert path_key((0,)) != path_key(())
        assert path_key((0, 0)) != path_key((0,))

    def test_distinguishes_bits(self):
        assert path_key((0, 1)) != path_key((1, 0))

    @given(st.lists(st.integers(0, 1), max_size=16),
           st.lists(st.integers(0, 1), max_size=16))
    def test_injective(self, a, b):
        if tuple(a) != tuple(b):
            assert path_key(tuple(a)) != path_key(tuple(b))


class TestMixArray:
    def test_elementwise_equals_scalar(self):
        owners = np.arange(64, dtype=np.uint64)
        keys = np.uint64(5) + owners * np.uint64(3)
        mixed = mix_array(9, owners, keys)
        assert mixed.dtype == np.uint64
        for i in range(64):
            assert int(mixed[i]) == mix(9, int(owners[i]), int(keys[i]))

    def test_broadcasting(self):
        row = mix_array(np.uint64(7), np.arange(8, dtype=np.uint64))
        for i in range(8):
            assert int(row[i]) == mix(7, i)

    @given(st.lists(st.integers(0, 2 ** 64 - 1), min_size=1, max_size=4))
    def test_property_matches_scalar(self, values):
        mixed = mix_array(*[np.uint64(v) for v in values])
        assert int(mixed) == mix(*values)
