"""The store's version counter and version-keyed computation cache."""

import numpy as np
import pytest

from repro.common.geometry import Rect
from repro.common.scoring import LinearScore
from repro.common.store import LocalStore, _CACHE_CAP
from repro.overlays.midas import MidasOverlay
from repro.queries.skyline import distributed_skyline, skyline_reference


class TestVersion:
    def test_starts_at_zero(self):
        assert LocalStore(2).version == 0

    def test_every_mutation_bumps(self):
        store = LocalStore(2)
        store.insert((0.1, 0.2))
        assert store.version == 1
        store.bulk_load(np.array([[0.3, 0.4], [0.5, 0.6]]))
        assert store.version == 2
        store.extract(Rect((0.0, 0.0), (0.4, 0.5)))
        assert store.version == 3
        store.take_all()
        assert store.version == 4

    def test_reads_do_not_bump(self):
        store = LocalStore(2, [(0.1, 0.2), (0.3, 0.1)])
        before = store.version
        store.array
        list(store.iter_points())
        store.top_scoring(LinearScore((1.0, 1.0)), 2)
        store.cached("probe", lambda: 42)
        assert store.version == before


class TestCached:
    def test_computes_once_per_version(self):
        store = LocalStore(2, [(0.1, 0.2)])
        calls = []
        compute = lambda: calls.append(1) or len(store)  # noqa: E731
        assert store.cached("k", compute) == 1
        assert store.cached("k", compute) == 1
        assert len(calls) == 1
        assert (store.cache_hits, store.cache_misses) == (1, 1)

    def test_mutation_invalidates(self):
        store = LocalStore(2, [(0.1, 0.2)])
        assert store.cached("n", lambda: len(store)) == 1
        store.insert((0.3, 0.4))
        assert store.cached("n", lambda: len(store)) == 2

    def test_distinct_keys_are_independent(self):
        store = LocalStore(2)
        assert store.cached(("a", 1), lambda: "x") == "x"
        assert store.cached(("a", 2), lambda: "y") == "y"
        assert store.cached(("a", 1), lambda: "z") == "x"

    def test_disabled_cache_always_computes(self):
        store = LocalStore(2)
        calls = []
        try:
            LocalStore.cache_enabled = False
            store.cached("k", lambda: calls.append(1))
            store.cached("k", lambda: calls.append(1))
        finally:
            LocalStore.cache_enabled = True
        assert len(calls) == 2
        assert store.cache_hits == 0

    def test_cap_bounds_table_size(self):
        store = LocalStore(2)
        for i in range(3 * _CACHE_CAP):
            store.cached(("key", i), lambda: i)
        assert len(store._cache) <= _CACHE_CAP

    def test_score_index_reused_across_scans(self):
        rng = np.random.default_rng(3)
        store = LocalStore(3)
        store.bulk_load(rng.random((200, 3)))
        fn = LinearScore((0.5, 0.3, 0.2))
        store.top_scoring(fn, 5)
        misses = store.cache_misses
        store.top_scoring(fn, 10, above=0.5)
        store.scoring_at_least(fn, 0.9)
        assert store.cache_misses == misses  # one index served all scans


class TestExtractEdgeCases:
    def test_empty_rect_moves_nothing_but_invalidates(self):
        store = LocalStore(2, [(0.5, 0.5), (0.8, 0.2)])
        cached = store.cached("probe", lambda: "old")
        assert cached == "old"
        moved = store.extract(Rect((0.0, 0.0), (0.1, 0.1)))
        assert len(moved) == 0
        assert len(store) == 2
        assert store.cached("probe", lambda: "new") == "new"

    def test_full_extraction_empties_store(self):
        store = LocalStore(2, [(0.2, 0.3), (0.4, 0.1)])
        moved = store.extract(Rect((0.0, 0.0), (1.0, 1.0)))
        assert len(moved) == 2
        assert len(store) == 0
        assert store.array.shape == (0, 2)

    def test_dim_mismatch_raises(self):
        store = LocalStore(2, [(0.2, 0.3)])
        with pytest.raises(ValueError):
            store.extract(Rect((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))

    def test_take_all_then_reload(self):
        store = LocalStore(2, [(0.2, 0.3), (0.4, 0.1)])
        store.cached("probe", lambda: "stale")
        out = store.take_all()
        assert out.shape == (2, 2)
        store.bulk_load(out)
        assert store.cached("probe", lambda: "fresh") == "fresh"
        assert np.array_equal(np.sort(store.array, axis=0), np.sort(out, axis=0))


class TestInvalidationAcrossTopologyChanges:
    """Zone splits (grow) and merges (leave) move tuples via extract /
    take_all, so every warm per-peer cache along the way must drop."""

    def test_skyline_stays_correct_through_split_and_merge(self):
        rng = np.random.default_rng(11)
        data = rng.random((400, 2)) * 0.999
        overlay = MidasOverlay(2, size=1, seed=5, join_policy="data")
        overlay.load(data)
        overlay.grow_to(8)
        reference = skyline_reference(data)

        def query():
            return distributed_skyline(
                overlay.random_peer(np.random.default_rng(1)), 2,
                restriction=overlay.domain(), r=1).answer

        assert query() == reference  # warms every store's skyline cache
        overlay.grow_to(20)          # splits: extract() on warm stores
        assert query() == reference
        overlay.shrink_to(6)         # merges: take_all() on warm stores
        assert query() == reference
        assert sum(len(p.store) for p in overlay.peers()) == len(data)
