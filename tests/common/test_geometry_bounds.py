"""Property tests: the distance bounds that drive all pruning are sound."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.common.geometry import Rect, maxdist, mindist, minkowski_distance

coords = st.floats(0, 1, allow_nan=False)


@st.composite
def boxes(draw, dims=3):
    lo = [draw(st.floats(0, 0.8)) for _ in range(dims)]
    hi = [l + draw(st.floats(0.01, 0.2)) for l in lo]
    return Rect(tuple(lo), tuple(hi))


@st.composite
def points(draw, dims=3):
    return tuple(draw(coords) for _ in range(dims))


class TestDistanceBounds:
    @given(points(), boxes(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_mindist_lower_bounds_all_members(self, q, rect, p):
        rng = np.random.default_rng(0)
        lo = mindist(q, rect, p)
        for _ in range(20):
            member = rect.sample(rng)
            assert minkowski_distance(q, member, p) >= lo - 1e-9

    @given(points(), boxes(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_maxdist_upper_bounds_all_members(self, q, rect, p):
        rng = np.random.default_rng(1)
        hi = maxdist(q, rect, p)
        for _ in range(20):
            member = rect.sample(rng)
            assert minkowski_distance(q, member, p) <= hi + 1e-9

    @given(points(), boxes())
    @settings(max_examples=60, deadline=None)
    def test_bounds_ordered(self, q, rect):
        assert mindist(q, rect) <= maxdist(q, rect) + 1e-12

    @given(boxes())
    @settings(max_examples=30, deadline=None)
    def test_mindist_zero_inside(self, rect):
        assert mindist(rect.center, rect) == 0.0

    @given(points(), boxes())
    @settings(max_examples=60, deadline=None)
    def test_bounds_attained_at_corners(self, q, rect):
        """maxdist is attained at some box corner."""
        import itertools

        corners = itertools.product(*zip(rect.lo, rect.hi))
        corner_max = max(minkowski_distance(q, c, 2) for c in corners)
        assert maxdist(q, rect) == corner_max


class TestCornerBound:
    @given(points(), boxes())
    @settings(max_examples=40, deadline=None)
    def test_linear_corner_maximizes(self, weights, rect):
        """Rect.corner picks the box-wide maximum of any linear score."""
        from repro.common.scoring import LinearScore

        fn = LinearScore([w - 0.5 for w in weights])
        rng = np.random.default_rng(2)
        bound = fn.upper_bound(rect)
        for _ in range(20):
            assert fn.score(rect.sample(rng)) <= bound + 1e-9
