"""Unit tests for scoring functions and their region bounds."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.geometry import Rect
from repro.common.scoring import LinearScore, NearestScore


class TestLinearScore:
    def test_score(self):
        fn = LinearScore([1, 2])
        assert fn.score((0.5, 0.25)) == pytest.approx(1.0)

    def test_batch_matches_scalar(self):
        fn = LinearScore([1, -1, 0.5])
        arr = np.random.default_rng(0).random((20, 3))
        batch = fn.score_batch(arr)
        for row, s in zip(arr, batch):
            assert s == pytest.approx(fn.score(row))

    def test_upper_bound_at_corner(self):
        fn = LinearScore([1, -1])
        rect = Rect((0.2, 0.3), (0.6, 0.9))
        assert fn.upper_bound(rect) == pytest.approx(0.6 - 0.3)

    def test_peak(self):
        fn = LinearScore([1, -1])
        assert fn.peak(Rect.unit(2)) == (1.0, 0.0)

    @given(st.lists(st.floats(-2, 2, allow_nan=False), min_size=2, max_size=4))
    def test_upper_bound_dominates_samples(self, weights):
        fn = LinearScore(weights)
        rect = Rect((0.1,) * len(weights), (0.7,) * len(weights))
        rng = np.random.default_rng(0)
        bound = fn.upper_bound(rect)
        for _ in range(25):
            assert fn.score(rect.sample(rng)) <= bound + 1e-9


class TestNearestScore:
    def test_score_is_negative_distance(self):
        fn = NearestScore((0.0, 0.0))
        assert fn.score((3, 4)) == pytest.approx(-5.0)

    def test_l1_variant(self):
        fn = NearestScore((0.0, 0.0), p=1)
        assert fn.score((3, 4)) == pytest.approx(-7.0)

    def test_batch_matches_scalar(self):
        fn = NearestScore((0.5, 0.5, 0.5), p=2)
        arr = np.random.default_rng(1).random((20, 3))
        batch = fn.score_batch(arr)
        for row, s in zip(arr, batch):
            assert s == pytest.approx(fn.score(row))

    def test_upper_bound_zero_when_inside(self):
        fn = NearestScore((0.5, 0.5))
        assert fn.upper_bound(Rect.unit(2)) == 0.0

    def test_upper_bound_outside(self):
        fn = NearestScore((2.0, 0.5))
        assert fn.upper_bound(Rect.unit(2)) == pytest.approx(-1.0)

    def test_peak_is_clamped_query(self):
        fn = NearestScore((2.0, 0.5))
        assert fn.peak(Rect.unit(2)) == (1.0, 0.5)

    def test_unimodal_not_monotone(self):
        fn = NearestScore((0.5,))
        assert fn.score((0.5,)) > fn.score((0.0,))
        assert fn.score((0.5,)) > fn.score((1.0,))
