"""Unit tests for geometric primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.geometry import (
    Frustum,
    Interval,
    Rect,
    contains_batch,
    dominates,
    l1_distance,
    l2_distance,
    linf_distance,
    maxdist,
    mindist,
    mindist_batch,
    minkowski_distance,
)

points = st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=5)


class TestDistances:
    def test_l1(self):
        assert l1_distance((0, 0), (1, 2)) == 3

    def test_l2(self):
        assert l2_distance((0, 0), (3, 4)) == 5

    def test_linf(self):
        assert linf_distance((0, 0), (3, 4)) == 4

    def test_general_p(self):
        assert minkowski_distance((0,), (2,), 3) == pytest.approx(2.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            l1_distance((0, 0), (1, 2, 3))

    @given(points, points)
    def test_metric_symmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = tuple(a[:n]), tuple(b[:n])
        for p in (1, 2, math.inf):
            assert minkowski_distance(a, b, p) == pytest.approx(
                minkowski_distance(b, a, p))

    @given(points)
    def test_identity(self, a):
        assert l2_distance(a, a) == 0.0


class TestDominance:
    def test_strict(self):
        assert dominates((0, 0), (1, 1))

    def test_partial_tie(self):
        assert dominates((0, 1), (1, 1))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_incomparable(self):
        assert not dominates((0, 2), (1, 1))
        assert not dominates((1, 1), (0, 2))

    @given(points, points)
    def test_antisymmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = tuple(a[:n]), tuple(b[:n])
        assert not (dominates(a, b) and dominates(b, a))


class TestRect:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rect((0.5,), (0.2,))
        with pytest.raises(ValueError):
            Rect((0, 0), (1,))

    def test_unit(self):
        r = Rect.unit(3)
        assert r.lo == (0, 0, 0) and r.hi == (1, 1, 1)
        assert r.volume() == 1.0

    def test_contains_half_open(self):
        r = Rect((0, 0), (0.5, 0.5))
        assert r.contains((0, 0))
        assert not r.contains((0.5, 0.2))
        assert r.contains((0.5, 0.2), closed=True)

    def test_split_partitions(self):
        r = Rect.unit(2)
        lo, hi = r.split(0, 0.3)
        assert lo.hi[0] == 0.3 and hi.lo[0] == 0.3
        assert lo.volume() + hi.volume() == pytest.approx(1.0)
        # every point belongs to exactly one half (half-open)
        for p in [(0.1, 0.5), (0.3, 0.5), (0.9, 0.5)]:
            assert lo.contains(p) != hi.contains(p)

    def test_split_out_of_range(self):
        with pytest.raises(ValueError):
            Rect.unit(2).split(0, 1.5)

    def test_intersection(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.25, 0.25), (1, 1))
        ab = a.intersection(b)
        assert ab == Rect((0.25, 0.25), (0.5, 0.5))

    def test_abutting_is_empty(self):
        a = Rect((0, 0), (0.5, 1))
        b = Rect((0.5, 0), (1, 1))
        assert a.intersection(b) is None
        assert a.intersects(b)  # closed boxes share a face

    def test_corner(self):
        r = Rect((0, 0), (1, 2))
        assert r.corner((True, False)) == (1, 0)

    def test_clamp(self):
        r = Rect((0, 0), (1, 1))
        assert r.clamp((2, -1)) == (1, 0)
        assert r.clamp((0.3, 0.7)) == (0.3, 0.7)

    def test_dominated_by(self):
        r = Rect((0.5, 0.5), (1, 1))
        assert r.dominated_by((0.2, 0.2))
        assert not r.dominated_by((0.5, 0.5))  # equals lo, no strict gain
        assert not r.dominated_by((0.6, 0.1))

    def test_mindist_maxdist(self):
        r = Rect((0, 0), (1, 1))
        assert mindist((2, 0), r) == 1.0
        assert maxdist((2, 0), r) == pytest.approx(math.sqrt(5))
        assert mindist((0.5, 0.5), r) == 0.0

    def test_sample_inside(self):
        rng = np.random.default_rng(0)
        r = Rect((0.2, 0.4), (0.3, 0.9))
        for _ in range(20):
            assert r.contains(r.sample(rng), closed=True)


class TestInterval:
    def test_plain(self):
        arc = Interval(0.2, 0.6)
        assert arc.contains(0.2) and arc.contains(0.5)
        assert not arc.contains(0.6) and not arc.contains(0.9)
        assert arc.length() == pytest.approx(0.4)

    def test_wrapping(self):
        arc = Interval(0.8, 0.1)
        assert arc.contains(0.9) and arc.contains(0.05)
        assert not arc.contains(0.5)
        assert arc.length() == pytest.approx(0.3)

    def test_full_ring(self):
        arc = Interval(0.3, 0.3)
        assert arc.contains(0.0) and arc.contains(0.99)
        assert arc.length() == 1.0

    def test_intersection_plain(self):
        a, b = Interval(0.1, 0.5), Interval(0.3, 0.8)
        ab = a.intersection(b)
        assert ab is not None
        assert ab.start == pytest.approx(0.3) and ab.end == pytest.approx(0.5)

    def test_intersection_disjoint(self):
        assert Interval(0.1, 0.2).intersection(Interval(0.5, 0.6)) is None

    def test_intersection_with_wrap(self):
        a, b = Interval(0.8, 0.2), Interval(0.9, 0.95)
        ab = a.intersection(b)
        assert ab is not None
        assert ab.start == pytest.approx(0.9) and ab.end == pytest.approx(0.95)

    def test_intersection_full(self):
        full = Interval(0.0, 0.0)
        assert full.intersection(Interval(0.2, 0.4)) == Interval(0.2, 0.4)


class TestFrustum:
    def frustum(self):
        # 2-d trapezoid: base = whole lower domain edge, top = zone face.
        base = Rect((0.0, 0.0), (1.0, 0.0))
        top = Rect((0.25, 0.5), (0.75, 0.5))
        return Frustum(axis=1, base=base, top=top)

    def test_contains_base_and_top(self):
        f = self.frustum()
        assert f.contains((0.5, 0.0))
        assert f.contains((0.5, 0.5))
        assert f.contains((0.01, 0.0))
        assert not f.contains((0.01, 0.5))

    def test_interpolated_side(self):
        f = self.frustum()
        # at t = 0.5 the cross-section is [0.125, 0.875]
        assert f.contains((0.13, 0.25))
        assert not f.contains((0.12, 0.25))

    def test_outside_axis_range(self):
        f = self.frustum()
        assert not f.contains((0.5, 0.6))

    def test_bounding_box(self):
        box = self.frustum().bounding_box()
        assert box == Rect((0.0, 0.0), (1.0, 0.5))


class TestBatchKernels:
    """The arena's array twins reproduce the scalar predicates exactly."""

    def _boxes(self, seed, m=40, d=3):
        rng = np.random.default_rng(seed)
        corners = rng.random((2, m, d))
        lo, hi = corners.min(axis=0), corners.max(axis=0)
        return rng.random((m, d)), lo, hi

    def test_contains_batch_matches_scalar(self):
        points_, lo, hi = self._boxes(3)
        for closed in (False, True):
            got = contains_batch(points_, lo, hi, closed=closed)
            for i in range(len(points_)):
                rect = Rect(tuple(lo[i]), tuple(hi[i]))
                assert got[i] == rect.contains(tuple(points_[i]),
                                               closed=closed)

    def test_contains_batch_broadcasts_one_box(self):
        points_, lo, hi = self._boxes(5)
        rect = Rect(tuple(lo[0]), tuple(hi[0]))
        got = contains_batch(points_, lo[0], hi[0])
        for i in range(len(points_)):
            assert got[i] == rect.contains(tuple(points_[i]))

    @pytest.mark.parametrize("p", (1, 2, math.inf))
    def test_mindist_batch_bit_identical(self, p):
        points_, lo, hi = self._boxes(7)
        query = tuple(points_[0])
        got = mindist_batch(query, lo, hi, p=p)
        for i in range(len(lo)):
            rect = Rect(tuple(lo[i]), tuple(hi[i]))
            assert got[i] == mindist(query, rect, p)

    @given(st.integers(0, 50))
    def test_mindist_batch_property(self, seed):
        points_, lo, hi = self._boxes(seed, m=12, d=2)
        query = tuple(points_[0])
        got = mindist_batch(query, lo, hi)
        for i in range(len(lo)):
            assert got[i] == mindist(query, Rect(tuple(lo[i]),
                                                 tuple(hi[i])))
