"""Integration tests for the RIPPLE templates over MIDAS."""

import numpy as np
import pytest

from repro import (
    LinearScore,
    MidasOverlay,
    SLOW,
    TopKHandler,
    run_fast,
    run_ripple,
    run_slow,
    topk_reference,
)
from repro.net.context import DuplicateVisitError


@pytest.fixture(scope="module")
def network():
    rng = np.random.default_rng(0)
    data = rng.random((600, 3)) * 0.999
    overlay = MidasOverlay(3, size=1, seed=1, join_policy="data")
    overlay.load(data)
    overlay.grow_to(60)
    return overlay, data


def scores(result):
    return [s for s, _ in result.answer]


class TestCorrectness:
    def test_fast_matches_reference(self, network):
        overlay, data = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 5)
        ref = topk_reference(data, handler.fn, 5)
        res = run_fast(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        assert scores(res) == [s for s, _ in ref]

    def test_slow_matches_reference(self, network):
        overlay, data = network
        handler = TopKHandler(LinearScore([1, -1, 0.5]), 7)
        ref = topk_reference(data, handler.fn, 7)
        res = run_slow(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        assert scores(res) == [s for s, _ in ref]

    def test_every_r_matches_reference(self, network):
        overlay, data = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 3)
        ref = [s for s, _ in topk_reference(data, handler.fn, 3)]
        for r in range(0, 8):
            res = run_ripple(overlay.random_peer(), handler, r,
                             restriction=overlay.domain())
            assert scores(res) == ref, f"r={r}"

    def test_every_initiator_agrees(self, network):
        overlay, data = network
        handler = TopKHandler(LinearScore([2, 1, 1]), 4)
        ref = [s for s, _ in topk_reference(data, handler.fn, 4)]
        for peer in list(overlay.peers())[::7]:
            res = run_fast(peer, handler, restriction=overlay.domain())
            assert scores(res) == ref

    def test_single_peer_network(self):
        overlay = MidasOverlay(2, size=1)
        overlay.load(np.array([[0.1, 0.2], [0.3, 0.4]]))
        handler = TopKHandler(LinearScore([1, 1]), 1)
        res = run_fast(overlay.peers()[0], handler,
                       restriction=overlay.domain())
        assert scores(res) == [pytest.approx(0.7)]
        assert res.stats.latency == 0
        assert res.stats.processed == 1

    def test_k_larger_than_dataset(self):
        overlay = MidasOverlay(2, size=8, seed=3)
        overlay.load(np.array([[0.1, 0.2], [0.3, 0.4]]))
        handler = TopKHandler(LinearScore([1, 1]), 10)
        res = run_slow(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        assert len(res.answer) == 2

    def test_negative_r_rejected(self, network):
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 2)
        with pytest.raises(ValueError):
            run_ripple(overlay.random_peer(), handler, -1,
                       restriction=overlay.domain())


class TestCostModel:
    def test_fast_latency_bounded_by_depth(self, network):
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 5)
        res = run_fast(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        assert res.stats.latency <= overlay.tree.max_depth()

    def test_slow_latency_equals_processed_minus_one_when_unpruned(self):
        """With a query that never prunes, slow touches every peer
        sequentially: latency = n - 1 (Lemma 2's behaviour)."""
        overlay = MidasOverlay(2, size=32, seed=4)
        overlay.load(np.random.default_rng(0).random((64, 2)) * 0.999)
        handler = TopKHandler(LinearScore([1, 1]), 10 ** 6)
        res = run_slow(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        assert res.stats.processed == 32
        assert res.stats.latency == 31

    def test_fast_visits_all_peers_when_unpruned(self):
        overlay = MidasOverlay(2, size=32, seed=5)
        handler = TopKHandler(LinearScore([1, 1]), 5)
        res = run_fast(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        # empty stores: certificate never fills, no pruning possible
        assert res.stats.processed == 32

    def test_latency_monotone_in_r_on_average(self, network):
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 5)
        rng = np.random.default_rng(2)
        lat = {}
        for r in (0, 3, SLOW):
            samples = [run_ripple(overlay.random_peer(rng), handler, r,
                                  restriction=overlay.domain()).stats.latency
                       for _ in range(10)]
            lat[r] = np.mean(samples)
        assert lat[0] <= lat[3] <= lat[SLOW]

    def test_messages_accounted(self, network):
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 5)
        res = run_slow(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        stats = res.stats
        assert stats.forward_messages >= stats.processed - 1
        assert stats.response_messages > 0
        assert stats.total_messages == (stats.forward_messages
                                        + stats.response_messages
                                        + stats.answer_messages)

    def test_fast_sends_no_state_responses(self, network):
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 5)
        res = run_fast(overlay.random_peer(), handler,
                       restriction=overlay.domain())
        assert res.stats.response_messages == 0


class TestVisitDiscipline:
    def test_midas_never_double_visits(self, network):
        """Strict mode passes over MIDAS: link regions partition exactly,
        so a DuplicateVisitError would reveal a broken partition."""
        overlay, _ = network
        handler = TopKHandler(LinearScore([1, 1, 1]), 5)
        for r in (0, 2, SLOW):
            run_ripple(overlay.random_peer(), handler, r,
                       restriction=overlay.domain(), strict=True)

    def test_duplicate_visit_raises_when_manufactured(self):
        from repro.net.context import QueryContext

        ctx = QueryContext(strict=True)
        assert ctx.begin_processing(1)
        with pytest.raises(DuplicateVisitError):
            ctx.begin_processing(1)

    def test_duplicate_visit_tolerated_when_lenient(self):
        from repro.net.context import QueryContext

        ctx = QueryContext(strict=False)
        assert ctx.begin_processing(1)
        assert not ctx.begin_processing(1)

    def test_revisitable_peers_do_not_raise(self):
        from repro.net.context import QueryContext

        ctx = QueryContext(strict=True)
        ctx.begin_processing(1)
        ctx.revisitable.add(1)
        assert not ctx.begin_processing(1)
