"""Property-based tests on the RIPPLE framework invariants.

These fuzz random networks, datasets, scoring functions and ripple
parameters, and assert the structural properties the paper's correctness
arguments rest on: exact answers, single visits, message accounting, and
the latency ordering of the r spectrum.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (LinearScore, MidasOverlay, NearestScore, run_ripple)
from repro.queries.skyline import SkylineHandler, skyline_reference
from repro.queries.topk import TopKHandler, topk_reference

network_params = st.tuples(
    st.integers(0, 10 ** 6),       # seed
    st.integers(2, 4),             # dims
    st.integers(4, 40),            # peers
    st.integers(20, 300),          # tuples
)

relaxed = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def build(seed, dims, peers, tuples):
    rng = np.random.default_rng(seed)
    data = rng.random((tuples, dims)) * 0.999
    overlay = MidasOverlay(dims, size=1, seed=seed, join_policy="data")
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay, data, rng


class TestTopKProperties:
    @given(network_params, st.integers(1, 12), st.integers(0, 6),
           st.lists(st.floats(-1, 1), min_size=2, max_size=4))
    @relaxed
    def test_exact_answers_any_configuration(self, params, k, r, weights):
        overlay, data, rng = build(*params)
        weights = (weights + [1.0] * overlay.dims)[: overlay.dims]
        fn = LinearScore(weights)
        handler = TopKHandler(fn, k)
        reference = [s for s, _ in topk_reference(data, fn, k)]
        result = run_ripple(overlay.random_peer(rng), handler, r,
                            restriction=overlay.domain(), strict=True)
        assert [s for s, _ in result.answer] == pytest.approx(reference)

    @given(network_params, st.integers(1, 5))
    @relaxed
    def test_nearest_neighbor_queries(self, params, k):
        overlay, data, rng = build(*params)
        fn = NearestScore(tuple(rng.random(overlay.dims)))
        handler = TopKHandler(fn, k)
        reference = [s for s, _ in topk_reference(data, fn, k)]
        result = run_ripple(overlay.random_peer(rng), handler, 2,
                            restriction=overlay.domain())
        assert [s for s, _ in result.answer] == pytest.approx(reference)

    @given(network_params)
    @relaxed
    def test_message_accounting_invariants(self, params):
        overlay, data, rng = build(*params)
        handler = TopKHandler(LinearScore([1.0] * overlay.dims), 3)
        result = run_ripple(overlay.random_peer(rng), handler, 3,
                            restriction=overlay.domain())
        stats = result.stats
        # every non-initiator processed peer was reached by >= 1 forward
        assert stats.forward_messages >= stats.processed - 1
        assert stats.processed <= len(overlay)
        assert stats.latency >= 0
        assert stats.total_messages == (stats.forward_messages
                                        + stats.response_messages
                                        + stats.answer_messages)

    @given(network_params)
    @relaxed
    def test_latency_structure_of_the_extremes(self, params):
        """fast's latency is bounded by the tree depth (Lemma 1's regime);
        slow's latency equals its sequential forward count exactly."""
        overlay, data, rng = build(*params)
        handler = TopKHandler(LinearScore([1.0] * overlay.dims), 3)
        initiator = overlay.random_peer(rng)
        fast = run_ripple(initiator, handler, 0,
                          restriction=overlay.domain())
        slow = run_ripple(initiator, handler, 10 ** 9,
                          restriction=overlay.domain())
        assert fast.stats.latency <= overlay.tree.max_depth()
        assert slow.stats.latency == slow.stats.forward_messages
        assert slow.stats.forward_messages == slow.stats.processed - 1


class TestSkylineProperties:
    @given(network_params, st.integers(0, 5))
    @relaxed
    def test_exact_skylines(self, params, r):
        overlay, data, rng = build(*params)
        handler = SkylineHandler(overlay.dims)
        result = run_ripple(overlay.random_peer(rng), handler, r,
                            restriction=overlay.domain(), strict=True)
        assert result.answer == skyline_reference(data)

    @given(network_params)
    @relaxed
    def test_answer_is_antichain_covering_data(self, params):
        from repro.common.geometry import dominates

        overlay, data, rng = build(*params)
        handler = SkylineHandler(overlay.dims)
        result = run_ripple(overlay.random_peer(rng), handler, 1,
                            restriction=overlay.domain())
        sky = result.answer
        for a in sky:
            assert not any(dominates(b, a) for b in sky)
        sky_set = set(sky)
        for row in data[:: max(1, len(data) // 40)]:
            point = tuple(row)
            assert point in sky_set or any(
                dominates(s, point) or s == point for s in sky)
