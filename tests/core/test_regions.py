"""Unit tests for the region abstraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.geometry import Frustum, Interval, Rect
from repro.core.regions import (
    ArcRegion,
    FrustumIntersection,
    FrustumRegion,
    RectRegion,
    domain_region,
)


class TestRectRegion:
    def test_intersect_overlapping(self):
        a = RectRegion(Rect((0, 0), (0.6, 0.6)))
        b = RectRegion(Rect((0.4, 0.4), (1, 1)))
        ab = a.intersect(b)
        assert ab.rect == Rect((0.4, 0.4), (0.6, 0.6))

    def test_intersect_disjoint(self):
        a = RectRegion(Rect((0, 0), (0.4, 1)))
        b = RectRegion(Rect((0.6, 0), (1, 1)))
        assert a.intersect(b) is None

    def test_cover_is_self(self):
        region = RectRegion(Rect.unit(3))
        assert region.cover() == (Rect.unit(3),)

    def test_contains_half_open(self):
        region = RectRegion(Rect((0, 0), (0.5, 0.5)))
        assert region.contains((0.0, 0.0))
        assert not region.contains((0.5, 0.0))

    def test_domain_region(self):
        region = domain_region(4)
        assert region.rect == Rect.unit(4)
        assert region.exact


class TestArcRegion:
    def test_from_plain_interval(self):
        region = ArcRegion.from_interval(Interval(0.2, 0.6))
        assert region.pieces == ((0.2, 0.6),)

    def test_from_wrapping_interval(self):
        region = ArcRegion.from_interval(Interval(0.8, 0.1))
        assert region.pieces == ((0.8, 1.0), (0.0, 0.1))

    def test_full_ring(self):
        region = ArcRegion.from_interval(Interval(0.3, 0.3))
        assert region.length() == pytest.approx(1.0)

    def test_intersect_two_runs(self):
        """Two wrapping arcs can overlap in two disjoint runs — the case
        single-arc representations get wrong."""
        a = ArcRegion.from_interval(Interval(0.9, 0.5))
        b = ArcRegion.from_interval(Interval(0.4, 0.95))
        ab = a.intersect(b)
        assert ab.pieces == ((0.0, 0.5 - 0.1),) or len(ab.pieces) == 2
        assert ab.length() == pytest.approx(0.15)

    def test_intersect_with_unit_rect(self):
        region = ArcRegion.from_interval(Interval(0.2, 0.6))
        full = RectRegion(Rect((0.0,), (1.0,)))
        assert region.intersect(full).length() == pytest.approx(0.4)

    def test_contains(self):
        region = ArcRegion.from_interval(Interval(0.8, 0.1))
        assert region.contains((0.85,))
        assert region.contains((0.05,))
        assert not region.contains((0.5,))

    def test_cover_matches_pieces(self):
        region = ArcRegion.from_interval(Interval(0.8, 0.1))
        assert len(region.cover()) == 2

    @given(st.floats(0, 0.999), st.floats(0, 0.999),
           st.floats(0, 0.999), st.floats(0, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_intersection_membership(self, s1, e1, s2, e2):
        a = ArcRegion.from_interval(Interval(s1, e1))
        b = ArcRegion.from_interval(Interval(s2, e2))
        ab = a.intersect(b)
        for probe in (0.01, 0.25, 0.49, 0.73, 0.97):
            expected = a.contains((probe,)) and b.contains((probe,))
            got = ab is not None and ab.contains((probe,))
            assert got == expected


class TestFrustumRegions:
    def frustum(self):
        base = Rect((0.0, 0.0), (1.0, 0.0))
        top = Rect((0.25, 0.5), (0.75, 0.5))
        return Frustum(axis=1, base=base, top=top)

    def test_not_exact(self):
        assert not FrustumRegion(self.frustum()).exact

    def test_cover_is_bounding_box(self):
        region = FrustumRegion(self.frustum())
        assert region.cover() == (Rect((0.0, 0.0), (1.0, 0.5)),)

    def test_intersect_rect_keeps_membership(self):
        region = FrustumRegion(self.frustum())
        restricted = region.intersect(RectRegion(Rect((0, 0), (0.5, 0.25))))
        assert isinstance(restricted, FrustumIntersection)
        assert restricted.contains((0.2, 0.1))
        assert not restricted.contains((0.2, 0.4))   # outside the box
        assert not restricted.contains((0.01, 0.24))  # outside the frustum

    def test_intersect_containing_rect_returns_self(self):
        region = FrustumRegion(self.frustum())
        assert region.intersect(RectRegion(Rect.unit(2))) is region

    def test_intersect_disjoint_rect(self):
        region = FrustumRegion(self.frustum())
        assert region.intersect(
            RectRegion(Rect((0, 0.8), (1, 1)))) is None

    def test_chain_intersection(self):
        region = FrustumRegion(self.frustum())
        first = region.intersect(RectRegion(Rect((0, 0), (0.6, 0.5))))
        second = first.intersect(region)
        assert isinstance(second, FrustumIntersection)
        assert len(second.frustums) == 2
