"""The work-stack evaluator on overlays deeper than the interpreter stack.

A sequential (``r = SLOW``) pass over a chain-shaped overlay recurses —
in the textbook formulation — to a depth equal to the network size.  The
framework must survive that on a *lowered* interpreter recursion limit,
without touching ``sys.setrecursionlimit`` itself (the old
module-import-time mutation was a process-wide side effect).
"""

import sys

import numpy as np
import pytest

from repro.common.geometry import Rect
from repro.common.store import LocalStore
from repro.core.framework import SLOW, Link, run_ripple, run_slow
from repro.core.regions import RectRegion
from repro.queries.rangeq import RangeHandler


class ChainPeer:
    """Peer i owns the 1-d slice [i/n, (i+1)/n) and links only onward."""

    def __init__(self, index: int, n: int):
        self.peer_id = index
        self.index = index
        self.n = n
        self.store = LocalStore(1)
        self.store.insert(((index + 0.5) / n,))
        self.next: "ChainPeer | None" = None

    def links(self):
        if self.next is None:
            return []
        lo = (self.index + 1) / self.n
        return [Link(self.next, RectRegion(Rect((lo,), (1.0,))))]


def build_chain(n):
    peers = [ChainPeer(i, n) for i in range(n)]
    for a, b in zip(peers, peers[1:]):
        a.next = b
    return peers


def test_query_never_touches_recursion_limit():
    # The evaluator used to raise the global recursion limit on the fly;
    # with the work stack a query must leave it exactly where it was.
    peers = build_chain(50)
    handler = RangeHandler(Rect((0.0,), (1.0,)))
    domain = RectRegion(Rect((0.0,), (1.0,)))
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(limit + 123)
    try:
        run_slow(peers[0], handler, restriction=domain)
        assert sys.getrecursionlimit() == limit + 123
    finally:
        sys.setrecursionlimit(limit)


def test_slow_on_deep_chain_under_lowered_recursion_limit():
    n = 3_000
    peers = build_chain(n)
    handler = RangeHandler(Rect((0.0,), (1.0,)))
    domain = RectRegion(Rect((0.0,), (1.0,)))
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(1_000)
    try:
        result = run_slow(peers[0], handler, restriction=domain)
    finally:
        sys.setrecursionlimit(limit)
    assert sys.getrecursionlimit() == limit
    assert len(result.answer) == n
    assert result.stats.processed == n
    # Sequential chain traversal: n-1 forwards, each waited on in turn.
    assert result.stats.forward_messages == n - 1
    assert result.stats.latency == n - 1


@pytest.mark.parametrize("r", (0, 3, SLOW))
def test_chain_answers_identical_across_r(r):
    n = 200
    peers = build_chain(n)
    handler = RangeHandler(Rect((0.25,), (0.75,)))
    domain = RectRegion(Rect((0.0,), (1.0,)))
    result = run_ripple(peers[0], handler, r, restriction=domain)
    expected = sorted(((i + 0.5) / n,) for i in range(n)
                      if 0.25 <= (i + 0.5) / n < 0.75)
    assert result.answer == expected


def test_deep_chain_matches_shallow_reference():
    """The work-stack result equals a per-peer reference computation."""
    n = 1_200
    peers = build_chain(n)
    handler = RangeHandler(Rect((0.0,), (0.5,)))
    domain = RectRegion(Rect((0.0,), (1.0,)))
    result = run_slow(peers[0], handler, restriction=domain)
    data = np.array([((i + 0.5) / n,) for i in range(n)])
    expected = sorted(tuple(row) for row in data[data[:, 0] < 0.5])
    assert result.answer == expected
