"""Lemmas 1-3: the analytical latency bounds hold exactly in simulation.

These tests run never-pruning queries (``k`` larger than any dataset, over
*empty* stores) on perfectly balanced MIDAS overlays, so every peer is
visited and the measured critical-path latency must equal the worst-case
formulas of Section 3.2.
"""

import pytest

from repro import LinearScore, MidasOverlay, SLOW, TopKHandler, run_ripple
from repro.core.analysis import (
    fast_latency,
    ripple_latency,
    ripple_latency_closed_form,
    slow_latency,
)


def measured_latency(depth: int, r: int) -> int:
    overlay = MidasOverlay.complete(2, depth, seed=0)
    handler = TopKHandler(LinearScore([1, 1]), 10 ** 9)
    res = run_ripple(overlay.peers()[0], handler, r,
                     restriction=overlay.domain())
    assert res.stats.processed == 2 ** depth
    return res.stats.latency


class TestFormulas:
    def test_fast_is_depth(self):
        assert fast_latency(7) == 7
        assert fast_latency(7, delta=3) == 4

    def test_slow_is_exponential(self):
        assert slow_latency(5) == 31
        assert slow_latency(5, delta=5) == 0

    def test_ripple_extremes(self):
        for depth in range(0, 8):
            assert ripple_latency(depth, 0) == fast_latency(depth)
            assert ripple_latency(depth, depth + 1) == slow_latency(depth)

    def test_ripple_monotone_in_r(self):
        for depth in (4, 6, 9):
            values = [ripple_latency(depth, r) for r in range(depth + 2)]
            assert values == sorted(values)

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_closed_forms_match_recurrence(self, r):
        for depth in range(r, 12):
            assert ripple_latency(depth, r) == pytest.approx(
                ripple_latency_closed_form(depth, r))

    def test_polylog_conjecture_scaling(self):
        """L_r grows like Delta^(r+1): the ratio to Delta^(r+1) stabilizes."""
        for r in (1, 2):
            hi = ripple_latency(40, r) / 40 ** (r + 1)
            lo = ripple_latency(20, r) / 20 ** (r + 1)
            assert hi / lo < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fast_latency(3, delta=4)
        with pytest.raises(ValueError):
            ripple_latency(3, -1)
        with pytest.raises(ValueError):
            ripple_latency_closed_form(3, 4)


class TestSimulatorMatchesLemmas:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 5])
    def test_lemma1_fast(self, depth):
        assert measured_latency(depth, 0) == fast_latency(depth)

    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 5, 6])
    def test_lemma2_slow(self, depth):
        assert measured_latency(depth, SLOW) == slow_latency(depth)

    @pytest.mark.parametrize("depth,r", [(3, 1), (4, 1), (5, 1),
                                         (4, 2), (5, 2), (5, 3)])
    def test_lemma3_ripple(self, depth, r):
        assert measured_latency(depth, r) == ripple_latency(depth, r)
