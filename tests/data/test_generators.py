"""Unit tests for the dataset generators."""

import numpy as np
import pytest

from repro.data.mirflickr import MIRFLICKR_DIMS, mirflickr_dataset
from repro.data.nba import NBA_ATTRIBUTES, nba_dataset, to_minimization
from repro.data.synth import anticorrelated, correlated, synth_clustered, uniform


def rng():
    return np.random.default_rng(7)


class TestNBA:
    def test_shape_and_range(self):
        data = nba_dataset(rng(), 5000)
        assert data.shape == (5000, len(NBA_ATTRIBUTES))
        assert data.min() >= 0.0 and data.max() < 1.0

    def test_deterministic(self):
        assert np.array_equal(nba_dataset(np.random.default_rng(3), 100),
                              nba_dataset(np.random.default_rng(3), 100))

    def test_positive_cross_correlation(self):
        """The latent quality factor couples the attributes."""
        data = nba_dataset(rng(), 20000)
        corr = np.corrcoef(data[:, 0], data[:, 5])[0, 1]
        assert corr > 0.2

    def test_heavy_tail(self):
        """Stars exist: the top score is far above the median."""
        data = nba_dataset(rng(), 20000)
        sums = data.sum(axis=1)
        assert sums.max() > 2.5 * np.median(sums)

    def test_to_minimization_flips(self):
        data = nba_dataset(rng(), 100)
        flipped = to_minimization(data)
        assert np.allclose(flipped, np.clip(1.0 - data, 0, 1 - 1e-9))
        assert flipped.max() < 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            nba_dataset(rng(), 0)


class TestMirflickr:
    def test_shape_and_range(self):
        data = mirflickr_dataset(rng(), 3000)
        assert data.shape == (3000, MIRFLICKR_DIMS)
        assert data.min() >= 0.0 and data.max() < 1.0

    def test_rows_bounded_like_histograms(self):
        data = mirflickr_dataset(rng(), 3000)
        assert (data.sum(axis=1) <= 1.0 + 1e-9).all()

    def test_clustered(self):
        """Styles create structure: near neighbors are much closer than
        random pairs."""
        data = mirflickr_dataset(rng(), 2000, styles=10)
        sample = data[:200]
        d = np.abs(sample[:, None, :] - sample[None, :, :]).sum(axis=2)
        np.fill_diagonal(d, np.inf)
        assert d.min(axis=1).mean() < 0.3 * d[np.isfinite(d)].mean()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            mirflickr_dataset(rng(), -1)


class TestSynth:
    def test_shape_and_range(self):
        data = synth_clustered(4000, 5, clusters=100, rng=rng())
        assert data.shape == (4000, 5)
        assert data.min() >= 0.0 and data.max() < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            synth_clustered(0, 3, rng=rng())

    def test_zipf_skew_concentrates(self):
        """Higher skew concentrates records in fewer clusters."""
        flat = synth_clustered(5000, 2, clusters=50, skew=0.0, rng=rng())
        skewed = synth_clustered(5000, 2, clusters=50, skew=2.0, rng=rng())

        def occupancy(data):
            hist, *_ = np.histogram2d(data[:, 0], data[:, 1], bins=10)
            return (hist > 0).sum()

        assert occupancy(skewed) <= occupancy(flat)

    def test_uniform(self):
        data = uniform(2000, 3, rng=rng())
        assert abs(data.mean() - 0.5) < 0.05

    def test_correlated_has_small_skyline(self):
        from repro.queries.skyline import skyline_of_array

        corr = correlated(2000, 3, rng=rng())
        anti = anticorrelated(2000, 3, rng=rng())
        assert len(skyline_of_array(corr)) < len(skyline_of_array(anti))
