"""Unit and invariant tests for the MIDAS overlay."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.geometry import Rect
from repro.overlays.midas import MidasOverlay
from repro.overlays.patterns import matches_any_pattern


def zones_partition_domain(overlay):
    total = sum(peer.zone.volume() for peer in overlay.peers())
    assert total == pytest.approx(1.0)
    rng = np.random.default_rng(7)
    for _ in range(25):
        point = tuple(rng.random(overlay.dims))
        owners = [p for p in overlay.peers() if p.zone.contains(point)]
        assert len(owners) == 1
        assert overlay.locate(point) is owners[0]


class TestGrowth:
    def test_initial_single_peer(self):
        overlay = MidasOverlay(2)
        assert len(overlay) == 1
        assert overlay.peers()[0].zone == Rect.unit(2)

    def test_grow_to(self):
        overlay = MidasOverlay(2, size=33, seed=1)
        assert len(overlay) == 33
        zones_partition_domain(overlay)

    def test_expected_logarithmic_depth(self):
        overlay = MidasOverlay(3, size=256, seed=2)
        # E[depth] is O(log n); allow generous slack over log2(256) = 8.
        assert overlay.tree.max_depth() <= 4 * 8

    def test_anchor_inside_zone(self):
        overlay = MidasOverlay(2, size=64, seed=3)
        for peer in overlay.peers():
            assert peer.zone.contains(peer.anchor, closed=True)


class TestDepartures:
    def test_leave_sibling_leaf(self):
        overlay = MidasOverlay(2, size=2, seed=0)
        overlay.leave(overlay.peers()[1])
        assert len(overlay) == 1
        assert overlay.peers()[0].zone == Rect.unit(2)

    def test_cannot_remove_last(self):
        overlay = MidasOverlay(2)
        with pytest.raises(ValueError):
            overlay.leave()

    def test_shrink_preserves_partition(self):
        overlay = MidasOverlay(2, size=64, seed=4)
        overlay.shrink_to(17)
        assert len(overlay) == 17
        zones_partition_domain(overlay)

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=10, deadline=None)
    def test_churn_preserves_partition_and_data(self, seed):
        rng = np.random.default_rng(seed)
        overlay = MidasOverlay(2, size=16, seed=seed)
        data = rng.random((200, 2)) * 0.999
        overlay.load(data)
        for _ in range(30):
            if len(overlay) > 1 and rng.random() < 0.5:
                overlay.leave()
            else:
                overlay.join()
        zones_partition_domain(overlay)
        assert overlay.total_tuples() == 200
        # every tuple sits at the peer owning its key
        for peer in overlay.peers():
            for point in peer.store.iter_points():
                assert peer.zone.contains(point)


class TestLinks:
    def test_link_count_equals_depth(self):
        overlay = MidasOverlay(2, size=32, seed=5)
        for peer in overlay.peers():
            assert len(peer.links()) == peer.depth

    def test_link_regions_partition_domain(self):
        overlay = MidasOverlay(3, size=48, seed=6)
        for peer in overlay.peers():
            volume = peer.zone.volume()
            volume += sum(link.region.rect.volume() for link in peer.links())
            assert volume == pytest.approx(1.0)

    def test_link_targets_inside_their_region(self):
        overlay = MidasOverlay(2, size=48, seed=7)
        for peer in overlay.peers():
            for link in peer.links():
                assert link.region.rect.contains_rect(link.peer.zone)

    def test_links_cached_until_churn(self):
        overlay = MidasOverlay(2, size=16, seed=8)
        peer = overlay.peers()[0]
        first = peer.links()
        assert peer.links() is first
        overlay.join()
        assert peer.links() is not first

    def test_max_links(self):
        overlay = MidasOverlay(2, size=32, seed=9)
        assert overlay.max_links() == overlay.tree.max_depth()


class TestBoundaryPolicy:
    def test_boundary_links_prefer_pattern_peers(self):
        overlay = MidasOverlay(2, size=128, seed=10, link_policy="boundary")
        preferred = 0
        total = 0
        for peer in overlay.peers():
            for link in peer.links():
                total += 1
                if matches_any_pattern(link.peer.path, overlay.dims):
                    preferred += 1
        random_overlay = MidasOverlay(2, size=128, seed=10,
                                      link_policy="random")
        random_preferred = sum(
            matches_any_pattern(link.peer.path, 2)
            for peer in random_overlay.peers() for link in peer.links())
        assert preferred > random_preferred

    def test_boundary_target_matches_when_subtree_allows(self):
        overlay = MidasOverlay(2, size=64, seed=11, link_policy="boundary")
        for peer in overlay.peers():
            for subtree, link in zip(
                    overlay.tree.sibling_subtrees(peer.leaf), peer.links()):
                if matches_any_pattern(subtree.path, 2):
                    assert matches_any_pattern(link.peer.path, 2)


class TestData:
    def test_load_places_tuples_at_owners(self):
        overlay = MidasOverlay(2, size=16, seed=12)
        data = np.random.default_rng(0).random((100, 2)) * 0.999
        overlay.load(data)
        assert overlay.total_tuples() == 100
        for peer in overlay.peers():
            for point in peer.store.iter_points():
                assert peer.zone.contains(point)

    def test_data_join_policy_balances_load(self):
        rng = np.random.default_rng(1)
        # data concentrated in one corner
        data = rng.random((2000, 2)) * 0.1
        uniform = MidasOverlay(2, size=1, seed=13, join_policy="uniform")
        uniform.load(data)
        uniform.grow_to(64)
        adaptive = MidasOverlay(2, size=1, seed=13, join_policy="data")
        adaptive.load(data)
        adaptive.grow_to(64)
        assert max(len(p.store) for p in adaptive.peers()) < \
            max(len(p.store) for p in uniform.peers())

    def test_median_split_rule(self):
        overlay = MidasOverlay(1, size=1, seed=14, join_policy="data",
                               split_rule="median")
        overlay.load(np.array([[0.1], [0.2], [0.3], [0.9]]))
        overlay.grow_to(2)
        sizes = sorted(len(p.store) for p in overlay.peers())
        assert sizes == [2, 2]


class TestComplete:
    def test_complete_tree(self):
        overlay = MidasOverlay.complete(2, 4, seed=0)
        assert len(overlay) == 16
        assert overlay.tree.max_depth() == 4
        assert all(peer.depth == 4 for peer in overlay.peers())
