"""Replica placement and the ReplicaDirectory lifecycle.

Placement must follow each overlay's structural discipline (MIDAS sibling
buddies, Chord successor lists, CAN face neighbors, skip-graph towers),
never replicate a peer onto itself, and stay consistent through churn
(epoch-driven reinstall) and data mutation (version-driven re-snapshot).
Promotion must hand out a PeerLike stand-in that impersonates the dead
owner.
"""

import numpy as np
import pytest

from repro import PromotedPeer, ReplicaDirectory, physical_id
from repro.common.store import LocalStore, Replica

from tests.netlib import OVERLAYS, build_network


def build(kind, seed=3, peers=24, tuples=200):
    return build_network(kind, seed, peers=peers, tuples=tuples)


class TestReplicaTargets:
    @pytest.mark.parametrize("kind", OVERLAYS)
    @pytest.mark.parametrize("count", (1, 2, 3))
    def test_targets_distinct_and_never_self(self, kind, count):
        overlay = build(kind)
        for peer in overlay.peers():
            targets = overlay.replica_targets(peer, count)
            ids = [t.peer_id for t in targets]
            assert peer.peer_id not in ids
            assert len(ids) == len(set(ids))
            assert len(targets) <= count

    @pytest.mark.parametrize("kind", OVERLAYS)
    def test_enough_targets_on_large_networks(self, kind):
        overlay = build(kind)
        for peer in overlay.peers():
            assert len(overlay.replica_targets(peer, 2)) == 2

    @pytest.mark.parametrize("kind", OVERLAYS)
    def test_zero_count_is_empty(self, kind):
        overlay = build(kind)
        peer = overlay.peers()[0]
        assert overlay.replica_targets(peer, 0) == []

    def test_chord_uses_successor_list(self):
        overlay = build("chord")
        peers = list(overlay.peers())  # sorted by ring_id
        for index, peer in enumerate(peers):
            targets = overlay.replica_targets(peer, 2)
            assert targets[0] is peers[(index + 1) % len(peers)]
            assert targets[1] is peers[(index + 2) % len(peers)]

    def test_midas_prefers_nearest_sibling_subtree(self):
        overlay = build("midas")
        for peer in overlay.peers():
            target = overlay.replica_targets(peer, 1)[0]
            nearest = overlay.tree.sibling_subtrees(peer.leaf)[-1]
            nearest_ids = {leaf.payload.peer_id
                           for leaf in overlay.tree.iter_leaves(nearest)}
            assert target.peer_id in nearest_ids

    def test_can_targets_are_neighbors(self):
        overlay = build("can")
        for peer in overlay.peers():
            neighbor_ids = {adj.peer.peer_id for adj in peer.neighbors()}
            for target in overlay.replica_targets(peer, 1):
                assert target.peer_id in neighbor_ids


class TestReplica:
    def test_snapshot_and_refresh(self):
        owner = LocalStore(2, [(0.1, 0.2), (0.3, 0.4)])
        replica = Replica("w", owner)
        assert len(replica.store) == 2
        assert replica.version == owner.version
        assert not replica.refresh(owner)  # up to date: no copy
        owner.insert((0.5, 0.6))
        assert replica.refresh(owner)
        assert len(replica.store) == 3
        np.testing.assert_array_equal(replica.store.array, owner.array)

    def test_replica_store_is_private(self):
        owner = LocalStore(2, [(0.1, 0.2)])
        replica = Replica("w", owner)
        replica.store.insert((0.9, 0.9))
        assert len(owner) == 1  # scribbling on the mirror never leaks back


class TestReplicaDirectory:
    @pytest.mark.parametrize("kind", OVERLAYS)
    def test_install_mirrors_every_tuple(self, kind):
        overlay = build(kind)
        directory = ReplicaDirectory(overlay, copies=2)
        for peer in overlay.peers():
            for holder in directory.holders(peer.peer_id):
                replica = holder.replicas[peer.peer_id]
                np.testing.assert_array_equal(replica.store.array,
                                              peer.store.array)

    def test_negative_copies_rejected(self):
        with pytest.raises(ValueError, match="replication degree"):
            ReplicaDirectory(build("chord"), copies=-1)

    def test_refresh_tracks_data_mutation(self):
        overlay = build("chord")
        directory = ReplicaDirectory(overlay, copies=1)
        peer = overlay.peers()[0]
        peer.store.insert((0.123456,))
        holder = directory.holders(peer.peer_id)[0]
        assert len(holder.replicas[peer.peer_id].store) == len(peer.store) - 1
        directory.refresh()
        np.testing.assert_array_equal(
            holder.replicas[peer.peer_id].store.array, peer.store.array)

    @pytest.mark.parametrize("kind", OVERLAYS)
    def test_refresh_reinstalls_after_churn(self, kind):
        overlay = build(kind)
        directory = ReplicaDirectory(overlay, copies=1)
        overlay.grow_to(len(overlay.peers()) + 3)
        directory.refresh()
        for peer in overlay.peers():
            for holder in directory.holders(peer.peer_id):
                np.testing.assert_array_equal(
                    holder.replicas[peer.peer_id].store.array,
                    peer.store.array)

    def test_promote_impersonates_owner(self):
        overlay = build("midas")
        directory = ReplicaDirectory(overlay, copies=2)
        owner = overlay.peers()[0]
        promoted = directory.promote(owner.peer_id, lambda pid: True)
        assert isinstance(promoted, PromotedPeer)
        assert promoted.peer_id == owner.peer_id
        assert physical_id(promoted) != owner.peer_id
        np.testing.assert_array_equal(promoted.store.array, owner.store.array)
        # the stand-in coordinates with the dead owner's link table
        assert [ln.peer.peer_id for ln in promoted.links()] \
            == [ln.peer.peer_id for ln in owner.links()]

    def test_promote_skips_dead_and_excluded_holders(self):
        overlay = build("chord")
        directory = ReplicaDirectory(overlay, copies=2)
        owner = overlay.peers()[0]
        first, second = directory.holders(owner.peer_id)
        promoted = directory.promote(owner.peer_id,
                                     lambda pid: pid != first.peer_id)
        assert promoted.physical_id == second.peer_id
        promoted = directory.promote(owner.peer_id, lambda pid: True,
                                     exclude=frozenset({first.peer_id}))
        assert promoted.physical_id == second.peer_id
        assert directory.promote(
            owner.peer_id, lambda pid: True,
            exclude=frozenset({first.peer_id, second.peer_id})) is None

    def test_promote_unknown_owner_is_none(self):
        directory = ReplicaDirectory(build("chord"), copies=1)
        assert directory.promote("nope", lambda pid: True) is None

    def test_repair_pins_takeover_and_demote_unpins(self):
        overlay = build("chord")
        directory = ReplicaDirectory(overlay, copies=2)
        owner = overlay.peers()[0]
        first, second = directory.holders(owner.peer_id)
        # repair with the first holder dead pins the second
        pinned = directory.repair(owner.peer_id,
                                  lambda pid: pid != first.peer_id)
        assert pinned is second
        # ... and promote converges on the pinned holder even when the
        # first is (again) live
        assert directory.promote(owner.peer_id,
                                 lambda pid: True).physical_id \
            == second.peer_id
        directory.demote(owner.peer_id)
        assert directory.promote(owner.peer_id,
                                 lambda pid: True).physical_id \
            == first.peer_id

    def test_repair_with_no_live_holder_is_none(self):
        overlay = build("chord")
        directory = ReplicaDirectory(overlay, copies=1)
        owner = overlay.peers()[0]
        assert directory.repair(owner.peer_id, lambda pid: False) is None

    def test_zero_copies_never_promotes(self):
        overlay = build("midas")
        directory = ReplicaDirectory(overlay, copies=0)
        for peer in overlay.peers():
            assert directory.holders(peer.peer_id) == []
            assert not peer.replicas
            assert directory.promote(peer.peer_id, lambda pid: True) is None
