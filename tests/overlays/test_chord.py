"""Unit tests for the Chord overlay."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import NearestScore, run_fast, run_ripple, run_slow
from repro.net.routing import greedy_route
from repro.overlays.chord import ChordOverlay
from repro.queries.topk import TopKHandler, topk_reference


class TestRing:
    def test_growth(self):
        overlay = ChordOverlay(size=20, seed=1)
        assert len(overlay) == 20
        ids = [p.ring_id for p in overlay.peers()]
        assert ids == sorted(ids)

    def test_zones_partition_ring(self):
        overlay = ChordOverlay(size=16, seed=2)
        total = sum(p.zone.length() for p in overlay.peers())
        assert total == pytest.approx(1.0)

    def test_owner(self):
        overlay = ChordOverlay(size=16, seed=3)
        for key in (0.0, 0.3, 0.999):
            owner = overlay.owner(key)
            assert owner.zone.contains(key)

    def test_departure_hands_data_to_predecessor(self):
        overlay = ChordOverlay(size=8, seed=4)
        overlay.load(np.random.default_rng(0).random((100, 1)) * 0.999)
        overlay.leave(overlay.peers()[3])
        assert len(overlay) == 7
        assert overlay.total_tuples() == 100
        total = sum(p.zone.length() for p in overlay.peers())
        assert total == pytest.approx(1.0)

    def test_cannot_remove_last(self):
        overlay = ChordOverlay(size=1)
        with pytest.raises(ValueError):
            overlay.leave()

    def test_data_at_owner(self):
        overlay = ChordOverlay(size=12, seed=5)
        overlay.load(np.random.default_rng(1).random((80, 1)) * 0.999)
        for peer in overlay.peers():
            for (key,) in peer.store.iter_points():
                assert peer.zone.contains(key)


class TestFingers:
    def test_regions_partition_rest_of_ring(self):
        overlay = ChordOverlay(size=32, seed=6)
        for peer in overlay.peers():
            covered = sum(l.region.length() for l in peer.links())
            assert covered + peer.zone.length() == pytest.approx(1.0)

    def test_successor_always_linked(self):
        overlay = ChordOverlay(size=32, seed=7)
        for peer in overlay.peers():
            successor = overlay.owner(peer.zone.end)
            assert any(l.peer is successor for l in peer.links())

    def test_finger_count_logarithmic(self):
        overlay = ChordOverlay(size=128, seed=8)
        # fingers are deduplicated; +1 for the explicit successor pointer
        for peer in overlay.peers():
            assert len(peer.links()) <= overlay.finger_resolution() + 1

    def test_links_cached_until_churn(self):
        overlay = ChordOverlay(size=8, seed=9)
        peer = overlay.peers()[0]
        first = peer.links()
        assert peer.links() is first
        overlay.join()
        assert peer.links() is not first


class TestQueries:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=8, deadline=None)
    def test_routing_and_topk(self, seed):
        rng = np.random.default_rng(seed)
        overlay = ChordOverlay(size=24, seed=seed)
        data = rng.random((300, 1)) * 0.999
        overlay.load(data)
        owner, path = greedy_route(overlay.random_peer(rng),
                                   (float(rng.random()),))
        assert len(path) >= 1
        fn = NearestScore((float(rng.random()),))
        ref = [s for s, _ in topk_reference(data, fn, 3)]
        handler = TopKHandler(fn, 3)
        for run in (run_fast, run_slow):
            res = run(overlay.random_peer(rng), handler,
                      restriction=overlay.domain())
            assert [s for s, _ in res.answer] == pytest.approx(ref)

    def test_strict_mode_holds(self):
        """Chord finger regions partition exactly: no double visits."""
        overlay = ChordOverlay(size=48, seed=10)
        overlay.load(np.random.default_rng(2).random((500, 1)) * 0.999)
        handler = TopKHandler(NearestScore((0.5,)), 4)
        for r in (0, 2, 10 ** 9):
            run_ripple(overlay.random_peer(), handler, r,
                       restriction=overlay.domain(), strict=True)
