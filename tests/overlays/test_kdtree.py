"""Unit tests for the shared virtual split tree."""

import numpy as np
import pytest

from repro.common.geometry import Rect
from repro.overlays.kdtree import SplitTree


def build_small():
    """Root split at x=0.5, left child split at y=0.5."""
    tree = SplitTree(2)
    left, right = tree.split_leaf(tree.root, 0, 0.5)
    ll, lh = tree.split_leaf(left, 1, 0.5)
    return tree, ll, lh, right


class TestStructure:
    def test_initial(self):
        tree = SplitTree(2)
        assert tree.leaf_count == 1
        assert tree.root.is_leaf
        assert tree.root.path == ()

    def test_split_assigns_paths(self):
        tree, ll, lh, right = build_small()
        assert tree.leaf_count == 3
        assert ll.path == (0, 0) and lh.path == (0, 1) and right.path == (1,)
        assert right.id_string() == "1"
        assert ll.id_string() == "00"

    def test_split_rects(self):
        _, ll, lh, right = build_small()
        assert right.rect == Rect((0.5, 0.0), (1.0, 1.0))
        assert ll.rect == Rect((0.0, 0.0), (0.5, 0.5))
        assert lh.rect == Rect((0.0, 0.5), (0.5, 1.0))

    def test_cannot_split_internal(self):
        tree, *_ = build_small()
        with pytest.raises(ValueError):
            tree.split_leaf(tree.root, 0, 0.25)

    def test_epoch_increments(self):
        tree = SplitTree(2)
        before = tree.epoch
        tree.split_leaf(tree.root, 0, 0.5)
        assert tree.epoch == before + 1

    def test_locate(self):
        tree, ll, lh, right = build_small()
        assert tree.locate((0.1, 0.1)) is ll
        assert tree.locate((0.1, 0.9)) is lh
        assert tree.locate((0.9, 0.5)) is right
        # boundary points go to the upper side (half-open zones)
        assert tree.locate((0.5, 0.0)) is right

    def test_iter_leaves_covers_domain(self):
        tree, *_ = build_small()
        leaves = list(tree.iter_leaves())
        assert len(leaves) == 3
        assert sum(leaf.rect.volume() for leaf in leaves) == pytest.approx(1.0)

    def test_max_depth(self):
        tree, *_ = build_small()
        assert tree.max_depth() == 2


class TestSiblings:
    def test_sibling_subtrees(self):
        tree, ll, lh, right = build_small()
        siblings = tree.sibling_subtrees(ll)
        assert [s.path for s in siblings] == [(1,), (0, 1)]
        assert siblings[0] is right and siblings[1] is lh

    def test_sibling_regions_partition_domain(self):
        tree, ll, _, _ = build_small()
        siblings = tree.sibling_subtrees(ll)
        volume = sum(s.rect.volume() for s in siblings) + ll.rect.volume()
        assert volume == pytest.approx(1.0)

    def test_root_has_no_siblings(self):
        tree = SplitTree(2)
        assert tree.sibling_subtrees(tree.root) == []


class TestMerge:
    def test_merge_children(self):
        tree, ll, lh, _ = build_small()
        parent = ll.parent
        merged = tree.merge_children(parent)
        assert merged.is_leaf
        assert tree.leaf_count == 2
        assert merged.rect == Rect((0.0, 0.0), (0.5, 1.0))

    def test_merge_requires_leaf_children(self):
        tree, *_ = build_small()
        with pytest.raises(ValueError):
            tree.merge_children(tree.root)

    def test_find_leaf_pair(self):
        tree, ll, lh, right = build_small()
        pair = tree.find_leaf_pair(ll.parent.parent)
        assert pair is ll.parent


class TestPartition:
    def test_rows_delivered_to_owning_leaf(self):
        tree, ll, lh, right = build_small()
        rows = np.array([[0.1, 0.1], [0.1, 0.9], [0.9, 0.1], [0.6, 0.6]])
        received = {}
        tree.partition(rows, lambda leaf, r: received.setdefault(
            leaf.path, []).extend(map(tuple, r)))
        assert sorted(received[(0, 0)]) == [(0.1, 0.1)]
        assert sorted(received[(0, 1)]) == [(0.1, 0.9)]
        assert sorted(received[(1,)]) == [(0.6, 0.6), (0.9, 0.1)]

    def test_empty_array(self):
        tree, *_ = build_small()
        tree.partition(np.empty((0, 2)), lambda *_: pytest.fail("no rows"))
