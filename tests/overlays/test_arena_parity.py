"""Bit-identity of the arena substrate and the batched wavefront engine.

Two contracts, both exact (answers *and* every ``QueryStats`` counter):

* a :func:`from_overlay` mirror run through the unchanged engines
  (recursive, event-driven, zero-fault resilient) reproduces the object
  overlay's results for every handler family and overlay family;
* the batched wavefront engine reproduces the scalar ``r = 0`` engine on
  both substrates, for the cold and the seeded drivers, and falls back
  to the scalar engine outside its domain (``r > 0``, non-strict).

docs/SCALE.md gives the equivalence argument these tests pin down.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import LinearScore, ReplicaDirectory, run_ripple
from repro.net.eventsim import event_driven_ripple
from repro.net.faults import FaultPlan, resilient_ripple
from repro.overlays import (from_overlay, midas_arena, run_wavefront,
                            wavefront_execute)
from repro.queries.skyline import distributed_skyline
from repro.queries.topk import distributed_topk

from tests import netlib
from tests.netlib import can_network


def build(kind, seed, peers=60, tuples=260):
    return netlib.build_network(kind, seed, peers=peers, tuples=tuples)


NETWORKS = {kind: (lambda seed, peers=60, tuples=260, _k=kind:
                   build(_k, seed, peers=peers, tuples=tuples))
            for kind in netlib.OVERLAYS}


def handlers_for(dims):
    return netlib.handlers_for(dims, third="diversify")


def assert_bit_identical(got, expected):
    assert got.answer == expected.answer
    assert dataclasses.asdict(got.stats) == dataclasses.asdict(expected.stats)


relaxed = settings(max_examples=10, deadline=None)


class TestMirrorBitIdentity:
    """A mirror is indistinguishable from its source overlay."""

    @relaxed
    @given(seed=st.integers(0, 30),
           kind=st.sampled_from(netlib.OVERLAYS),
           peers=st.integers(50, 120),
           r=st.sampled_from((0, 2)),
           pick=st.integers(0, 2))
    def test_recursive_engine(self, seed, kind, peers, r, pick):
        overlay = NETWORKS[kind](seed, peers=peers)
        arena = from_overlay(overlay)
        restriction = overlay.domain()
        strict = arena.strict_default
        handler = handlers_for(restriction.rect.dims)[pick]
        expected = run_ripple(overlay.peers()[0], handler, r,
                              restriction=restriction, strict=strict)
        got = run_ripple(arena.peer(0), handler, r,
                         restriction=restriction, strict=strict)
        assert_bit_identical(got, expected)

    @relaxed
    @given(seed=st.integers(0, 30),
           kind=st.sampled_from(netlib.OVERLAYS),
           r=st.sampled_from((0, 1)),
           pick=st.integers(0, 2))
    def test_event_driven_engine(self, seed, kind, r, pick):
        overlay = NETWORKS[kind](seed)
        arena = from_overlay(overlay)
        restriction = overlay.domain()
        handler = handlers_for(restriction.rect.dims)[pick]
        expected = event_driven_ripple(overlay.peers()[0], handler, r,
                                       restriction=restriction, strict=False)
        got = event_driven_ripple(arena.peer(0), handler, r,
                                  restriction=restriction, strict=False)
        assert_bit_identical(got, expected)

    @pytest.mark.parametrize("kind", netlib.OVERLAYS)
    def test_zero_fault_resilient_engine(self, kind):
        """The supervised engine over a mirror + its snapshotted replica
        directory stays bit-identical to the fault-free run — the
        detector never starts and placement is epoch-stable."""
        overlay = NETWORKS[kind](13)
        arena = from_overlay(overlay)
        restriction = overlay.domain()
        directory = ReplicaDirectory(arena, copies=2)
        for handler in handlers_for(restriction.rect.dims):
            plain = event_driven_ripple(arena.peer(0), handler, 0,
                                        restriction=restriction,
                                        strict=False)
            resilient = resilient_ripple(arena.peer(0), handler, 0,
                                         restriction=restriction,
                                         faults=FaultPlan.none(),
                                         replicas=directory)
            assert resilient.answer == plain.answer
            assert resilient.stats.latency == plain.stats.latency
            assert resilient.stats.processed == plain.stats.processed
            assert resilient.stats.completeness == 1.0
            assert resilient.stats.regions_recovered == 0


class TestWavefrontParity:
    """Breadth-first batched evaluation == depth-first scalar evaluation."""

    @relaxed
    @given(seed=st.integers(0, 30),
           kind=st.sampled_from(netlib.OVERLAYS),
           peers=st.integers(50, 120),
           pick=st.integers(0, 1))
    def test_cold_queries_on_mirrors(self, seed, kind, peers, pick):
        overlay = NETWORKS[kind](seed, peers=peers)
        arena = from_overlay(overlay)
        restriction = overlay.domain()
        strict = arena.strict_default
        handler = handlers_for(restriction.rect.dims)[pick]
        expected = run_ripple(arena.peer(0), handler, 0,
                              restriction=restriction, strict=strict)
        got = run_wavefront(arena.peer(0), handler,
                            restriction=restriction, strict=strict)
        assert_bit_identical(got, expected)

    @relaxed
    @given(seed=st.integers(0, 30), peers=st.integers(50, 200),
           pick=st.integers(0, 1))
    def test_cold_queries_on_direct_midas_arena(self, seed, peers, pick):
        rng = np.random.default_rng(seed)
        arena = midas_arena(peers, dims=2, seed=seed,
                            data=rng.random((300, 2)) * 0.999)
        restriction = arena.domain()
        handler = handlers_for(2)[pick]
        initiator = arena.random_peer(np.random.default_rng(seed + 1))
        expected = run_ripple(initiator, handler, 0, restriction=restriction)
        got = run_wavefront(initiator, handler, restriction=restriction)
        assert_bit_identical(got, expected)

    @relaxed
    @given(seed=st.integers(0, 30), peers=st.integers(50, 200))
    def test_seeded_drivers(self, seed, peers):
        rng = np.random.default_rng(seed)
        arena = midas_arena(peers, dims=2, seed=seed,
                            data=rng.random((300, 2)) * 0.999)
        initiator = arena.peer(0)
        restriction = arena.domain()
        fn = LinearScore([0.3, 0.7])
        expected = distributed_topk(initiator, fn, 5,
                                    restriction=restriction)
        got = distributed_topk(initiator, fn, 5, restriction=restriction,
                               executor=wavefront_execute)
        assert_bit_identical(got, expected)
        expected = distributed_skyline(initiator, 2,
                                       restriction=restriction)
        got = distributed_skyline(initiator, 2, restriction=restriction,
                                  executor=wavefront_execute)
        assert_bit_identical(got, expected)

    def test_sequential_modes_fall_back_to_scalar(self):
        arena = midas_arena(
            64, dims=2, seed=4,
            data=np.random.default_rng(4).random((300, 2)) * 0.999)
        initiator = arena.peer(0)
        restriction = arena.domain()
        fn = LinearScore([0.5, 0.5])
        for r in (1, 3):
            expected = distributed_topk(initiator, fn, 5,
                                        restriction=restriction, r=r)
            got = distributed_topk(initiator, fn, 5,
                                   restriction=restriction, r=r,
                                   executor=wavefront_execute)
            assert_bit_identical(got, expected)

    def test_non_strict_falls_back_to_scalar(self):
        overlay = can_network(7, peers=60)
        arena = from_overlay(overlay)
        restriction = overlay.domain()
        handler = handlers_for(2)[0]
        expected = run_ripple(arena.peer(0), handler, 0,
                              restriction=restriction, strict=False)
        got = run_wavefront(arena.peer(0), handler,
                            restriction=restriction, strict=False)
        assert_bit_identical(got, expected)

    def test_negative_r_rejected(self):
        from repro.net.context import QueryContext

        arena = midas_arena(8, dims=2, seed=0)
        with pytest.raises(ValueError):
            wavefront_execute(arena.peer(0), handlers_for(2)[0], -1,
                              restriction=arena.domain(),
                              ctx=QueryContext(strict=True))
