"""Property tests: overlay invariants survive arbitrary churn.

The region-partition properties RIPPLE's correctness rests on must hold
not just on freshly built networks but after any interleaving of joins
and departures with data in place.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.overlays.can import CanOverlay
from repro.overlays.chord import ChordOverlay
from repro.overlays.midas import MidasOverlay
from repro.overlays.skipgraph import SkipGraphOverlay

churn_params = st.tuples(st.integers(0, 10 ** 6),
                         st.lists(st.booleans(), min_size=5, max_size=40))

relaxed = settings(max_examples=15, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def churn(overlay, plan, rng):
    for join in plan:
        if join or len(overlay) <= 2:
            overlay.join()
        else:
            overlay.leave()


class TestMidasChurn:
    @given(churn_params)
    @relaxed
    def test_link_regions_partition_after_churn(self, params):
        seed, plan = params
        rng = np.random.default_rng(seed)
        overlay = MidasOverlay(2, size=8, seed=seed, join_policy="data")
        overlay.load(rng.random((120, 2)) * 0.999)
        churn(overlay, plan, rng)
        for peer in list(overlay.peers())[::3]:
            covered = peer.zone.volume() + sum(
                link.region.rect.volume() for link in peer.links())
            assert covered == pytest.approx(1.0)
            for link in peer.links():
                assert link.region.rect.contains_rect(link.peer.zone)

    @given(churn_params)
    @relaxed
    def test_queries_stay_exact_after_churn(self, params):
        from repro import LinearScore, run_fast
        from repro.queries.topk import TopKHandler, topk_reference

        seed, plan = params
        rng = np.random.default_rng(seed)
        data = rng.random((150, 2)) * 0.999
        overlay = MidasOverlay(2, size=8, seed=seed, join_policy="data")
        overlay.load(data)
        churn(overlay, plan, rng)
        fn = LinearScore([1, 1])
        result = run_fast(overlay.random_peer(rng), TopKHandler(fn, 4),
                          restriction=overlay.domain())
        assert [s for s, _ in result.answer] == \
            [s for s, _ in topk_reference(data, fn, 4)]


class TestChordChurn:
    @given(churn_params)
    @relaxed
    def test_arc_regions_partition_after_churn(self, params):
        seed, plan = params
        overlay = ChordOverlay(size=8, seed=seed)
        churn(overlay, plan, None)
        for peer in list(overlay.peers())[::3]:
            covered = peer.zone.length() + sum(
                link.region.length() for link in peer.links())
            assert covered == pytest.approx(1.0)


class TestCanChurn:
    @given(churn_params)
    @relaxed
    def test_neighbor_symmetry_after_churn(self, params):
        seed, plan = params
        rng = np.random.default_rng(seed)
        overlay = CanOverlay(2, size=8, seed=seed)
        churn(overlay, plan, rng)
        for peer in list(overlay.peers())[::3]:
            for adj in peer.neighbors():
                assert peer in [a.peer for a in adj.peer.neighbors()]

    @given(churn_params)
    @relaxed
    def test_frustums_cover_domain_after_churn(self, params):
        seed, plan = params
        rng = np.random.default_rng(seed)
        overlay = CanOverlay(2, size=8, seed=seed)
        churn(overlay, plan, rng)
        peer = overlay.random_peer(rng)
        links = peer.links()
        for _ in range(25):
            point = tuple(rng.random(2))
            if peer.zone.contains(point):
                continue
            assert any(link.region.contains(point) for link in links)


class TestSkipGraphChurn:
    @given(churn_params)
    @relaxed
    def test_arc_regions_partition_after_churn(self, params):
        seed, plan = params
        overlay = SkipGraphOverlay(size=8, seed=seed)
        churn(overlay, plan, None)
        for peer in list(overlay.peers())[::3]:
            covered = peer.zone.length() + sum(
                link.region.length() for link in peer.links())
            assert covered == pytest.approx(1.0)

    @given(churn_params)
    @relaxed
    def test_degree_bound_survives_churn(self, params):
        # the constant-degree guarantee must hold on every churned shape,
        # not just freshly built networks
        seed, plan = params
        overlay = SkipGraphOverlay(size=8, seed=seed)
        churn(overlay, plan, None)
        assert overlay.max_links() <= SkipGraphOverlay.MAX_DEGREE

    @given(churn_params)
    @relaxed
    def test_queries_stay_exact_after_churn(self, params):
        from repro import LinearScore, run_fast
        from repro.queries.topk import TopKHandler, topk_reference

        seed, plan = params
        rng = np.random.default_rng(seed)
        data = rng.random((150, 1)) * 0.999
        overlay = SkipGraphOverlay(size=8, seed=seed)
        overlay.load(data)
        churn(overlay, plan, rng)
        fn = LinearScore([1.0])
        result = run_fast(overlay.random_peer(rng), TopKHandler(fn, 4),
                          restriction=overlay.domain())
        assert [s for s, _ in result.answer] == \
            [s for s, _ in topk_reference(data, fn, 4)]
