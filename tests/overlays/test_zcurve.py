"""Unit tests for the Z-order codec and range decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.overlays.zcurve import ZCurve


class TestEncode:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZCurve(0, 4)
        with pytest.raises(ValueError):
            ZCurve(8, 10)  # 80 bits > 62

    def test_known_2d(self):
        zc = ZCurve(2, 1)
        # one bit per dim: quadrants in Z order
        assert zc.encode((0.0, 0.0)) == 0
        assert zc.encode((0.0, 0.7)) == 1
        assert zc.encode((0.7, 0.0)) == 2
        assert zc.encode((0.7, 0.7)) == 3

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            ZCurve(2, 4).encode((0.5,))

    def test_batch_matches_scalar(self):
        zc = ZCurve(3, 6)
        rng = np.random.default_rng(0)
        pts = rng.random((50, 3))
        keys = zc.encode_batch(pts)
        for point, key in zip(pts, keys):
            assert zc.encode(tuple(point)) == key

    def test_monotone_in_cell(self):
        zc = ZCurve(2, 4)
        assert 0 <= zc.encode((0.99, 0.99)) <= zc.max_key

    @given(st.floats(0, 0.999), st.floats(0, 0.999))
    @settings(max_examples=50, deadline=None)
    def test_key_cell_roundtrip(self, x, y):
        """A point's key prefix cell always contains the point."""
        zc = ZCurve(2, 5)
        key = zc.encode((x, y))
        cell = zc.cell_rect(key, zc.total_bits)
        assert cell.contains((x, y), closed=True)


class TestCells:
    def test_root_cell(self):
        zc = ZCurve(3, 4)
        assert zc.cell_rect(0, 0).volume() == pytest.approx(1.0)

    def test_prefix_bits_validation(self):
        zc = ZCurve(2, 3)
        with pytest.raises(ValueError):
            zc.cell_rect(0, 99)

    def test_cell_shape_alternates_dims(self):
        zc = ZCurve(2, 4)
        half = zc.cell_rect(0, 1)
        assert half.extent(0) == 0.5 and half.extent(1) == 1.0
        quarter = zc.cell_rect(0, 2)
        assert quarter.extent(0) == 0.5 and quarter.extent(1) == 0.5


class TestRangeCells:
    def test_full_range_is_root(self):
        zc = ZCurve(2, 5)
        cells = list(zc.range_cells(0, zc.max_key))
        assert cells == [(0, 0)]

    def test_empty_range(self):
        zc = ZCurve(2, 5)
        assert list(zc.range_cells(5, 4)) == []

    def test_cell_count_logarithmic(self):
        zc = ZCurve(2, 10)
        cells = list(zc.range_cells(12345, 987654))
        assert len(cells) <= 2 * zc.total_bits

    @given(st.integers(0, 2 ** 10 - 1), st.integers(0, 2 ** 10 - 1))
    @settings(max_examples=50, deadline=None)
    def test_cover_is_exact_partition(self, a, b):
        """Cells cover exactly the keys in [lo, hi], without overlap."""
        zc = ZCurve(2, 5)  # 10-bit keys, enumerable
        lo, hi = min(a, b), max(a, b)
        covered = set()
        for prefix, bits in zc.range_cells(lo, hi):
            shift = zc.total_bits - bits
            start = prefix << shift
            block = set(range(start, start + (1 << shift)))
            assert not block & covered, "overlapping cells"
            covered |= block
        assert covered == set(range(lo, hi + 1))

    def test_range_rects_area(self):
        zc = ZCurve(2, 6)
        lo, hi = 100, 1000
        area = sum(r.volume() for r in zc.range_rects(lo, hi))
        assert area == pytest.approx((hi - lo + 1) / (zc.max_key + 1))
