"""The rainbow skip-graph substrate: structure, degree bound, recovery.

The headline claim is the degree bound: a skip-graph peer's out-degree is
a constant (``SkipGraphOverlay.MAX_DEGREE``) independent of the network
size, because each tower member carries exactly one level of its tower's
skip pointers.  The suites below pin that bound across 2^6–2^13 peers
and arbitrary churn, alongside the RIPPLE contracts every substrate must
satisfy (zone/link-region partition of the key ring, exact owner
routing, same-tower/adjacent-tower replica placement) and the
fault-tolerance edge cases mirrored from ``tests/net/test_recovery.py``
(incarnation-aware rebirth, seeded-plan goldens).
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (LinearScore, ReplicaDirectory, SkipGraphOverlay,
                   TopKHandler, run_ripple)
from repro.net.detector import ALIVE, DEAD, FailureDetector
from repro.net.eventsim import EventSimulator, event_driven_ripple
from repro.net.faults import FaultPlan, resilient_ripple
from repro.net.routing import greedy_route, route_around
from repro.overlays.arena_build import from_overlay
from repro.queries.topk import topk_reference

from tests.netlib import handlers_for, seed_data, skipgraph_network

relaxed = settings(max_examples=15, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestStructure:
    def test_towers_partition_peers_in_key_order(self):
        overlay = SkipGraphOverlay(size=100, seed=4)
        index = overlay.tower_index()
        flattened = [m for members in index.towers for m in members]
        assert flattened == list(overlay.peers())
        assert all(len(members) <= overlay.tower_size()
                   for members in index.towers)
        for t, members in enumerate(index.towers):
            for j, member in enumerate(members):
                assert index.position[member.peer_id] == (t, j)

    @pytest.mark.parametrize("peers", (2, 3, 7, 16, 33, 64, 257))
    def test_zone_and_link_regions_partition_the_ring(self, peers):
        overlay = SkipGraphOverlay(size=peers, seed=9)
        for peer in overlay.peers():
            covered = peer.zone.length() + sum(
                link.region.length() for link in peer.links())
            assert covered == pytest.approx(1.0)

    def test_links_include_the_base_successor(self):
        overlay = SkipGraphOverlay(size=48, seed=2)
        for peer in overlay.peers():
            successor = overlay.owner(peer.zone.end)
            assert successor.peer_id in {ln.peer.peer_id
                                         for ln in peer.links()}

    def test_owner_zone_contains_key(self):
        overlay = SkipGraphOverlay(size=40, seed=6)
        rng = np.random.default_rng(0)
        for key in rng.random(100):
            assert overlay.owner(float(key)).zone.contains(float(key))

    def test_link_cache_tracks_the_epoch(self):
        overlay = SkipGraphOverlay(size=16, seed=1)
        peer = overlay.peers()[0]
        first = peer.links()
        assert peer.links() is first          # cached within an epoch
        overlay.join()
        assert peer.links() is not first      # invalidated by churn

    def test_explicit_tower_size_is_honoured(self):
        overlay = SkipGraphOverlay(size=30, seed=3, tower_size=5)
        assert overlay.tower_size() == 5
        assert all(len(m) <= 5 for m in overlay.tower_index().towers)
        with pytest.raises(ValueError, match="tower_size"):
            SkipGraphOverlay(size=4, seed=0, tower_size=0)

    def test_load_places_every_tuple_at_its_owner(self):
        overlay = skipgraph_network(5)
        assert overlay.total_tuples() == 260
        for peer in overlay.peers():
            for (value,) in peer.store.iter_points():
                assert peer.zone.contains(value)


class TestDegreeBound:
    """The headline robustness property: out-degree is a constant."""

    @pytest.mark.parametrize("exponent", range(6, 14))
    def test_max_out_degree_is_constant(self, exponent):
        overlay = SkipGraphOverlay(size=2 ** exponent, seed=exponent)
        assert overlay.max_links() <= SkipGraphOverlay.MAX_DEGREE

    def test_degree_does_not_scale_with_n(self):
        # Unlike Chord fingers (Theta(log n)) the bound never moves.
        degrees = {n: SkipGraphOverlay(size=n, seed=0).max_links()
                   for n in (64, 512, 4096)}
        assert max(degrees.values()) <= SkipGraphOverlay.MAX_DEGREE
        assert degrees[4096] <= degrees[64] + 1

    @given(seed=st.integers(0, 10 ** 6), peers=st.integers(2, 200))
    @relaxed
    def test_bound_holds_on_arbitrary_networks(self, seed, peers):
        overlay = SkipGraphOverlay(size=peers, seed=seed)
        assert overlay.max_links() <= SkipGraphOverlay.MAX_DEGREE


class TestReplicaDiscipline:
    def test_first_copies_stay_in_the_tower(self):
        overlay = SkipGraphOverlay(size=64, seed=8)
        index = overlay.tower_index()
        for peer in overlay.peers():
            t, _ = index.position[peer.peer_id]
            members = {m.peer_id for m in index.towers[t]}
            if len(members) <= 1:
                continue
            for target in overlay.replica_targets(peer, len(members) - 1):
                assert target.peer_id in members

    def test_overflow_spills_to_adjacent_towers(self):
        overlay = SkipGraphOverlay(size=64, seed=8)
        index = overlay.tower_index()
        for peer in overlay.peers()[::7]:
            t, _ = index.position[peer.peer_id]
            height = len(index.towers[t])
            targets = overlay.replica_targets(peer, height + 2)
            assert len(targets) == height + 2
            spilled = [index.position[x.peer_id][0] for x in targets[height - 1:]]
            adjacent = {(t + 1) % len(index.towers),
                        (t - 1) % len(index.towers)}
            assert set(spilled) <= adjacent

    def test_epoch_attribute_feeds_the_directory(self):
        # the directory reads SkipGraphOverlay.epoch (no .tree) and must
        # reinstall placement when churn moves it
        overlay = SkipGraphOverlay(size=24, seed=3)
        overlay.load(seed_data(3, 120, 1))
        directory = ReplicaDirectory(overlay, copies=2)
        before = {pid for p in overlay.peers() for pid in p.replicas}
        assert before
        joiner = overlay.join()
        directory.refresh()
        assert {pid for p in overlay.peers() for pid in p.replicas} \
            >= before | {joiner.peer_id}
        for holder in directory.holders(joiner.peer_id):
            assert holder.peer_id != joiner.peer_id


class TestRouting:
    def test_greedy_routing_reaches_the_owner(self):
        overlay = SkipGraphOverlay(size=128, seed=12)
        rng = np.random.default_rng(1)
        hops = []
        for _ in range(40):
            start = overlay.random_peer(rng)
            point = (float(rng.random()),)
            target, path = greedy_route(start, point)
            assert target.zone.contains(point[0])
            hops.append(len(path) - 1)
        assert max(hops) < len(overlay)  # never a full ring walk

    def test_route_around_finds_live_coordinators(self):
        overlay = SkipGraphOverlay(size=32, seed=5)
        overlay.load(seed_data(5, 200, 1))
        victim = overlay.peers()[10]
        alive = lambda pid: pid != victim.peer_id
        stand_in, hop = route_around(
            overlay.peers()[0], victim.links()[0].region, alive,
            exclude=[victim.peer_id])
        assert stand_in is not None
        assert stand_in.peer_id != victim.peer_id
        assert hop > 0


class TestQueries:
    def test_exact_answers_against_reference(self):
        overlay = skipgraph_network(4)
        data = seed_data(4, 260, 1)
        fn = LinearScore([1.0])
        result = run_ripple(overlay.peers()[0], TopKHandler(fn, 5), 0,
                            restriction=overlay.domain(), strict=True)
        assert [s for s, _ in result.answer] == \
            [s for s, _ in topk_reference(data, fn, 5)]

    @given(seed=st.integers(0, 10 ** 6), r=st.sampled_from((0, 2, 10 ** 9)),
           pick=st.integers(0, 2))
    @relaxed
    def test_property_engines_bit_identical(self, seed, r, pick):
        overlay = skipgraph_network(seed, peers=24, tuples=150)
        handler = handlers_for(1, third="diversify")[pick]
        initiator = overlay.random_peer(np.random.default_rng(seed))
        recursive = run_ripple(initiator, handler, r,
                               restriction=overlay.domain(), strict=True)
        driven = event_driven_ripple(initiator, handler, r,
                                     restriction=overlay.domain(),
                                     strict=True)
        resilient = resilient_ripple(initiator, handler, r,
                                     restriction=overlay.domain())
        assert driven.answer == recursive.answer == resilient.answer
        assert driven.stats.processed == recursive.stats.processed
        assert driven.stats.latency == resilient.stats.latency
        assert driven.stats.forward_messages \
            == resilient.stats.forward_messages

    def test_mirror_arena_uses_the_arc_family(self):
        overlay = skipgraph_network(6, peers=40)
        arena = from_overlay(overlay)
        assert arena.kind == "arc"
        assert arena.strict_default
        handler = TopKHandler(LinearScore([1.0]), 4)
        expected = run_ripple(overlay.peers()[0], handler, 0,
                              restriction=overlay.domain(), strict=True)
        got = run_ripple(arena.peer(0), handler, 0,
                         restriction=overlay.domain(), strict=True)
        assert got.answer == expected.answer
        assert got.stats.as_dict() == expected.stats.as_dict()


class TestRecoveryEdgeCases:
    """Skip-graph mirrors of the test_recovery edge cases."""

    def test_detector_walks_suspect_then_dead_on_skipgraph_ids(self):
        overlay = SkipGraphOverlay(size=16, seed=7)
        victim = overlay.peers()[3]
        plan = FaultPlan(crashes={victim.peer_id: [(0, math.inf)]})
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan,
                                   [p.peer_id for p in overlay.peers()])
        detector.start()
        sim.schedule(3 * plan.heartbeat_period + 1, detector.stop)
        sim.run()
        assert detector.status(victim.peer_id) == DEAD
        survivors = [p.peer_id for p in overlay.peers()
                     if p.peer_id != victim.peer_id]
        assert all(detector.status(pid) == ALIVE for pid in survivors)

    def test_incarnation_rebirth_clears_suspicion(self):
        overlay = SkipGraphOverlay(size=8, seed=7)
        victim = overlay.peers()[1]
        # down only between probes: the outage is invisible except through
        # the incarnation counter, which must still report the rebirth
        plan = FaultPlan(crashes={victim.peer_id: [(5, 7)]},
                         heartbeat_period=4, suspect_after=1, dead_after=99)
        sim = EventSimulator(faults=plan)
        detector = FailureDetector(sim, plan, [victim.peer_id])
        detector.start()
        sim.schedule(20, detector.stop)
        sim.run()
        assert detector.status(victim.peer_id) == ALIVE
        assert plan.incarnation(victim.peer_id, 20) == 1

    def test_briefly_down_peer_serves_retries(self):
        overlay = skipgraph_network(5, peers=16)
        initiator = overlay.peers()[0]
        victim = initiator.links()[0].peer
        plan = FaultPlan(seed=1, crashes={victim.peer_id: [(0, 4)]})
        handler = TopKHandler(LinearScore([1.0]), 4)
        expected = run_ripple(initiator, handler, 0,
                              restriction=overlay.domain(), strict=True)
        result = resilient_ripple(initiator, handler, 0,
                                  restriction=overlay.domain(), faults=plan)
        assert result.stats.completeness == 1.0
        assert result.stats.timeouts > 0
        assert result.answer == expected.answer

    def test_seeded_plan_golden_on_skipgraph_population(self):
        """Crash/drop/jitter draws over a seeded skip-graph network are
        pinned: recorded BENCH_churn scenarios rely on these exact draws."""
        overlay = skipgraph_network(0, peers=16, tuples=120)
        assert [p.peer_id for p in overlay.peers()][:6] == [0, 1, 2, 3, 4, 5]
        plan = FaultPlan.churn(overlay, crash_fraction=0.25, seed=42,
                               horizon=16, drop_prob=0.2, jitter=3)
        assert sorted(plan.crashes) == [6, 9, 12, 13, 14]
        assert [plan.crashes[pid][0][0] for pid in sorted(plan.crashes)] \
            == [8.0, 8.0, 9.0, 3.0, 5.0]
        assert [i for i in range(32) if plan.drops(i)] == [10, 17, 20, 30]
        assert [plan.forward_delay(i) for i in range(8)] \
            == [3, 1, 4, 2, 4, 3, 4, 3]

    def test_network_build_is_seed_stable(self):
        one = skipgraph_network(3)
        two = skipgraph_network(3)
        assert [p.key for p in one.peers()] == [p.key for p in two.peers()]
        assert [len(p.store) for p in one.peers()] \
            == [len(p.store) for p in two.peers()]
