"""Unit tests for the Section 5.2 boundary identifier patterns."""

from hypothesis import given, strategies as st

from repro.overlays.patterns import alive_patterns, matches_any_pattern

bits = st.lists(st.integers(0, 1), max_size=12)


class TestAlivePatterns:
    def test_empty_prefix_matches_all(self):
        assert alive_patterns((), 3) == frozenset({0, 1, 2})

    def test_all_zero_matches_all(self):
        assert alive_patterns((0, 0, 0, 0), 2) == frozenset({0, 1})

    def test_one_restricts_to_its_residue(self):
        # a 1 at position 2 keeps only pattern j = 2 mod D alive
        assert alive_patterns((0, 0, 1), 2) == frozenset({0})
        assert alive_patterns((0, 1), 2) == frozenset({1})

    def test_two_conflicting_ones_kill_everything(self):
        assert alive_patterns((1, 1), 2) == frozenset()

    def test_ones_in_same_residue_ok(self):
        # positions 0 and 2 are both residue 0 (mod 2)
        assert alive_patterns((1, 0, 1), 2) == frozenset({0})

    def test_paper_2d_examples(self):
        # p_h = (X0)*X?  — free at even positions; p_v = (0X)*0?
        assert matches_any_pattern((1, 0, 1, 0), 2)   # matches p at j=0
        assert matches_any_pattern((0, 1, 0, 1), 2)   # matches p at j=1
        assert not matches_any_pattern((1, 1), 2)

    @given(bits, st.integers(2, 4))
    def test_prefix_closed(self, path, dims):
        """Once dead, forever dead (the paper's derivation argument)."""
        path = tuple(path)
        if not matches_any_pattern(path, dims):
            for extra in ((0,), (1,), (0, 1)):
                assert not matches_any_pattern(path + extra, dims)

    @given(bits, st.integers(2, 4))
    def test_alive_shrinks_with_extension(self, path, dims):
        path = tuple(path)
        assert alive_patterns(path + (1,), dims) <= alive_patterns(path, dims)
        assert alive_patterns(path + (0,), dims) == alive_patterns(path, dims)
