"""Unit and invariant tests for the CAN overlay."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.geometry import Rect
from repro.overlays.can import CanOverlay, _shared_face


def zones_partition_domain(overlay):
    total = sum(peer.zone.volume() for peer in overlay.peers())
    assert total == pytest.approx(1.0)


class TestStructure:
    def test_growth(self):
        overlay = CanOverlay(2, size=40, seed=1)
        assert len(overlay) == 40
        zones_partition_domain(overlay)

    def test_neighbors_symmetric(self):
        overlay = CanOverlay(2, size=32, seed=2)
        for peer in overlay.peers():
            for adj in peer.neighbors():
                back = [a.peer for a in adj.peer.neighbors()]
                assert peer in back

    def test_neighbor_faces_flat_on_axis(self):
        overlay = CanOverlay(3, size=24, seed=3)
        for peer in overlay.peers():
            for adj in peer.neighbors():
                assert adj.face.lo[adj.axis] == adj.face.hi[adj.axis]
                if adj.side > 0:
                    assert adj.face.lo[adj.axis] == peer.zone.hi[adj.axis]
                else:
                    assert adj.face.lo[adj.axis] == peer.zone.lo[adj.axis]

    def test_every_interior_peer_has_2d_neighbors_at_least(self):
        overlay = CanOverlay(2, size=64, seed=4)
        for peer in overlay.peers():
            sides = {(a.axis, a.side) for a in peer.neighbors()}
            expected = sum(
                1 for dim in range(2) for side, bound in
                [(-1, peer.zone.lo[dim] > 0), (+1, peer.zone.hi[dim] < 1)]
                if bound)
            assert len(sides) == expected

    def test_churn_preserves_partition(self):
        overlay = CanOverlay(2, size=32, seed=5)
        rng = np.random.default_rng(0)
        data = rng.random((100, 2)) * 0.999
        overlay.load(data)
        for _ in range(40):
            if len(overlay) > 1 and rng.random() < 0.5:
                overlay.leave()
            else:
                overlay.join()
        zones_partition_domain(overlay)
        assert overlay.total_tuples() == 100


class TestFrustumRegions:
    @pytest.mark.parametrize("dims,size", [(2, 20), (3, 30)])
    def test_regions_partition_domain(self, dims, size):
        """Every point outside a peer's zone lies in exactly one
        neighbor frustum — requirement (ii) of Section 3.1."""
        overlay = CanOverlay(dims, size=size, seed=6)
        rng = np.random.default_rng(1)
        for peer in list(overlay.peers())[::5]:
            links = peer.links()
            for _ in range(40):
                point = tuple(rng.random(dims))
                if peer.zone.contains(point):
                    continue
                owners = [ln for ln in links if ln.region.contains(point)]
                assert len(owners) >= 1, (peer.zone, point)
                # boundary overlap between frustums is measure-zero
                assert len(owners) <= 2

    def test_frustum_top_is_shared_face(self):
        overlay = CanOverlay(2, size=16, seed=7)
        peer = overlay.peers()[0]
        for adj, link in zip(peer.neighbors(), peer.links()):
            frustum = link.region.frustum
            assert frustum.top.lo[adj.axis] == frustum.top.hi[adj.axis]


class TestRouting:
    def test_greedy_route_reaches_owner(self):
        from repro.net.routing import greedy_route

        overlay = CanOverlay(2, size=48, seed=8)
        rng = np.random.default_rng(2)
        for _ in range(20):
            point = tuple(rng.random(2))
            start = overlay.random_peer(rng)
            owner, path = greedy_route(start, point)
            assert owner.zone.contains(point)
            assert path[0] is start and path[-1] is owner

    def test_route_hops_scale_with_grid(self):
        from repro.net.routing import greedy_route

        overlay = CanOverlay(2, size=100, seed=9)
        rng = np.random.default_rng(3)
        hops = [len(greedy_route(overlay.random_peer(rng),
                                 tuple(rng.random(2)))[1]) - 1
                for _ in range(20)]
        # CAN routing is O(d * n^(1/d)): generous envelope
        assert max(hops) <= 4 * 2 * int(np.ceil(100 ** 0.5))


class TestSharedFace:
    def test_abutting(self):
        a = Rect((0, 0), (0.5, 1))
        b = Rect((0.5, 0.25), (1, 0.75))
        axis, side, face = _shared_face(a, b)
        assert (axis, side) == (0, +1)
        assert face == Rect((0.5, 0.25), (0.5, 0.75))

    def test_corner_contact_rejected(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.5, 0.5), (1, 1))
        assert _shared_face(a, b) is None

    def test_gap_rejected(self):
        a = Rect((0, 0), (0.4, 1))
        b = Rect((0.6, 0), (1, 1))
        assert _shared_face(a, b) is None
