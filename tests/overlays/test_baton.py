"""Unit tests for the BATON overlay."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.overlays.baton import BatonOverlay, BatonPeer
from repro.overlays.zcurve import ZCurve


def build(size=63, n_tuples=2000, dims=2, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.random((n_tuples, dims)) * 0.999
    return BatonOverlay(size, data, zcurve=ZCurve(dims, 8), seed=seed), data


class TestStructure:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            BatonOverlay(0, np.zeros((0, 2)), zcurve=ZCurve(2, 4))

    def test_fresh_peer_has_usable_store(self):
        # Regression: BatonPeer used to defer store construction to the
        # overlay's load pass, so a half-constructed peer crashed on any
        # store access.  The store must exist (empty) from __init__.
        peer = BatonPeer(0, 0, 0, dims=2)
        assert len(peer.store) == 0
        assert peer.store.array.shape == (0, 2)

    def test_ranges_partition_keyspace(self):
        overlay, _ = build()
        ranges = sorted((p.range_lo, p.range_hi) for p in overlay.peers())
        assert ranges[0][0] == 0
        assert ranges[-1][1] == overlay.zcurve.max_key + 1
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_in_order_adjacency(self):
        overlay, _ = build()
        for peer in overlay.peers():
            if peer.adjacent_next is not None:
                assert peer.range_hi == peer.adjacent_next.range_lo

    def test_spans_contain_ranges(self):
        overlay, _ = build()
        for peer in overlay.peers():
            assert peer.span_lo <= peer.range_lo
            assert peer.range_hi <= peer.span_hi

    def test_root_span_is_everything(self):
        overlay, _ = build()
        root = overlay.peers()[0]
        assert root.span_lo == 0
        assert root.span_hi == overlay.zcurve.max_key + 1

    def test_routing_tables_same_level(self):
        overlay, _ = build(size=31)
        for peer in overlay.peers():
            for entry in peer.left_table + peer.right_table:
                assert entry.level == peer.level

    def test_all_tuples_placed(self):
        overlay, data = build(n_tuples=500)
        assert overlay.total_tuples() == 500

    def test_tuples_in_owner_range(self):
        overlay, _ = build(size=15, n_tuples=300)
        for peer in overlay.peers():
            for point in peer.store.iter_points():
                key = overlay.zcurve.encode(point)
                assert peer.contains(key)

    def test_load_balanced_with_quantile_ranges(self):
        overlay, _ = build(size=63, n_tuples=6300)
        sizes = [len(p.store) for p in overlay.peers()]
        assert max(sizes) <= 3 * (6300 // 63)


class TestRouting:
    @given(st.integers(0, 2 ** 16 - 1), st.integers(0, 61))
    @settings(max_examples=60, deadline=None)
    def test_route_reaches_owner(self, key, start_index):
        overlay, _ = build(size=62)
        key = key % (overlay.zcurve.max_key + 1)
        start = overlay.peers()[start_index]
        peer, hops = overlay.route(start, key)
        assert peer.contains(key)
        assert hops >= 0

    def test_route_is_logarithmic(self):
        overlay, _ = build(size=255)
        rng = np.random.default_rng(3)
        hops = [overlay.route(overlay.random_peer(rng),
                              int(rng.integers(overlay.zcurve.max_key)))[1]
                for _ in range(60)]
        assert max(hops) <= 4 * 8  # 4x log2(255)

    def test_route_to_own_key_is_free(self):
        overlay, _ = build(size=31)
        peer = overlay.peers()[7]
        found, hops = overlay.route(peer, peer.range_lo)
        assert found is peer and hops == 0
