"""Substrate invariants of the structure-of-arrays overlay arena.

The mirror must be an *exact* snapshot (same peer ids, link order,
bit-equal regions and store rows), the direct-build ``MidasArena`` must
be a genuine MIDAS network (zones partition the domain, stores match
zones, implicit links decode to sibling-subtree partitions), and the
flyweight peer views must honor the read-only contract (frozen stores,
shared liveness flags).  docs/SCALE.md documents the layout these tests
pin down.
"""

import numpy as np
import pytest

from repro import CanOverlay, ChordOverlay, MidasOverlay
from repro.common.geometry import Rect, contains_batch
from repro.common.store import LocalStore
from repro.overlays import ArenaPeer, MidasArena, from_overlay, midas_arena


def midas_network(seed, peers=36, tuples=260):
    rng = np.random.default_rng(seed)
    data = rng.random((tuples, 2)) * 0.999
    overlay = MidasOverlay(2, size=1, seed=seed, join_policy="data")
    overlay.load(data)
    overlay.grow_to(peers)
    return overlay


class TestMirrorSnapshot:
    def test_structural_equality_midas(self):
        overlay = midas_network(3)
        arena = from_overlay(overlay)
        assert len(arena) == len(overlay)
        for obj, mirrored in zip(overlay.peers(), arena.peers()):
            assert mirrored.peer_id == obj.peer_id
            assert np.array_equal(mirrored.store.array, obj.store.array)
            obj_links = obj.links()
            arena_links = mirrored.links()
            assert len(arena_links) == len(obj_links)
            for a, b in zip(obj_links, arena_links):
                assert b.peer.peer_id == a.peer.peer_id
                assert b.region == a.region

    @pytest.mark.parametrize("kind", ("chord", "can"))
    def test_structural_equality_other_families(self, kind):
        if kind == "chord":
            overlay = ChordOverlay(size=24, seed=5)
            overlay.load(np.random.default_rng(5).random((200, 1)) * 0.999)
        else:
            rng = np.random.default_rng(5)
            overlay = CanOverlay(2, size=1, seed=5)
            overlay.load(rng.random((200, 2)) * 0.999)
            overlay.grow_to(25)
        arena = from_overlay(overlay)
        assert arena.strict_default == (kind == "chord")
        for obj, mirrored in zip(overlay.peers(), arena.peers()):
            assert np.array_equal(mirrored.store.array, obj.store.array)
            for a, b in zip(obj.links(), mirrored.links()):
                assert b.peer.peer_id == a.peer.peer_id
                assert b.region == a.region

    def test_replica_targets_match_source(self):
        overlay = midas_network(9)
        arena = from_overlay(overlay, replica_depth=4)
        for obj, mirrored in zip(overlay.peers(), arena.peers()):
            expected = [h.peer_id
                        for h in overlay.replica_targets(obj, 3)]
            got = [h.peer_id
                   for h in arena.replica_targets(mirrored, 3)]
            assert got == expected

    def test_under_snapshot_raises_not_truncates(self):
        overlay = midas_network(9)
        arena = from_overlay(overlay, replica_depth=1)
        with pytest.raises(ValueError, match="replica_depth"):
            arena.replica_targets(arena.peer(0), 3)

    def test_mixed_region_families_rejected(self):
        overlay = midas_network(2)
        hybrid = from_overlay(overlay)
        with pytest.raises(ValueError):
            type(hybrid)(kind="spiral", dims=2,
                         peer_ids=hybrid.peer_ids,
                         store_ptr=hybrid.store_ptr, tuples=hybrid.tuples,
                         link_ptr=hybrid.link_ptr,
                         link_target=hybrid.link_target,
                         link_payload=hybrid.link_payload,
                         replica_ptr=hybrid.replica_ptr,
                         replica_idx=hybrid.replica_idx)


class TestMidasArena:
    @pytest.mark.parametrize("n", (1, 2, 7, 16, 37))
    def test_zones_partition_domain(self, n):
        arena = midas_arena(n, dims=2, seed=4)
        total = 0.0
        for i in range(n):
            zone = arena.zone(i)
            total += zone.volume()
        assert total == pytest.approx(1.0)
        rng = np.random.default_rng(11)
        for point in rng.random((40, 2)):
            point = tuple(point)
            owners = [i for i in range(n)
                      if arena.zone(i).contains(point)]
            assert owners == [arena.locate_index(point)]

    def test_depths_and_paths_roundtrip(self):
        arena = midas_arena(37, dims=2, seed=4)
        depths = {arena.depth_of(i) for i in range(len(arena))}
        assert depths <= {arena.base_depth, arena.base_depth + 1}
        for i in range(len(arena)):
            value, length = arena.path_of(i), arena.depth_of(i)
            assert arena._is_leaf(value, length)
            assert arena._leaf_index(value, length) == i

    def test_stores_match_zones(self):
        rng = np.random.default_rng(6)
        data = rng.random((400, 2)) * 0.999
        arena = midas_arena(29, dims=2, seed=6, data=data)
        assert arena.total_tuples() == len(data)
        for i in range(len(arena)):
            rows = arena.store_rows(i)
            if not len(rows):
                continue
            zone = arena.zone(i)
            assert contains_batch(rows, np.asarray(zone.lo),
                                  np.asarray(zone.hi)).all()

    def test_links_partition_zone_complement(self):
        arena = midas_arena(21, dims=2, seed=3)
        for i in range(len(arena)):
            links = arena.decode_links(i)
            assert len(links) == arena.depth_of(i)
            covered = arena.zone(i).volume() + sum(
                link.region.rect.volume() for link in links)
            assert covered == pytest.approx(1.0)
            for link in links:
                assert link.peer.index != i
                assert link.region.rect.contains(
                    arena.zone(link.peer.index).center)

    def test_precomputed_links_equal_on_demand(self):
        lazy = midas_arena(53, dims=2, seed=8)
        eager = midas_arena(53, dims=2, seed=8, precompute_links=True)
        assert eager.link_target is not None
        for i in range(53):
            assert [l.peer.index for l in eager.decode_links(i)] \
                == [l.peer.index for l in lazy.decode_links(i)]

    def test_replica_targets_distinct_and_ordered(self):
        arena = midas_arena(37, dims=2, seed=2)
        peer = arena.peer(5)
        holders = arena.replica_targets(peer, 4)
        ids = [h.index for h in holders]
        assert len(set(ids)) == len(ids) == 4
        assert peer.index not in ids
        # The first copy is the merge partner: the deepest sibling pool.
        assert holders[0].index in range(*arena._subtree_leaf_range(
            arena.path_of(5) ^ 1, arena.depth_of(5)))
        assert arena.replica_targets(peer, 0) == []

    def test_extra_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MidasArena(dims=2, store_ptr=np.zeros(7, dtype=np.int64),
                       tuples=np.empty((0, 2)), base_depth=1, extra=4)


class TestPeerViews:
    def test_views_are_cached_flyweights(self):
        arena = midas_arena(9, dims=2, seed=1)
        assert arena.peer(3) is arena.peer(3)
        assert arena.peers()[3] is arena.peer(3)

    def test_sequence_protocol(self):
        arena = midas_arena(9, dims=2, seed=1)
        peers = arena.peers()
        assert len(peers) == 9
        assert isinstance(peers[0], ArenaPeer)
        assert peers[-1].index == 8
        assert [p.index for p in peers[2:5]] == [2, 3, 4]
        assert [p.index for p in peers] == list(range(9))
        with pytest.raises(IndexError):
            peers[9]

    def test_frozen_store_mutators_raise(self):
        rng = np.random.default_rng(0)
        arena = midas_arena(9, dims=2, seed=1,
                            data=rng.random((50, 2)) * 0.999)
        store = arena.peer(0).store
        with pytest.raises(TypeError):
            store.insert((0.1, 0.1))
        with pytest.raises(TypeError):
            store.bulk_load(np.zeros((1, 2)))
        with pytest.raises(TypeError):
            store.extract(Rect.unit(2))
        with pytest.raises(TypeError):
            store.take_all()
        with pytest.raises(ValueError):
            store.array[...] = 0.0

    def test_substrate_rows_not_writeable(self):
        arena = midas_arena(5, dims=2, seed=1,
                            data=np.full((5, 2), 0.25))
        with pytest.raises(ValueError):
            arena.tuples[0, 0] = 0.5

    def test_alive_flag_reads_through(self):
        arena = midas_arena(9, dims=2, seed=1)
        peer = arena.peer(4)
        assert peer.alive
        peer.alive = False
        assert not arena.alive[4]
        assert not arena.peer(4).alive
        peer.alive = True
        assert arena.alive.all()

    def test_epoch_and_random_peer(self):
        arena = midas_arena(9, dims=2, seed=1)
        assert arena.epoch == 0
        rng = np.random.default_rng(3)
        assert arena.random_peer(rng).index in range(9)

    def test_nbytes_counts_substrate(self):
        small = midas_arena(8, dims=2, seed=1)
        big = midas_arena(4096, dims=2, seed=1)
        assert 0 < small.nbytes() < big.nbytes()


class TestViewStores:
    def test_view_of_shares_memory(self):
        base = np.random.default_rng(1).random((12, 3))
        view = LocalStore.view_of(base[4:9])
        assert len(view) == 5
        assert view.dims == 3
        assert np.shares_memory(view.array, base)

    def test_view_of_never_freezes_caller(self):
        base = np.random.default_rng(1).random((6, 2))
        LocalStore.view_of(base)
        base[0, 0] = 0.5  # the caller's array stays writeable

    def test_view_of_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LocalStore.view_of(np.zeros(4))
        with pytest.raises(ValueError):
            LocalStore.view_of(np.zeros((4, 0)))

    def test_prime_seeds_cache_without_counter_noise(self):
        store = LocalStore(2, [(0.2, 0.4), (0.6, 0.1)])
        store.prime("key", "primed")
        assert store.cached("key", lambda: "computed") == "primed"
        assert store.cache_hits == 1
        store.prime("key", "other")  # existing keys are not replaced
        assert store.cached("key", lambda: "computed") == "primed"

    def test_prime_respects_cache_switch(self, monkeypatch):
        store = LocalStore(2, [(0.2, 0.4)])
        monkeypatch.setattr(LocalStore, "cache_enabled", False)
        store.prime("key", "primed")
        assert store.cached("key", lambda: "computed") == "computed"
        assert store.cache_hits == store.cache_misses == 0
