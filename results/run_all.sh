#!/bin/bash
# Regenerates every figure at the default (laptop) scale and records the
# series used by EXPERIMENTS.md.  fig8 runs through results/run_fig8.py
# (reduced repetition: its 6-d point has a 2,774-tuple skyline, which the
# DSL competitor ships along every hierarchy edge).
set -u
cd /root/repo
for fig in fig4 fig5 fig6 lemmas ablation fig7 fig9 fig10 fig11 fig12 decreasing; do
  echo "=== $fig ($(date +%T)) ==="
  python -m repro.experiments "$fig" --scale default > "results/$fig.txt" 2>&1
  echo "$fig done rc=$?"
done
echo "=== fig8 ($(date +%T)) ==="
python results/run_fig8.py > results/fig8.txt 2>&1
echo "fig8 done rc=$?"
