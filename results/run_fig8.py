"""fig8 at reduced query count (big-skyline dims are expensive in DSL)."""
from repro.experiments.config import default_config
from repro.experiments.runner import print_rows
from repro.experiments.skyline_figures import fig8_skyline_dims

config = default_config().scaled(queries=4, network_seeds=(7,),
                                 skyline_dims=(2, 3, 4, 5, 6))
print_rows(fig8_skyline_dims(config))
