#!/bin/bash
set -u
cd /root/repo
for fig in fig8 fig9 fig10 fig11 fig12 decreasing; do
  echo "=== $fig ($(date +%T)) ==="
  python -m repro.experiments "$fig" --scale default > "results/$fig.txt" 2>&1
  echo "$fig done rc=$?"
done
