"""Z-order (Morton) curve: the multi-dim → 1-d mapping SSP relies on.

BATON manages a one-dimensional key space, so SSP [18] maps tuples through
a Z-curve.  Besides encoding, skyline pruning over BATON needs to reason
about *key ranges*: a contiguous Z-range decomposes into O(bits) maximal
quadtree cells, each an axis-aligned rectangle, and a peer's range can be
pruned when every cell is dominated (see :mod:`repro.baselines.ssp`).

Bits are interleaved dimension-major: bit level 0 of every dimension
first (dim 0's most significant bit is the encoded key's most significant
bit), so lexicographic key order follows the familiar Z pattern.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..common.geometry import Rect

__all__ = ["ZCurve"]


class ZCurve:
    """A fixed-resolution Morton codec over the unit cube."""

    def __init__(self, dims: int, bits_per_dim: int = 10) -> None:
        if dims <= 0 or bits_per_dim <= 0:
            raise ValueError("dims and bits_per_dim must be positive")
        if dims * bits_per_dim > 62:
            raise ValueError("total bits must fit in a 62-bit key")
        self.dims = dims
        self.bits_per_dim = bits_per_dim
        self.total_bits = dims * bits_per_dim
        self.max_key = (1 << self.total_bits) - 1

    # -- encoding -------------------------------------------------------------

    def encode(self, point: Sequence[float]) -> int:
        """The Morton key of a point in ``[0, 1)^dims``."""
        if len(point) != self.dims:
            raise ValueError(f"expected {self.dims}-d point")
        scale = 1 << self.bits_per_dim
        coords = [min(scale - 1, max(0, int(v * scale))) for v in point]
        key = 0
        for level in range(self.bits_per_dim - 1, -1, -1):
            for coord in coords:
                key = (key << 1) | ((coord >> level) & 1)
        return key

    def encode_batch(self, array: np.ndarray) -> np.ndarray:
        """Morton keys for an ``(m, dims)`` array."""
        array = np.asarray(array, dtype=float)
        scale = 1 << self.bits_per_dim
        coords = np.clip((array * scale).astype(np.int64), 0, scale - 1)
        keys = np.zeros(len(array), dtype=np.int64)
        for level in range(self.bits_per_dim - 1, -1, -1):
            for dim in range(self.dims):
                keys = (keys << 1) | ((coords[:, dim] >> level) & 1)
        return keys

    # -- cells ----------------------------------------------------------------

    def cell_rect(self, prefix: int, prefix_bits: int) -> Rect:
        """The rectangle of the quadtree cell with the given key prefix.

        A cell is the set of keys sharing ``prefix_bits`` leading bits; its
        shadow in space is a box whose dimension ``d`` has resolution
        ``ceil((prefix_bits - d) / dims)`` bits.
        """
        if not 0 <= prefix_bits <= self.total_bits:
            raise ValueError("prefix_bits out of range")
        per_dim_bits = [0] * self.dims
        per_dim_val = [0] * self.dims
        for position in range(prefix_bits):
            dim = position % self.dims
            bit = (prefix >> (prefix_bits - 1 - position)) & 1
            per_dim_val[dim] = (per_dim_val[dim] << 1) | bit
            per_dim_bits[dim] += 1
        lo, hi = [], []
        for val, bits in zip(per_dim_val, per_dim_bits):
            size = 1.0 / (1 << bits)
            lo.append(val * size)
            hi.append((val + 1) * size)
        return Rect(tuple(lo), tuple(hi))

    def range_cells(self, lo_key: int, hi_key: int
                    ) -> Iterator[tuple[int, int]]:
        """Maximal cells covering the inclusive key range ``[lo, hi]``.

        Yields ``(prefix, prefix_bits)`` pairs — the canonical segment-tree
        cover, O(total_bits) cells for any range.
        """
        if lo_key > hi_key:
            return
        lo_key = max(0, lo_key)
        hi_key = min(self.max_key, hi_key)
        stack = [(0, 0)]
        while stack:
            prefix, bits = stack.pop()
            shift = self.total_bits - bits
            cell_lo = prefix << shift
            cell_hi = cell_lo + (1 << shift) - 1
            if cell_hi < lo_key or cell_lo > hi_key:
                continue
            if lo_key <= cell_lo and cell_hi <= hi_key:
                yield prefix, bits
                continue
            stack.append((prefix << 1, bits + 1))
            stack.append(((prefix << 1) | 1, bits + 1))

    def range_rects(self, lo_key: int, hi_key: int) -> list[Rect]:
        """The rectangles of :meth:`range_cells`."""
        return [self.cell_rect(prefix, bits)
                for prefix, bits in self.range_cells(lo_key, hi_key)]
