"""The MIDAS overlay: a DHT shaped as a virtual k-d tree (Section 2.3).

Every peer is a leaf of the split tree and stores the tuples of its zone.
Peer ``w`` keeps one link per depth ``i <= w.depth``, pointing at *some*
peer inside the sibling subtree rooted at depth ``i``; RIPPLE assigns that
whole sibling subtree's rectangle as the link's region, which makes the
regions of ``w``'s links an exact partition of the domain minus ``w``'s
zone — the property the framework's restriction areas rely on.

Which peer inside a sibling subtree becomes the link target is a *policy*:

* ``"random"`` — the original MIDAS choice (any peer of the subtree).
* ``"boundary"`` — the Section 5.2 optimization: prefer a peer whose
  identifier matches a boundary pattern (see
  :mod:`repro.overlays.patterns`), i.e. one whose zone hugs the lower
  domain boundary where skyline tuples live.

Churn: joins route to a uniformly random key and split the hosting leaf
(alternating split dimension, midpoint or data-median split value);
departures contract the tree, promoting a peer from the sibling subtree
when the sibling is not a leaf — the replacement scheme of the MIDAS paper.
"""

from __future__ import annotations

from itertools import zip_longest
from typing import Iterator, Literal, Sequence

import numpy as np

from ..common.geometry import Point, Rect
from ..common.hashing import mix, path_key
from ..common.store import LocalStore, Replica
from ..core.framework import Link
from ..core.regions import RectRegion, domain_region
from .kdtree import Node, SplitTree
from .patterns import alive_patterns

__all__ = ["MidasPeer", "MidasOverlay"]

LinkPolicy = Literal["random", "boundary"]
SplitRule = Literal["midpoint", "median"]
JoinPolicy = Literal["uniform", "data"]


class MidasPeer:
    """A MIDAS peer: one leaf of the virtual k-d tree."""

    __slots__ = ("peer_id", "overlay", "leaf", "store", "anchor", "alive",
                 "replicas", "_links")

    def __init__(self, peer_id: int, overlay: "MidasOverlay", leaf: Node,
                 anchor: Point) -> None:
        self.peer_id = peer_id
        self.overlay = overlay
        self.leaf = leaf
        self.store = LocalStore(overlay.dims)
        self.anchor = anchor
        #: Liveness flag for fault scenarios; FaultPlan.from_overlay freezes
        #: these into a crash schedule.  Fault-free engines ignore it.
        self.alive = True
        #: Replicas of other peers' stores hosted here, keyed by owner id;
        #: maintained by :class:`~repro.overlays.replication.ReplicaDirectory`.
        self.replicas: dict[int, "Replica"] = {}
        self._links: tuple[int, list[Link]] | None = None

    @property
    def zone(self) -> Rect:
        return self.leaf.rect

    @property
    def depth(self) -> int:
        return self.leaf.depth

    @property
    def path(self) -> tuple[int, ...]:
        return self.leaf.path

    def id_string(self) -> str:
        return self.leaf.id_string()

    def links(self) -> list[Link]:
        """One link per depth; regions are the sibling subtree rectangles.

        The link table is recomputed lazily after churn (the overlay's
        epoch counter invalidates the cache).
        """
        epoch = self.overlay.tree.epoch
        if self._links is not None and self._links[0] == epoch:
            return self._links[1]
        links = []
        for subtree in self.overlay.tree.sibling_subtrees(self.leaf):
            target = self.overlay.representative(subtree, self)
            links.append(Link(peer=target, region=RectRegion(subtree.rect)))
        self._links = (epoch, links)
        return links

    def __repr__(self) -> str:
        return f"MidasPeer(id={self.peer_id}, path={self.id_string() or 'root'})"


class MidasOverlay:
    """An omniscient simulation of a MIDAS network."""

    def __init__(
        self,
        dims: int,
        *,
        size: int = 1,
        seed: int = 0,
        link_policy: LinkPolicy = "random",
        split_rule: SplitRule = "midpoint",
        join_policy: JoinPolicy = "uniform",
    ) -> None:
        self.dims = dims
        self.seed = seed
        self.link_policy: LinkPolicy = link_policy
        self.split_rule: SplitRule = split_rule
        self.join_policy: JoinPolicy = join_policy
        self._data_pool: list[np.ndarray] = []
        self._pool_sizes: list[int] = []
        self.tree = SplitTree(dims)
        self.rng = np.random.default_rng(mix(seed, 0xD147))
        self._peers: list[MidasPeer] = []
        self._next_id = 0
        first = self._new_peer(self.tree.root)
        self.tree.root.payload = first
        self.grow_to(size)

    # -- registry ---------------------------------------------------------

    def _new_peer(self, leaf: Node) -> MidasPeer:
        peer = MidasPeer(self._next_id, self, leaf, leaf.rect.sample(self.rng))
        self._next_id += 1
        self._peers.append(peer)
        return peer

    def __len__(self) -> int:
        return len(self._peers)

    def peers(self) -> Sequence[MidasPeer]:
        return self._peers

    def iter_peers(self) -> Iterator[MidasPeer]:
        return iter(self._peers)

    def random_peer(self, rng: np.random.Generator | None = None) -> MidasPeer:
        rng = rng or self.rng
        return self._peers[int(rng.integers(len(self._peers)))]

    def locate(self, point: Sequence[float]) -> MidasPeer:
        return self.tree.locate(point).payload

    def domain(self) -> RectRegion:
        return domain_region(self.dims)

    def max_links(self) -> int:
        """The paper's Delta: the largest link count of any peer."""
        return max(peer.depth for peer in self._peers)

    # -- churn ------------------------------------------------------------

    def join(self) -> MidasPeer:
        """A new physical peer joins.

        Under the ``"uniform"`` policy the joiner lands at a uniformly
        random key.  Under ``"data"`` it lands at the key of a random
        stored tuple, so peer density tracks data density — the effect of
        MIDAS' load-driven splitting, and the balanced setting the paper's
        experiments presume.
        """
        point = self._join_point()
        host_leaf = self.tree.locate(point)
        return self._split_host(host_leaf, point)

    def _join_point(self) -> Point:
        if self.join_policy == "data" and self._pool_sizes:
            total = self._pool_sizes[-1]
            pick = int(self.rng.integers(total))
            for block, cumulative in zip(self._data_pool, self._pool_sizes):
                if pick < cumulative:
                    row = block[pick - (cumulative - len(block))]
                    return tuple(float(v) for v in row)
        return tuple(float(v) for v in self.rng.random(self.dims))

    def _split_host(self, host_leaf: Node, point: Point) -> MidasPeer:
        host: MidasPeer = host_leaf.payload
        dim = host_leaf.depth % self.dims
        value = self._split_value(host_leaf, dim)
        left, right = self.tree.split_leaf(host_leaf, dim, value)
        host_child = left if host.anchor[dim] < value else right
        new_child = right if host_child is left else left
        host.leaf = host_child
        host_child.payload = host
        joining_anchor = point if new_child.rect.contains(point) \
            else new_child.rect.sample(self.rng)
        joiner = self._new_peer(new_child)
        joiner.anchor = joining_anchor
        new_child.payload = joiner
        joiner.store.bulk_load(host.store.extract(new_child.rect))
        return joiner

    def _split_value(self, leaf: Node, dim: int) -> float:
        lo, hi = leaf.rect.lo[dim], leaf.rect.hi[dim]
        if self.split_rule == "median" and len(leaf.payload.store) >= 2:
            median = float(np.median(leaf.payload.store.array[:, dim]))
            if lo < median < hi:
                return median
        return (lo + hi) / 2.0

    def leave(self, peer: MidasPeer | None = None) -> None:
        """A peer departs; its zone is absorbed per the MIDAS protocol."""
        if len(self._peers) <= 1:
            raise ValueError("cannot remove the last peer")
        peer = peer or self.random_peer()
        leaf = peer.leaf
        parent = leaf.parent
        assert parent is not None
        sibling = parent.child(1 - leaf.path[-1])
        if sibling.is_leaf:
            survivor: MidasPeer = sibling.payload
            survivor.store.bulk_load(peer.store.take_all())
            merged = self.tree.merge_children(parent)
            merged.payload = survivor
            survivor.leaf = merged
        else:
            # Promote a peer from a deepest leaf pair of the sibling
            # subtree: its twin absorbs its zone, and it adopts the
            # departing peer's zone and tuples.
            pair = self.tree.find_leaf_pair(sibling)
            mover: MidasPeer = pair.child(1).payload
            absorber: MidasPeer = pair.child(0).payload
            absorber.store.bulk_load(mover.store.take_all())
            merged = self.tree.merge_children(pair)
            merged.payload = absorber
            absorber.leaf = merged
            leaf.payload = mover
            mover.leaf = leaf
            mover.store = peer.store
            mover.anchor = leaf.rect.sample(self.rng)
        self._peers.remove(peer)

    def grow_to(self, size: int) -> None:
        while len(self._peers) < size:
            self.join()

    def shrink_to(self, size: int) -> None:
        if size < 1:
            raise ValueError("network size must stay positive")
        while len(self._peers) > size:
            self.leave()

    # -- data -------------------------------------------------------------

    def load(self, array: np.ndarray) -> None:
        """Distribute a dataset to the peers owning each tuple's key."""
        array = np.asarray(array, dtype=float)
        self.tree.partition(
            array, lambda leaf, rows: leaf.payload.store.bulk_load(rows))
        self._data_pool.append(array)
        previous = self._pool_sizes[-1] if self._pool_sizes else 0
        self._pool_sizes.append(previous + len(array))

    def total_tuples(self) -> int:
        return sum(len(peer.store) for peer in self._peers)

    # -- replication --------------------------------------------------------

    def replica_targets(self, peer: MidasPeer, count: int) -> list[MidasPeer]:
        """Structural replica buddies: peers of ``peer``'s sibling subtrees.

        Candidates are interleaved across the sibling subtrees nearest
        first, so the first copy lands on the MIDAS merge partner (the
        peer that would absorb ``peer``'s zone on departure — it can take
        the zone over with the data already in hand) and further copies
        land in structurally distinct branches of the virtual tree,
        surviving subtree-local failures.
        """
        if count <= 0:
            return []
        pools = [[leaf.payload for leaf in self.tree.iter_leaves(subtree)]
                 for subtree in reversed(self.tree.sibling_subtrees(peer.leaf))]
        chosen: list[MidasPeer] = []
        seen = {peer.peer_id}
        for tier in zip_longest(*pools):
            for buddy in tier:
                if buddy is None or buddy.peer_id in seen:
                    continue
                seen.add(buddy.peer_id)
                chosen.append(buddy)
                if len(chosen) == count:
                    return chosen
        return chosen

    # -- link targets -------------------------------------------------------

    def representative(self, subtree: Node, owner: MidasPeer) -> MidasPeer:
        """The peer inside ``subtree`` that ``owner`` links to."""
        if self.link_policy == "boundary":
            alive = alive_patterns(subtree.path, self.dims)
            if alive:
                return self._boundary_descent(subtree, owner, sorted(alive))
        return self._random_descent(subtree, owner)

    def _random_descent(self, subtree: Node, owner: MidasPeer) -> MidasPeer:
        node = subtree
        while not node.is_leaf:
            bit = mix(self.seed, owner.peer_id, path_key(node.path)) & 1
            node = node.child(bit)
        return node.payload

    def _boundary_descent(self, subtree: Node, owner: MidasPeer,
                          alive: list[int]) -> MidasPeer:
        """Descend to a leaf whose id matches a still-alive boundary pattern.

        Free positions (``i mod D == j``) are chosen pseudo-randomly to
        spread link targets across the boundary; constrained positions
        must take the 0 child, which always exists in a binary tree.
        """
        choice = mix(self.seed, owner.peer_id, path_key(subtree.path), 0xB0)
        pattern = alive[choice % len(alive)]
        node = subtree
        while not node.is_leaf:
            if node.depth % self.dims == pattern:
                bit = mix(self.seed, owner.peer_id, path_key(node.path)) & 1
            else:
                bit = 0
            node = node.child(bit)
        return node.payload

    # -- construction helpers ---------------------------------------------

    @classmethod
    def complete(cls, dims: int, depth: int, *, seed: int = 0,
                 link_policy: LinkPolicy = "random") -> "MidasOverlay":
        """A perfectly balanced overlay of ``2**depth`` peers.

        Used by the latency-analysis tests: on a complete tree the
        worst-case formulas of Lemmas 1-3 are attained exactly.
        """
        overlay = cls(dims, seed=seed, link_policy=link_policy)
        for _ in range(depth):
            for leaf in list(overlay.tree.iter_leaves()):
                point = leaf.rect.center
                overlay._split_host(leaf, point)
        return overlay
