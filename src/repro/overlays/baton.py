"""The BATON overlay: a balanced tree over a one-dimensional key space.

BATON [10] organizes peers as the nodes (not just leaves) of a balanced
binary tree.  Every node owns a contiguous range of the key space; ranges
follow the in-order traversal.  Besides parent/child and adjacent
(in-order neighbor) links, each node keeps left and right *routing tables*
pointing to same-level nodes at exponentially growing offsets, giving
O(log n) lookups.

The simulator builds the tree directly at a requested size with
data-quantile ranges (the steady state BATON's load balancing converges
to) — the experiments measure query cost on static snapshots of different
sizes, as the paper does for its SSP competitor.  Keys are Morton codes
(:class:`~repro.overlays.zcurve.ZCurve`) of the tuples, which is how SSP
maps multi-dimensional data onto BATON.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..common.geometry import Rect
from ..common.store import LocalStore
from .zcurve import ZCurve

__all__ = ["BatonPeer", "BatonOverlay"]


class BatonPeer:
    """One BATON node: a key range plus tree and routing-table links."""

    __slots__ = ("peer_id", "level", "offset", "range_lo", "range_hi",
                 "span_lo", "span_hi", "parent", "left", "right",
                 "adjacent_prev", "adjacent_next", "left_table",
                 "right_table", "store", "cached_cells", "alive")

    def __init__(self, peer_id: int, level: int, offset: int,
                 dims: int) -> None:
        self.peer_id = peer_id
        self.level = level
        self.offset = offset
        #: Liveness flag for fault scenarios (see FaultPlan.from_overlay).
        self.alive = True
        self.range_lo = 0
        self.range_hi = 0
        self.span_lo = 0
        self.span_hi = 0
        self.parent: BatonPeer | None = None
        self.left: BatonPeer | None = None
        self.right: BatonPeer | None = None
        self.adjacent_prev: BatonPeer | None = None
        self.adjacent_next: BatonPeer | None = None
        self.left_table: list[BatonPeer] = []
        self.right_table: list[BatonPeer] = []
        #: Always a live store (empty until the overlay loads data) — a
        #: half-constructed peer with no store was a latent crash site.
        self.store: LocalStore = LocalStore(dims)
        #: Set lazily by SSP: z-cells covering the peer's key range.
        self.cached_cells: list[Rect] | None = None

    def contains(self, key: int) -> bool:
        return self.range_lo <= key < self.range_hi

    def span_contains(self, key: int) -> bool:
        return self.span_lo <= key < self.span_hi

    def __repr__(self) -> str:
        return (f"BatonPeer(id={self.peer_id}, level={self.level}, "
                f"range=[{self.range_lo}, {self.range_hi}))")


class BatonOverlay:
    """An omniscient simulation of a BATON network keyed by a Z-curve."""

    def __init__(self, size: int, data: np.ndarray, *, zcurve: ZCurve,
                 seed: int = 0) -> None:
        if size < 1:
            raise ValueError("size must be positive")
        self.zcurve = zcurve
        self.rng = np.random.default_rng(seed ^ 0xBA70)
        self.dims = zcurve.dims
        self._peers = [BatonPeer(i, _level(i + 1), _offset(i + 1), self.dims)
                       for i in range(size)]
        self._wire_tree(size)
        self._assign_ranges(np.asarray(data, dtype=float))
        self._load(np.asarray(data, dtype=float))

    # -- construction -------------------------------------------------------

    def _wire_tree(self, size: int) -> None:
        peers = self._peers
        for i, peer in enumerate(peers):
            heap = i + 1
            if heap > 1:
                peer.parent = peers[heap // 2 - 1]
            if 2 * heap <= size:
                peer.left = peers[2 * heap - 1]
            if 2 * heap + 1 <= size:
                peer.right = peers[2 * heap]
        # same-level routing tables at offsets +-2^j
        by_level: dict[int, dict[int, BatonPeer]] = {}
        for peer in peers:
            by_level.setdefault(peer.level, {})[peer.offset] = peer
        for peer in peers:
            row = by_level[peer.level]
            j = 0
            while True:
                delta = 1 << j
                left = row.get(peer.offset - delta)
                right = row.get(peer.offset + delta)
                if left is None and right is None and delta > len(row):
                    break
                if left is not None:
                    peer.left_table.append(left)
                if right is not None:
                    peer.right_table.append(right)
                j += 1

    def _in_order(self) -> list[BatonPeer]:
        out: list[BatonPeer] = []
        stack: list[tuple[BatonPeer, bool]] = [(self._peers[0], False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                out.append(node)
                continue
            if node.right is not None:
                stack.append((node.right, False))
            stack.append((node, True))
            if node.left is not None:
                stack.append((node.left, False))
        return out

    def _assign_ranges(self, data: np.ndarray) -> None:
        n = len(self._peers)
        top = self.zcurve.max_key + 1
        keys = np.sort(self.zcurve.encode_batch(data)) if len(data) else None
        bounds = [0]
        for i in range(1, n):
            if keys is not None and len(keys) >= n:
                candidate = int(keys[(i * len(keys)) // n])
            else:
                candidate = (i * top) // n
            candidate = max(candidate, bounds[-1] + 1)
            candidate = min(candidate, top - (n - i))
            bounds.append(candidate)
        bounds.append(top)
        order = self._in_order()
        for peer, lo, hi in zip(order, bounds, bounds[1:]):
            peer.range_lo, peer.range_hi = lo, hi
        for prev, nxt in zip(order, order[1:]):
            prev.adjacent_next = nxt
            nxt.adjacent_prev = prev
        self._compute_spans(self._peers[0])

    def _compute_spans(self, root: BatonPeer) -> None:
        stack: list[tuple[BatonPeer, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in (node.left, node.right):
                    if child is not None:
                        stack.append((child, False))
                continue
            node.span_lo = node.left.span_lo if node.left else node.range_lo
            node.span_hi = node.right.span_hi if node.right else node.range_hi

    def _load(self, data: np.ndarray) -> None:
        for peer in self._peers:
            peer.store = LocalStore(self.dims)
        if len(data) == 0:
            return
        keys = self.zcurve.encode_batch(data)
        order = self._in_order()
        bounds = [p.range_lo for p in order] + [order[-1].range_hi]
        slot = np.searchsorted(bounds, keys, side="right") - 1
        for i, peer in enumerate(order):
            peer.store.bulk_load(data[slot == i])

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._peers)

    def peers(self) -> Sequence[BatonPeer]:
        return self._peers

    def iter_peers(self) -> Iterator[BatonPeer]:
        return iter(self._peers)

    def random_peer(self, rng: np.random.Generator | None = None) -> BatonPeer:
        rng = rng or self.rng
        return self._peers[int(rng.integers(len(self._peers)))]

    def total_tuples(self) -> int:
        return sum(len(p.store) for p in self._peers)

    # -- routing ---------------------------------------------------------------

    def route(self, start: BatonPeer, key: int) -> tuple[BatonPeer, int]:
        """BATON lookup: returns the responsible peer and the hop count."""
        key = min(max(key, 0), self.zcurve.max_key)
        node = start
        hops = 0
        while not node.contains(key):
            node = self._next_hop(node, key)
            hops += 1
            if hops > 4 * len(self._peers):
                raise RuntimeError(f"BATON routing diverged toward {key}")
        return node, hops

    def _next_hop(self, node: BatonPeer, key: int) -> BatonPeer:
        if node.span_contains(key):
            for child in (node.left, node.right):
                if child is not None and child.span_contains(key):
                    return child
            raise AssertionError("span invariant violated")
        table = node.left_table if key < node.span_lo else node.right_table
        best = None
        for entry in table:
            if entry.span_contains(key):
                return entry
            if key < node.span_lo and entry.span_lo > key:
                best = entry  # farthest non-overshooting left jump
            elif key >= node.span_hi and entry.span_hi <= key + 1:
                best = entry
        if best is not None:
            return best
        assert node.parent is not None, "root spans the whole key space"
        return node.parent


def _level(heap_index: int) -> int:
    return heap_index.bit_length() - 1


def _offset(heap_index: int) -> int:
    return heap_index - (1 << _level(heap_index))
