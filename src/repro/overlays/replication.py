"""Replica placement and promotion: the data half of overlay self-healing.

A crash-stop failure loses a peer's zone *data* unless someone else holds
a copy.  Fault-tolerant structured overlays therefore pair their repair
protocols with neighbor replication — Chord's successor lists, CAN's
zone-takeover neighbors, and sibling "buddies" in tree-shaped structures
(cf. the Rainbow Skip Graph's redundant towers).  This module supplies
that layer for every RIPPLE overlay:

* :class:`ReplicaDirectory` — installs ``copies`` mirrors of each peer's
  :class:`~repro.common.store.LocalStore` onto *structurally chosen*
  neighbors (each overlay's ``replica_targets`` encodes its discipline:
  MIDAS sibling-subtree buddies, Chord successor lists, CAN face
  neighbors), keeps them consistent through the overlay epoch and store
  version counters, and answers "who can stand in for peer *w*?".
* :class:`PromotedPeer` — a live replica holder impersonating a dead
  owner.  It satisfies :class:`~repro.core.framework.PeerLike`: its
  ``peer_id`` is the *owner's* (so the query's processed-set dedup keeps
  exactly-once answer semantics), its ``store`` is the mirrored data, and
  its ``links()`` are the owner's link table (replicated alongside the
  data, as successor lists replicate neighbor sets) — so the promoted
  holder *owns the dead peer's region*: it serves the zone's tuples and
  coordinates the region's sub-queries exactly as the owner would have.
  Liveness, however, is judged against the *holder* through
  :func:`~repro.core.framework.physical_id`.

The supervised engine (:mod:`repro.net.eventsim`) consumes promotions in
two ways: proactively, when the failure detector has already declared a
link target dead (the forward is redirected — the patched-link fast
path), and reactively, when a stranded region has exhausted retries and
re-routing (the supervisor re-issues it against a live holder instead of
abandoning it).
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Callable, Hashable, Iterable, Protocol,
                    Sequence, runtime_checkable)

from ..common.store import LocalStore, Replica

if TYPE_CHECKING:  # pragma: no cover - type-only
    from ..core.framework import Link, PeerLike

__all__ = ["PromotedPeer", "ReplicaDirectory", "ReplicatedOverlay",
           "ReplicatedPeer"]


@runtime_checkable
class ReplicatedPeer(Protocol):
    """A peer that can hold mirrors: ``PeerLike`` plus a replica table.

    Re-declares the :class:`~repro.core.framework.PeerLike` surface
    (structural typing keeps the two interchangeable) and adds the
    per-holder ``replicas`` map the directory installs into.
    """

    peer_id: Hashable
    store: LocalStore
    replicas: dict[Hashable, Replica]

    def links(self) -> Sequence["Link"]:  # pragma: no cover - protocol
        ...


class ReplicatedOverlay(Protocol):
    """What the directory needs from an overlay.

    Enumerable peers that can hold replicas, plus the overlay-specific
    structural placement rule (``replica_targets``).  The epoch counter
    is read dynamically — tree-shaped overlays keep it on ``.tree``,
    flat ones on the overlay itself — see ``_overlay_epoch``.
    """

    def peers(self) -> Sequence[ReplicatedPeer]:  # pragma: no cover
        ...

    def replica_targets(  # pragma: no cover - protocol
            self, peer: ReplicatedPeer,
            count: int) -> Sequence[ReplicatedPeer]:
        ...


class PromotedPeer:
    """A live replica holder standing in for a dead owner (PeerLike).

    Impersonation split: the *logical* identity (``peer_id``, the store,
    the link table) is the owner's, so queries dedup, answer, and route
    exactly as if the owner served them; the *physical* identity
    (``physical_id``) is the holder's, so crash windows, incarnations,
    and delivery checks apply to the machine actually doing the work.
    """

    __slots__ = ("peer_id", "physical_id", "store", "_owner")

    def __init__(self, owner: "PeerLike", holder: "PeerLike",
                 replica: Replica) -> None:
        self.peer_id = owner.peer_id
        self.physical_id = holder.peer_id
        self.store = replica.store
        self._owner = owner

    def links(self) -> Sequence["Link"]:
        """The dead owner's link table (replicated with the data)."""
        return self._owner.links()

    def __repr__(self) -> str:
        return (f"PromotedPeer(owner={self.peer_id!r}, "
                f"holder={self.physical_id!r})")


class ReplicaDirectory:
    """Places, maintains, and promotes replicas over one overlay.

    ``copies`` is the replication degree R: each peer's tuples are
    mirrored onto its first R ``replica_targets`` (an overlay-specific
    structural choice).  ``refresh()`` is cheap and idempotent — it
    reinstalls placement only when the overlay's epoch moved (churn
    changed the structure) and re-snapshots only the replicas whose
    owner-store version moved — so callers run it before every query.

    The directory doubles as the repair protocol's promotion table: the
    failure detector calls :meth:`repair` when it declares a peer dead,
    pinning the takeover holder so that subsequent forwards to the dead
    peer are patched to the same replacement (and :meth:`demote` when the
    peer comes back, un-patching the links).
    """

    def __init__(self, overlay: ReplicatedOverlay, copies: int = 1) -> None:
        if copies < 0:
            raise ValueError(f"replication degree must be >= 0, got {copies}")
        self.overlay = overlay
        self.copies = copies
        self._epoch: int | None = None
        self._owners: dict[Hashable, ReplicatedPeer] = {}
        self._holders: dict[Hashable, list[ReplicatedPeer]] = {}
        self._promotions: dict[Hashable, Hashable] = {}
        self._promotion_listeners: list[Callable[[Hashable], None]] = []
        self.refresh()

    def subscribe_promotions(
            self, listener: Callable[[Hashable], None]
    ) -> Callable[[Hashable], None]:
        """Register ``listener(owner_id)`` to fire whenever :meth:`repair`
        declares an owner dead.

        The query-result cache subscribes here: once a replica holder may
        stand in for the owner, remembered answers that touched the owner
        are no longer evidence about the peer now serving its zone.
        """
        self._promotion_listeners.append(listener)
        return listener

    # -- maintenance -------------------------------------------------------

    def _overlay_epoch(self) -> int:
        # Tree-shaped overlays (MIDAS, CAN) version their SplitTree; flat
        # ones (Chord, BATON) version themselves.
        tree = getattr(self.overlay, "tree", None)
        if tree is not None:
            return int(tree.epoch)
        return int(getattr(self.overlay, "epoch"))

    def refresh(self) -> None:
        """Bring placement and mirrors up to date; clears promotions."""
        epoch = self._overlay_epoch()
        if epoch != self._epoch:
            self._install()
            self._epoch = epoch
        else:
            for owner_id, holders in self._holders.items():
                owner = self._owners[owner_id]
                for holder in holders:
                    replica = holder.replicas.get(owner_id)
                    if replica is not None:
                        replica.refresh(owner.store)
        self._promotions.clear()

    def _install(self) -> None:
        peers = list(self.overlay.peers())
        for peer in peers:
            peer.replicas.clear()
        self._owners = {peer.peer_id: peer for peer in peers}
        self._holders = {}
        for peer in peers:
            targets = list(self.overlay.replica_targets(peer, self.copies))
            for target in targets:
                target.replicas[peer.peer_id] = Replica(peer.peer_id,
                                                        peer.store)
            self._holders[peer.peer_id] = targets

    # -- lookup ------------------------------------------------------------

    def owners(self) -> Iterable[ReplicatedPeer]:
        return self._owners.values()

    def holders(self, owner_id: Hashable) -> list[ReplicatedPeer]:
        """The replica holders of ``owner_id`` in placement order."""
        return list(self._holders.get(owner_id, ()))

    # -- repair protocol ---------------------------------------------------

    def repair(self, owner_id: Hashable,
               alive: Callable[[Hashable], bool]) -> ReplicatedPeer | None:
        """Declare ``owner_id`` dead: pin the first live holder as its
        takeover target (the patched-link destination)."""
        for listener in self._promotion_listeners:
            listener(owner_id)
        for holder in self._holders.get(owner_id, ()):
            if alive(holder.peer_id):
                self._promotions[owner_id] = holder.peer_id
                return holder
        self._promotions.pop(owner_id, None)
        return None

    def demote(self, owner_id: Hashable) -> None:
        """The owner recovered: un-patch links, traffic returns to it."""
        self._promotions.pop(owner_id, None)

    def promote(self, owner_id: Hashable,
                alive: Callable[[Hashable], bool],
                exclude: frozenset[Hashable] = frozenset(),
                ) -> PromotedPeer | None:
        """A live stand-in for ``owner_id``, or None when none exists.

        Prefers the holder pinned by :meth:`repair` (so every patched
        forward converges on one takeover peer), then falls through the
        placement order, skipping dead and ``exclude``-ed holders.
        """
        owner = self._owners.get(owner_id)
        if owner is None:
            return None
        ordered = self._holders.get(owner_id, ())
        pinned = self._promotions.get(owner_id)
        if pinned is not None:
            ordered = sorted(ordered, key=lambda h: h.peer_id != pinned)
        for holder in ordered:
            if holder.peer_id in exclude or not alive(holder.peer_id):
                continue
            replica = holder.replicas.get(owner_id)
            if replica is not None:
                return PromotedPeer(owner, holder, replica)
        return None

    def __repr__(self) -> str:
        return (f"ReplicaDirectory(copies={self.copies}, "
                f"owners={len(self._owners)})")
