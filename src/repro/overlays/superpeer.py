"""A super-peer topology (the unstructured-network setting of Section 2.1).

SPEERTO [17] and its relatives run over two-tier unstructured networks:
ordinary nodes hold horizontal data partitions and attach to a
super-peer; super-peers form a small overlay among themselves and answer
queries on behalf of their nodes.  There is no content-aware placement —
which is exactly why these systems need per-node precomputation
(k-skybands) instead of RIPPLE-style region pruning.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..common.store import LocalStore

__all__ = ["SuperPeer", "SuperPeerNode", "SuperPeerNetwork"]


class SuperPeerNode:
    """An ordinary node: a horizontal partition attached to a super-peer."""

    __slots__ = ("node_id", "super_peer", "store")

    def __init__(self, node_id: int, super_peer: "SuperPeer", dims: int) -> None:
        self.node_id = node_id
        self.super_peer = super_peer
        self.store = LocalStore(dims)


class SuperPeer:
    """A super-peer: serves its attached nodes, links to all super-peers.

    Super-peers form a clique (the common simulation assumption for small
    super-peer backbones); ``cache`` holds whatever per-node
    precomputation the algorithm on top installs (SPEERTO: aggregated
    k-skybands).
    """

    __slots__ = ("peer_id", "nodes", "cache")

    def __init__(self, peer_id: int) -> None:
        self.peer_id = peer_id
        self.nodes: list[SuperPeerNode] = []
        self.cache: dict[Hashable, Any] = {}


class SuperPeerNetwork:
    """Two-tier network: ``super_peers`` cliques, nodes round-robined."""

    def __init__(self, dims: int, *, super_peers: int, nodes_per_super: int,
                 seed: int = 0) -> None:
        if super_peers < 1 or nodes_per_super < 1:
            raise ValueError("need at least one super-peer and node")
        self.dims = dims
        self.rng = np.random.default_rng(seed ^ 0x59E6)
        self.super_peers = [SuperPeer(i) for i in range(super_peers)]
        self.nodes: list[SuperPeerNode] = []
        for index in range(super_peers * nodes_per_super):
            owner = self.super_peers[index % super_peers]
            node = SuperPeerNode(index, owner, dims)
            owner.nodes.append(node)
            self.nodes.append(node)

    def load(self, array: np.ndarray) -> None:
        """Scatter tuples over nodes uniformly (no content-aware placement
        exists in an unstructured network)."""
        array = np.asarray(array, dtype=float)
        assignment = self.rng.integers(len(self.nodes), size=len(array))
        for index, node in enumerate(self.nodes):
            node.store.bulk_load(array[assignment == index])

    def total_tuples(self) -> int:
        return sum(len(node.store) for node in self.nodes)

    def random_node(self, rng: np.random.Generator | None = None
                    ) -> SuperPeerNode:
        rng = rng or self.rng
        return self.nodes[int(rng.integers(len(self.nodes)))]
