"""Arena overlay substrate: structure-of-arrays peers at 100k–1M scale.

Per-peer Python objects (a ``MidasPeer`` with a dict-backed link table, a
heap-allocated ``LocalStore``, a ``Node`` chain up the split tree) cap the
simulable network at a few hundred peers — the substrate, not the
algorithm, is the bottleneck the paper's fig7 stops at 200 peers for.
This module rebuilds the substrate as an *arena*: every per-peer quantity
lives in one flat typed NumPy array —

* tuple storage: one ``(T, d)`` row block plus a CSR offset table
  (``store_ptr``), each peer's store a zero-copy
  :meth:`~repro.common.store.LocalStore.view_of` slice;
* link adjacency: CSR ``link_ptr``/``link_target`` plus per-family region
  payload arrays (:class:`MirrorArena`), or — for the scalable MIDAS
  builder (:class:`MidasArena`) — no link arrays at all: a balanced
  dyadic k-d tree is fully described by ``(n, depth)``, so link regions
  and targets are *derived* from a peer's path bits on demand;
* liveness and replica slots: a ``bool`` array and a CSR candidate table.

The arrays are the overlay; peers materialize lazily as flyweight
:class:`ArenaPeer` views satisfying the existing
:class:`~repro.core.framework.PeerLike` protocol, so ``core/framework``,
``net/eventsim``, ``net/faults`` and every handler run **unchanged** and
bit-identical on an arena (the hypothesis suite pins answers and
``QueryStats`` against the object overlays).

On top of the substrate sits the *batched wavefront* executor
(:func:`wavefront_execute`): the parallel extreme (``r = 0``) of
Algorithm 3 is evaluated level-synchronously, and all local reductions of
the peers touched in one expansion wave run as a single grouped kernel
call (:func:`prime_topk_wave` / :func:`prime_skyline_wave`) that *primes*
each store's computation cache — the handlers then hit the primed entries
instead of reducing per peer.  See docs/SCALE.md for the proof sketch of
why the wavefront's answers and ``QueryStats`` match the depth-first
scalar engine exactly.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Sequence, overload

import numpy as np

from ..common.geometry import Frustum, Rect, as_point, contains_batch
from ..common.hashing import mix
from ..common.scoring import ScoringFunction
from ..common.store import LocalStore, Replica
from ..core.framework import Link, PeerLike, execute
from ..core.handler import QueryHandler
from ..core.regions import (ArcRegion, FrustumRegion, RectRegion, Region,
                            domain_region)
from ..net.context import QueryContext, QueryResult
from ..obs.trace import TraceSink

__all__ = ["ArenaPeer", "MidasArena", "MirrorArena", "OverlayArena",
           "prime_skyline_wave", "prime_topk_wave", "wavefront_execute"]

#: Candidate rows per vectorized dominance pass in the oversized-group
#: fallback of the grouped skyline kernel (mirrors ``skyline._BLOCK``).
_BLOCK = 256

#: Groups whose distinct-row count exceeds this run through the blocked
#: per-group kernel instead of the padded all-pairs tensor (whose memory
#: grows with the square of the padded width).
_PAD_CAP = 512

#: Element budget for one padded comparison tensor; buckets are chunked
#: so ``chunk * cap**2 * dims`` stays below it.
_PAD_BUDGET = 32_000_000


class ArenaPeer:
    """A flyweight :class:`~repro.core.framework.PeerLike` view of one row.

    Views are created lazily and cached per arena, so object identity is
    stable (``arena.peer(i) is arena.peer(i)``) while untouched peers
    cost nothing.  The store materializes on first access as a read-only
    zero-copy slice of the substrate; the link table decodes on first
    access and is cached (arenas are immutable snapshots — no churn, no
    epochs).
    """

    __slots__ = ("arena", "index", "peer_id", "_store", "_links",
                 "_replicas")

    def __init__(self, arena: "OverlayArena", index: int) -> None:
        self.arena = arena
        self.index = index
        self.peer_id: int = int(arena.peer_ids[index])
        self._store: LocalStore | None = None
        self._links: list[Link] | None = None
        self._replicas: dict[int, Replica] | None = None

    @property
    def store(self) -> LocalStore:
        if self._store is None:
            self._store = LocalStore.view_of(
                self.arena.store_rows(self.index))
        return self._store

    def links(self) -> list[Link]:
        if self._links is None:
            self._links = self.arena.decode_links(self.index)
        return self._links

    @property
    def alive(self) -> bool:
        """Liveness flag (`FaultPlan.from_overlay` freezes these)."""
        return bool(self.arena.alive[self.index])

    @alive.setter
    def alive(self, value: bool) -> None:
        self.arena.alive[self.index] = value

    @property
    def replicas(self) -> dict[int, Replica]:
        """Replicas hosted here (lazily allocated; see ReplicaDirectory)."""
        if self._replicas is None:
            self._replicas = {}
        return self._replicas

    def __repr__(self) -> str:
        return (f"ArenaPeer(id={self.peer_id}, "
                f"arena={type(self.arena).__name__})")


class _ArenaPeers(Sequence[ArenaPeer]):
    """Lazy ``overlay.peers()`` sequence: views materialize on indexing."""

    __slots__ = ("_arena",)

    def __init__(self, arena: "OverlayArena") -> None:
        self._arena = arena

    def __len__(self) -> int:
        return len(self._arena)

    @overload
    def __getitem__(self, index: int) -> ArenaPeer: ...

    @overload
    def __getitem__(self, index: slice) -> Sequence[ArenaPeer]: ...

    def __getitem__(self, index: int | slice
                    ) -> ArenaPeer | Sequence[ArenaPeer]:
        if isinstance(index, slice):
            return [self._arena.peer(i)
                    for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._arena.peer(index)

    def __iter__(self) -> Iterator[ArenaPeer]:
        return (self._arena.peer(i) for i in range(len(self)))


class OverlayArena:
    """Shared substrate state: stores, liveness, and peer views.

    Subclasses contribute the link encoding (:meth:`decode_links`) and
    the replica-slot policy; everything protocol-facing (``peers()``,
    ``domain()``, ``random_peer()``) lives here.
    """

    def __init__(self, *, dims: int, peer_ids: np.ndarray,
                 store_ptr: np.ndarray, tuples: np.ndarray,
                 alive: np.ndarray | None = None) -> None:
        n = len(peer_ids)
        if store_ptr.shape != (n + 1,):
            raise ValueError("store_ptr must have one offset per peer + 1")
        self.dims = dims
        self.peer_ids = np.ascontiguousarray(peer_ids, dtype=np.int64)
        self.store_ptr = np.ascontiguousarray(store_ptr, dtype=np.int64)
        self.tuples = np.ascontiguousarray(tuples, dtype=float)
        self.tuples.flags.writeable = False
        self.alive = (np.ones(n, dtype=bool) if alive is None
                      else np.ascontiguousarray(alive, dtype=bool))
        #: Arenas are immutable snapshots — the structural epoch never
        #: moves, so ReplicaDirectory.refresh() is placement-stable.
        self.epoch = 0
        self._views: dict[int, ArenaPeer] = {}

    # -- protocol surface --------------------------------------------------

    def __len__(self) -> int:
        return len(self.peer_ids)

    def peers(self) -> Sequence[ArenaPeer]:
        return _ArenaPeers(self)

    def peer(self, index: int) -> ArenaPeer:
        view = self._views.get(index)
        if view is None:
            view = self._views[index] = ArenaPeer(self, index)
        return view

    def random_peer(self, rng: np.random.Generator) -> ArenaPeer:
        return self.peer(int(rng.integers(len(self))))

    def domain(self) -> RectRegion:
        return domain_region(self.dims)

    def total_tuples(self) -> int:
        return int(self.store_ptr[-1])

    def store_rows(self, index: int) -> np.ndarray:
        """The substrate row range holding peer ``index``'s tuples."""
        return self.tuples[self.store_ptr[index]:self.store_ptr[index + 1]]

    def decode_links(self, index: int) -> list[Link]:
        raise NotImplementedError

    def replica_targets(self, peer: ArenaPeer, count: int
                        ) -> list[ArenaPeer]:
        raise NotImplementedError

    def nbytes(self) -> int:
        """Substrate memory footprint (the flat arrays, not the views)."""
        return sum(int(a.nbytes) for a in self._arrays())

    def _arrays(self) -> list[np.ndarray]:
        return [self.peer_ids, self.store_ptr, self.tuples, self.alive]


class MirrorArena(OverlayArena):
    """An exact structure-of-arrays snapshot of an object overlay.

    Built by :func:`repro.overlays.arena_build.from_overlay`: same peer
    ids, same link order, bit-equal link regions and store rows — so any
    engine run over the mirror reproduces the object overlay's answers
    and ``QueryStats`` exactly.  Link regions are encoded per overlay
    family (``kind``): rectangles (MIDAS), ring-arc pieces (Chord), or
    frustums (CAN).
    """

    def __init__(self, *, kind: str, dims: int, peer_ids: np.ndarray,
                 store_ptr: np.ndarray, tuples: np.ndarray,
                 link_ptr: np.ndarray, link_target: np.ndarray,
                 link_payload: dict[str, np.ndarray],
                 replica_ptr: np.ndarray, replica_idx: np.ndarray,
                 alive: np.ndarray | None = None) -> None:
        super().__init__(dims=dims, peer_ids=peer_ids, store_ptr=store_ptr,
                         tuples=tuples, alive=alive)
        if kind not in ("rect", "arc", "frustum"):
            raise ValueError(f"unknown region family {kind!r}")
        self.kind = kind
        self.link_ptr = np.ascontiguousarray(link_ptr, dtype=np.int64)
        self.link_target = np.ascontiguousarray(link_target, dtype=np.int64)
        self.link_payload = link_payload
        self.replica_ptr = np.ascontiguousarray(replica_ptr, dtype=np.int64)
        self.replica_idx = np.ascontiguousarray(replica_idx, dtype=np.int64)
        #: Exact region partitions (rect/arc) support strict single-visit
        #: mode; conservative frustum covers require dedup, like CAN.
        self.strict_default = kind != "frustum"

    def max_links(self) -> int:
        return int(np.diff(self.link_ptr).max(initial=0))

    def decode_links(self, index: int) -> list[Link]:
        lo, hi = int(self.link_ptr[index]), int(self.link_ptr[index + 1])
        return [Link(peer=self.peer(int(self.link_target[e])),
                     region=self._decode_region(e))
                for e in range(lo, hi)]

    def _decode_region(self, e: int) -> Region:
        pay = self.link_payload
        if self.kind == "rect":
            return RectRegion(Rect(as_point(pay["lo"][e]),
                                   as_point(pay["hi"][e])))
        if self.kind == "arc":
            pieces = pay["pieces"][e]
            return ArcRegion(tuple(
                (float(lo), float(hi))
                for lo, hi in pieces if not np.isnan(lo)))
        base = Rect(as_point(pay["base_lo"][e]), as_point(pay["base_hi"][e]))
        top = Rect(as_point(pay["top_lo"][e]), as_point(pay["top_hi"][e]))
        return FrustumRegion(Frustum(int(pay["axis"][e]), base, top))

    def replica_targets(self, peer: ArenaPeer, count: int
                        ) -> list[ArenaPeer]:
        """The snapshotted structural buddies, nearest-first.

        The mirror freezes the first ``replica_depth`` candidates of the
        source overlay's ``replica_targets``; asking for more than were
        snapshotted is a build-parameter error, not a silent truncation.
        """
        lo, hi = (int(self.replica_ptr[peer.index]),
                  int(self.replica_ptr[peer.index + 1]))
        if count > hi - lo and hi - lo < len(self) - 1:
            raise ValueError(
                f"mirror snapshotted {hi - lo} replica candidates; rebuild "
                f"with from_overlay(..., replica_depth>={count})")
        return [self.peer(int(self.replica_idx[e]))
                for e in range(lo, min(hi, lo + count))]


class MidasArena(OverlayArena):
    """A balanced MIDAS overlay at scale, with *implicit* dyadic links.

    The network is a balanced midpoint-split k-d tree over ``[0, 1]^d``:
    with ``n = 2**D + m`` peers, the first ``m`` level-``D`` nodes (in
    path order) split once more, so every leaf sits at depth ``D`` or
    ``D + 1``.  Peer ``i``'s path bits, zone rectangle, link regions
    (sibling-subtree rectangles) and link targets (seeded ``mix`` descent
    — the MIDAS ``"random"`` link policy) are all *derived* from ``i``
    alone, so the arena stores no per-link region arrays at any scale:
    the substrate is ``O(n + T)`` integers and tuple rows.

    ``link_target`` may optionally be precomputed vectorized (one
    :func:`~repro.common.hashing.mix_array` sweep per descent level, see
    ``arena_build.midas_arena``) for workloads that touch every peer —
    full-traversal Lemma validation — where the per-peer scalar descent
    would dominate.
    """

    def __init__(self, *, dims: int, store_ptr: np.ndarray,
                 tuples: np.ndarray, base_depth: int, extra: int,
                 seed: int = 0, link_ptr: np.ndarray | None = None,
                 link_target: np.ndarray | None = None,
                 alive: np.ndarray | None = None) -> None:
        n = (1 << base_depth) + extra
        if not 0 <= extra < (1 << base_depth):
            raise ValueError(f"extra splits {extra} out of range for "
                             f"depth {base_depth}")
        super().__init__(dims=dims, peer_ids=np.arange(n, dtype=np.int64),
                         store_ptr=store_ptr, tuples=tuples, alive=alive)
        self.base_depth = base_depth
        self.extra = extra
        self.seed = seed
        self.link_ptr = link_ptr
        self.link_target = link_target
        self.strict_default = True

    # -- dyadic structure --------------------------------------------------

    def depth_of(self, index: int) -> int:
        return self.base_depth + 1 if index < 2 * self.extra \
            else self.base_depth

    def path_of(self, index: int) -> int:
        """The peer's root-to-leaf bit path, packed MSB-first."""
        return index if index < 2 * self.extra else index - self.extra

    def _leaf_index(self, value: int, length: int) -> int:
        """Inverse of :meth:`path_of`: leaf path -> peer index."""
        return value if length > self.base_depth else value + self.extra

    def _is_leaf(self, value: int, length: int) -> bool:
        if length > self.base_depth:
            return True
        return length == self.base_depth and value >= self.extra

    def max_links(self) -> int:
        return self.base_depth + (1 if self.extra else 0)

    def zone(self, index: int) -> Rect:
        """The peer's zone rectangle, decoded from its path bits."""
        lo, hi, _ = self._walk(index, None)
        return Rect(tuple(lo), tuple(hi))

    def _walk(self, index: int, sink: list[tuple[int, Rect]] | None
              ) -> tuple[list[float], list[float], int]:
        """Descend ``index``'s path; optionally record sibling cells."""
        path, depth = self.path_of(index), self.depth_of(index)
        lo = [0.0] * self.dims
        hi = [1.0] * self.dims
        for level in range(depth):
            bit = (path >> (depth - 1 - level)) & 1
            j = level % self.dims
            mid = (lo[j] + hi[j]) / 2.0
            if sink is not None:
                sib_lo, sib_hi = lo.copy(), hi.copy()
                if bit:
                    sib_hi[j] = mid
                else:
                    sib_lo[j] = mid
                sink.append((bit, Rect(tuple(sib_lo), tuple(sib_hi))))
            if bit:
                lo[j] = mid
            else:
                hi[j] = mid
        return lo, hi, depth

    def locate_index(self, point: Sequence[float]) -> int:
        """The peer index owning ``point`` (half-open zones)."""
        value, length = 0, 0
        lo = [0.0] * self.dims
        hi = [1.0] * self.dims
        while not self._is_leaf(value, length):
            j = length % self.dims
            mid = (lo[j] + hi[j]) / 2.0
            if point[j] >= mid:
                value = (value << 1) | 1
                lo[j] = mid
            else:
                value = value << 1
                hi[j] = mid
            length += 1
        return self._leaf_index(value, length)

    # -- links -------------------------------------------------------------

    def decode_links(self, index: int) -> list[Link]:
        cells: list[tuple[int, Rect]] = []
        self._walk(index, cells)
        path, depth = self.path_of(index), self.depth_of(index)
        links: list[Link] = []
        for level, (bit, sibling) in enumerate(cells):
            if self.link_target is not None and self.link_ptr is not None:
                target = int(self.link_target[self.link_ptr[index] + level])
            else:
                prefix = (path >> (depth - 1 - level)) ^ 1
                target = self._descend(index, prefix, level + 1)
            links.append(Link(peer=self.peer(target),
                              region=RectRegion(sibling)))
        return links

    def _descend(self, owner: int, value: int, length: int) -> int:
        """The MIDAS random-descent representative of a sibling subtree.

        Reproduces ``MidasOverlay._random_descent``: at every internal
        node the branch bit is ``mix(seed, owner, path_key) & 1``, with
        ``path_key`` the 1-prefixed packed path.
        """
        while not self._is_leaf(value, length):
            bit = mix(self.seed, owner, (1 << length) | value) & 1
            value = (value << 1) | bit
            length += 1
        return self._leaf_index(value, length)

    # -- replica slots -----------------------------------------------------

    def _subtree_leaf_range(self, value: int, length: int
                           ) -> tuple[int, int]:
        """Leaf indexes under path prefix ``value`` — a contiguous range."""
        if length > self.base_depth:
            return self._leaf_index(value, length), \
                self._leaf_index(value, length) + 1
        shift = self.base_depth - length
        first, last = value << shift, (value + 1) << shift

        def leaf_start(v: int) -> int:
            return 2 * v if v < self.extra else v + self.extra

        return leaf_start(first), leaf_start(last)

    def replica_targets(self, peer: ArenaPeer, count: int
                        ) -> list[ArenaPeer]:
        """Structural buddies: sibling-subtree peers, nearest tier first.

        Mirrors ``MidasOverlay.replica_targets``: candidate pools are the
        sibling subtrees deepest (nearest) first, interleaved one peer
        per pool and tier, so the first copy lands on the merge partner
        and later copies land in structurally distinct branches.
        """
        if count <= 0:
            return []
        path, depth = self.path_of(peer.index), self.depth_of(peer.index)
        pools = []
        for level in range(depth - 1, -1, -1):
            prefix = (path >> (depth - 1 - level)) ^ 1
            pools.append(range(*self._subtree_leaf_range(prefix, level + 1)))
        chosen: list[ArenaPeer] = []
        seen = {peer.index}
        for tier in range(max((len(p) for p in pools), default=0)):
            for pool in pools:
                if tier >= len(pool) or pool[tier] in seen:
                    continue
                seen.add(pool[tier])
                chosen.append(self.peer(pool[tier]))
                if len(chosen) == count:
                    return chosen
        return chosen


# ---------------------------------------------------------------------------
# Grouped wave kernels (cache priming)
# ---------------------------------------------------------------------------

def prime_topk_wave(fn: ScoringFunction, stores: Sequence[LocalStore]
                    ) -> None:
    """Score every store touched by a wave in one grouped kernel call.

    Concatenates the stores' row blocks, evaluates ``fn.score_batch``
    once, recovers each store's stable descending order with a single
    ``lexsort`` (primary key: store, secondary: score descending, ties by
    row position — exactly ``argsort(-scores, kind="stable")`` per
    group), and primes every store's ``("score-index", fn)`` cache entry
    with its slice.  The subsequent per-peer ``top_scoring`` /
    ``scoring_at_least`` calls hit the primed entries, so the wave costs
    one kernel invocation instead of one per peer.
    """
    live = [s for s in stores if len(s) and s.cache_enabled]
    if len(live) < 2:
        return
    sizes = np.fromiter((len(s) for s in live), dtype=np.int64,
                        count=len(live))
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    concat = np.concatenate([s.array for s in live], axis=0)
    scores = fn.score_batch(concat)
    group = np.repeat(np.arange(len(live)), sizes)
    order = np.lexsort((-scores, group))
    for g, store in enumerate(live):
        lo, hi = int(bounds[g]), int(bounds[g + 1])
        local_order = order[lo:hi] - lo
        local_scores = scores[lo:hi]
        store.prime(("score-index", fn),
                    (local_scores, local_order, local_scores[local_order]))


def prime_skyline_wave(constraint: Rect | None,
                       stores: Sequence[LocalStore]) -> None:
    """Compute every store's local skyline in one grouped kernel call.

    Reproduces ``skyline_of_array`` per store — same dominance-order
    sort, duplicate collapse/re-expansion, and survivor set — but over
    the concatenation of all stores of the wave: one grouped lexsort,
    one adjacent-dedup pass, and padded all-pairs dominance tensors per
    group-size bucket (oversized groups fall back to the blocked kernel).
    Each store's ``("local-skyline", constraint)`` entry is primed with
    its survivor tuple, bit-identical to the scalar computation.
    """
    live = [s for s in stores if s.cache_enabled]
    if len(live) < 2:
        return
    sizes = np.fromiter((len(s) for s in live), dtype=np.int64,
                        count=len(live))
    total = int(sizes.sum())
    dims = live[0].dims
    if total:
        concat = np.concatenate([s.array for s in live], axis=0)
        group = np.repeat(np.arange(len(live)), sizes)
    else:
        concat = np.empty((0, dims))
        group = np.empty(0, dtype=np.int64)
    if constraint is not None and total:
        inside = contains_batch(concat, np.asarray(constraint.lo),
                                np.asarray(constraint.hi))
        concat, group = concat[inside], group[inside]
    key = ("local-skyline", constraint)
    if not len(concat):
        for store in live:
            store.prime(key, ())
        return
    # Grouped dominance order: per group, sort by coordinate sum then
    # lexicographically (``skyline._dominance_order``).
    sums = concat.sum(axis=1)
    axis_keys = tuple(concat[:, dim] for dim in range(dims - 1, -1, -1))
    order = np.lexsort(axis_keys + (sums, group))
    data, grp = concat[order], group[order]
    # Collapse exact duplicates (adjacent within a group after sorting).
    distinct = np.empty(len(data), dtype=bool)
    distinct[0] = True
    distinct[1:] = (grp[1:] != grp[:-1]) \
        | (data[1:] != data[:-1]).any(axis=1)
    starts = np.flatnonzero(distinct)
    counts = np.diff(np.append(starts, len(data)))
    uniq, ug = data[starts], grp[starts]
    keep = _grouped_skyline_keep(uniq, ug, len(live))
    out_counts = np.where(keep, counts, 0)
    rows = np.repeat(uniq, out_counts, axis=0)
    row_group = np.repeat(ug, out_counts)
    cuts = np.searchsorted(row_group, np.arange(len(live) + 1))
    for g, store in enumerate(live):
        seg = rows[cuts[g]:cuts[g + 1]]
        store.prime(key, tuple(as_point(row) for row in seg))


def _grouped_skyline_keep(uniq: np.ndarray, ug: np.ndarray,
                          group_count: int) -> np.ndarray:
    """Survivor mask over distinct dominance-ordered rows, per group.

    A row survives iff no other distinct row of the same group is
    componentwise ``<=`` it (which, among distinct rows, is dominance).
    Groups are bucketed by size: small groups share one padded
    ``(groups, width, width, d)`` comparison tensor per bucket (padding
    rows are ``+inf``, which can never dominate), oversized groups run
    the same blocked kernel ``skyline_of_array`` uses.
    """
    keep = np.zeros(len(uniq), dtype=bool)
    sizes = np.bincount(ug, minlength=group_count)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    keep[offsets[:-1][sizes == 1]] = True
    prev = 1
    for cap in (4, 16, 64, _PAD_CAP):
        sel = np.flatnonzero((sizes > prev) & (sizes <= cap))
        prev = cap
        if not len(sel):
            continue
        chunk = max(1, _PAD_BUDGET // (cap * cap * uniq.shape[1]))
        for at in range(0, len(sel), chunk):
            part = sel[at:at + chunk]
            part_sizes = sizes[part]
            pad = np.full((len(part), cap, uniq.shape[1]), np.inf)
            row = np.repeat(np.arange(len(part)), part_sizes)
            col = _concat_aranges(part_sizes)
            src = col + np.repeat(offsets[part], part_sizes)
            pad[row, col] = uniq[src]
            le = (pad[:, :, None, :] <= pad[:, None, :, :]).all(axis=-1)
            alive = le.sum(axis=1) <= 1
            keep[src] = alive[row, col]
    for g in np.flatnonzero(sizes > _PAD_CAP):
        # A handful of oversized groups, each one blocked kernel call —
        # a per-*group* loop over the wave, never a per-peer scan.
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        keep[lo:hi] = _blocked_skyline_mask(uniq[lo:hi])
    return keep


def _concat_aranges(sizes: np.ndarray) -> np.ndarray:
    """``[0..s0), [0..s1), ...`` concatenated, vectorized."""
    total = int(sizes.sum())
    out = np.arange(total, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    out -= np.repeat(starts, sizes)
    return out


def _blocked_skyline_mask(uniq: np.ndarray) -> np.ndarray:
    """Survivor mask over distinct dominance-ordered rows (one group).

    The block-filtered loop of ``skyline_of_array``, returning the mask
    instead of the rows.
    """
    keep = np.zeros(len(uniq), dtype=bool)
    live = np.arange(len(uniq))
    while len(live):
        index, tail = live[:_BLOCK], live[_BLOCK:]
        block = uniq[index]
        if len(block) > 1:
            le = (block[:, None, :] <= block[None, :, :]).all(axis=2)
            alive = le.sum(axis=0) <= 1
            block, index = block[alive], index[alive]
        keep[index] = True
        if len(tail) and len(block):
            rest = uniq[tail]
            dominated = (block[None, :, :] <= rest[:, None, :]) \
                .all(axis=2).any(axis=1)
            live = tail[~dominated]
        else:
            live = tail
    return keep


def _prime_wave(handler: QueryHandler, stores: list[LocalStore]) -> None:
    """Dispatch the wave's stores to the handler's grouped kernel.

    Handlers without a batched kernel (diversification) fall through to
    the scalar per-peer path — still bit-identical, just unbatched.
    """
    from ..queries.skyline import SkylineHandler
    from ..queries.topk import TopKHandler

    if isinstance(handler, TopKHandler):
        prime_topk_wave(handler.fn, stores)
    elif isinstance(handler, SkylineHandler):
        prime_skyline_wave(handler.constraint, stores)


# ---------------------------------------------------------------------------
# The batched wavefront executor
# ---------------------------------------------------------------------------

def wavefront_execute(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int,
    *,
    restriction: Region,
    ctx: QueryContext,
    initial_state: Any | None = None,
    base_latency: int = 0,
    answers_to: Hashable | None = None,
    parent_span: int | None = None,
) -> QueryResult:
    """Algorithm 1 (``r = 0``) evaluated level-synchronously in waves.

    A drop-in replacement for :func:`repro.core.framework.execute` (same
    signature; pass it as the ``executor`` of the seeded drivers).  In
    parallel mode the depth-first engine fixes every frame's forwarding
    state at creation, never folds child responses into it, and composes
    latency by ``max(1 + child)`` — so the traversal *is* a breadth-first
    expansion in disguise, and evaluating it wave by wave reproduces the
    exact answers, the exact processed set, and every ``QueryStats``
    counter (see docs/SCALE.md for the argument).  The payoff: all local
    reductions of one wave execute as a single grouped kernel call via
    cache priming.

    Falls back to the scalar engine whenever the wave evaluation cannot
    apply verbatim: sequential modes (``r > 0``), non-strict contexts
    (conservative region covers may process a peer under either of two
    racing frames — traversal order becomes observable), or an attached
    trace sink (spans are depth-first-shaped).
    """
    if r < 0:
        raise ValueError(f"ripple parameter must be non-negative, got {r}")
    if r != 0 or not ctx.strict or ctx.sink.enabled:
        return execute(initiator, handler, r, restriction=restriction,
                       ctx=ctx, initial_state=initial_state,
                       base_latency=base_latency, answers_to=answers_to,
                       parent_span=parent_span)
    state = handler.initial_state() if initial_state is None \
        else initial_state
    initiator_id = initiator.peer_id if answers_to is None else answers_to
    wave: list[tuple[PeerLike, Any, Region]] = [(initiator, state,
                                                 restriction)]
    latency = 0
    while wave:
        flags = [ctx.begin_processing(peer.peer_id)
                 for peer, _, _ in wave]
        _prime_wave(handler, [entry[0].store
                              for entry, processes in zip(wave, flags)
                              if processes])
        next_wave: list[tuple[PeerLike, Any, Region]] = []
        for (peer, received, area), processes in zip(wave, flags):
            local = handler.compute_local_state(peer.store, received) \
                if processes else handler.neutral_local_state()
            gstate = handler.compute_global_state(received, local)
            for link in peer.links():
                sub = link.region.intersect(area)
                if sub is None:
                    continue
                if not handler.is_link_relevant(sub, gstate):
                    continue
                ctx.on_forward()
                next_wave.append((link.peer, gstate, sub))
            if processes:
                answer = handler.compute_local_answer(peer.store, local)
                if peer.peer_id == initiator_id:
                    ctx.collected_answers.append(answer)
                else:
                    ctx.on_answer(answer, handler.answer_size(answer))
        if next_wave:
            latency += 1
        wave = next_wave
    answer = handler.finalize(ctx.collected_answers)
    return QueryResult(answer=answer, stats=ctx.stats(base_latency + latency))


def run_wavefront(
    initiator: PeerLike,
    handler: QueryHandler,
    *,
    restriction: Region,
    strict: bool = True,
    initial_state: Any | None = None,
    sink: TraceSink | None = None,
) -> QueryResult:
    """Convenience wrapper: :func:`wavefront_execute` over a fresh context.

    The batched counterpart of :func:`repro.core.framework.run_fast`.
    """
    ctx = QueryContext(strict=strict)
    if sink is not None:
        ctx.sink = sink
    return wavefront_execute(initiator, handler, 0, restriction=restriction,
                             ctx=ctx, initial_state=initial_state)
