"""DHT overlays: MIDAS, CAN, Chord, skip graph, BATON (+ Z-curve, super-peer tier).

The arena substrate (:mod:`repro.overlays.arena`) re-expresses MIDAS,
Chord, and CAN networks as flat structure-of-arrays snapshots for
100k–1M-peer simulation; :mod:`repro.overlays.arena_build` holds the
mirror and at-scale builders.
"""

from .arena import (ArenaPeer, MidasArena, MirrorArena, OverlayArena,
                    run_wavefront, wavefront_execute)
from .arena_build import from_overlay, midas_arena
from .baton import BatonOverlay, BatonPeer
from .can import Adjacency, CanOverlay, CanPeer
from .chord import ChordOverlay, ChordPeer
from .kdtree import Node, SplitTree
from .midas import MidasOverlay, MidasPeer
from .patterns import alive_patterns, matches_any_pattern
from .replication import PromotedPeer, ReplicaDirectory
from .skipgraph import SkipGraphOverlay, SkipGraphPeer
from .superpeer import SuperPeer, SuperPeerNetwork, SuperPeerNode
from .zcurve import ZCurve

__all__ = [
    "Adjacency", "ArenaPeer", "BatonOverlay", "BatonPeer", "CanOverlay",
    "CanPeer", "ChordOverlay", "ChordPeer", "MidasArena", "MidasOverlay",
    "MidasPeer", "MirrorArena", "Node", "OverlayArena", "PromotedPeer",
    "ReplicaDirectory", "SkipGraphOverlay", "SkipGraphPeer", "SplitTree",
    "SuperPeer", "SuperPeerNetwork",
    "SuperPeerNode", "ZCurve", "alive_patterns", "from_overlay",
    "matches_any_pattern", "midas_arena", "run_wavefront",
    "wavefront_execute",
]
