"""DHT overlays: MIDAS, CAN, Chord, BATON (+ Z-curve, super-peer tier)."""

from .baton import BatonOverlay, BatonPeer
from .can import Adjacency, CanOverlay, CanPeer
from .chord import ChordOverlay, ChordPeer
from .kdtree import Node, SplitTree
from .midas import MidasOverlay, MidasPeer
from .patterns import alive_patterns, matches_any_pattern
from .replication import PromotedPeer, ReplicaDirectory
from .superpeer import SuperPeer, SuperPeerNetwork, SuperPeerNode
from .zcurve import ZCurve

__all__ = [
    "Adjacency", "BatonOverlay", "BatonPeer", "CanOverlay", "CanPeer",
    "ChordOverlay", "ChordPeer", "MidasOverlay", "MidasPeer", "Node",
    "PromotedPeer", "ReplicaDirectory", "SplitTree", "SuperPeer",
    "SuperPeerNetwork", "SuperPeerNode", "ZCurve", "alive_patterns",
    "matches_any_pattern",
]
