"""Arena builders: mirror an object overlay, or build MIDAS at scale.

Two ways into the structure-of-arrays substrate of
:mod:`repro.overlays.arena`:

* :func:`from_overlay` snapshots an existing object overlay (MIDAS,
  Chord, or CAN) into a :class:`~repro.overlays.arena.MirrorArena` —
  same peer ids, same link order, bit-equal regions and store rows.
  This is the parity bridge: anything measured on the mirror is
  bit-identical to the object substrate.  Mirroring inherently walks the
  object peers once, so its loops carry per-line RPL012 waivers; the
  arena modules themselves never loop over the peer range.

* :func:`midas_arena` builds a balanced MIDAS network *directly* as a
  :class:`~repro.overlays.arena.MidasArena`, sized by peer count: tuple
  assignment is a vectorized tree descent and link targets are either
  derived on demand (``precompute_links=False``, O(n) memory) or resolved
  for all links at once with :func:`~repro.common.hashing.mix_array`
  (``precompute_links=True``, for full-traversal workloads).  One million
  peers build in seconds; no per-peer Python objects exist until a query
  actually touches a peer.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..common.hashing import mix_array
from ..core.regions import ArcRegion, FrustumRegion, RectRegion
from .arena import MidasArena, MirrorArena

__all__ = ["from_overlay", "midas_arena"]

#: Replica candidates snapshotted per peer by :func:`from_overlay`; covers
#: every in-repo replication degree with room to spare.
_REPLICA_DEPTH = 4


def from_overlay(overlay: Any, *,
                 replica_depth: int = _REPLICA_DEPTH) -> MirrorArena:
    """Snapshot an object overlay into an exact :class:`MirrorArena`.

    The mirror preserves everything observable through the peer
    protocol: peer ids and their ``peers()`` order, each peer's link
    *order* (it breaks ties under ``r > 0``'s stable priority sort),
    link regions decoded to ``==``-equal ``Region`` objects, store rows,
    liveness, and the first ``replica_depth`` replica candidates.
    """
    peers = list(overlay.peers())  # ripplelint: disable=RPL012
    if not peers:
        raise ValueError("cannot mirror an empty overlay")
    index_of = {p.peer_id: i                       # ripplelint: disable=RPL012
                for i, p in enumerate(peers)}
    dims = peers[0].store.dims
    peer_ids = np.fromiter((p.peer_id for p in peers),  # ripplelint: disable=RPL012
                           dtype=np.int64, count=len(peers))
    sizes = np.fromiter((len(p.store) for p in peers),  # ripplelint: disable=RPL012
                        dtype=np.int64, count=len(peers))
    store_ptr = np.concatenate(([0], np.cumsum(sizes)))
    if store_ptr[-1]:
        tuples = np.concatenate(
            [p.store.array for p in peers  # ripplelint: disable=RPL012
             if len(p.store)], axis=0)
    else:
        tuples = np.empty((0, dims))
    alive = np.fromiter((getattr(p, "alive", True)  # ripplelint: disable=RPL012
                         for p in peers), dtype=bool, count=len(peers))

    all_links = [p.links() for p in peers]  # ripplelint: disable=RPL012
    degrees = np.fromiter((len(ls) for ls in all_links),  # ripplelint: disable=RPL012
                          dtype=np.int64, count=len(peers))
    link_ptr = np.concatenate(([0], np.cumsum(degrees)))
    flat = [link for ls in all_links for link in ls]
    link_target = np.fromiter((index_of[link.peer.peer_id] for link in flat),
                              dtype=np.int64, count=len(flat))
    kind, payload = _encode_regions(flat, dims)

    replica_ptr = np.zeros(len(peers) + 1, dtype=np.int64)
    replica_rows: list[int] = []
    if hasattr(overlay, "replica_targets"):
        depth = min(replica_depth, len(peers) - 1)
        for i, peer in enumerate(peers):  # ripplelint: disable=RPL012
            targets = overlay.replica_targets(peer, depth)
            replica_rows.extend(index_of[t.peer_id] for t in targets)
            replica_ptr[i + 1] = len(replica_rows)
    replica_idx = np.asarray(replica_rows, dtype=np.int64)

    return MirrorArena(kind=kind, dims=dims, peer_ids=peer_ids,
                       store_ptr=store_ptr, tuples=tuples,
                       link_ptr=link_ptr, link_target=link_target,
                       link_payload=payload, replica_ptr=replica_ptr,
                       replica_idx=replica_idx, alive=alive)


def _encode_regions(flat: Sequence[Any], dims: int
                    ) -> tuple[str, dict[str, np.ndarray]]:
    """Pack a homogeneous link-region list into flat payload arrays."""
    total = len(flat)
    if not total:
        return "rect", {"lo": np.empty((0, dims)), "hi": np.empty((0, dims))}
    sample = flat[0].region
    if isinstance(sample, RectRegion):
        lo = np.empty((total, dims))
        hi = np.empty((total, dims))
        for e, link in enumerate(flat):
            region = link.region
            if not isinstance(region, RectRegion):
                raise TypeError(f"mixed region families: {region!r}")
            lo[e] = region.rect.lo
            hi[e] = region.rect.hi
        return "rect", {"lo": lo, "hi": hi}
    if isinstance(sample, ArcRegion):
        pieces = np.full((total, 2, 2), np.nan)
        for e, link in enumerate(flat):
            region = link.region
            if not isinstance(region, ArcRegion):
                raise TypeError(f"mixed region families: {region!r}")
            if len(region.pieces) > 2:
                raise ValueError("finger arcs normalize to <= 2 pieces")
            for k, piece in enumerate(region.pieces):
                pieces[e, k] = piece
        return "arc", {"pieces": pieces}
    if isinstance(sample, FrustumRegion):
        axis = np.empty(total, dtype=np.int64)
        base_lo = np.empty((total, dims))
        base_hi = np.empty((total, dims))
        top_lo = np.empty((total, dims))
        top_hi = np.empty((total, dims))
        for e, link in enumerate(flat):
            region = link.region
            if not isinstance(region, FrustumRegion):
                raise TypeError(f"mixed region families: {region!r}")
            frustum = region.frustum
            axis[e] = frustum.axis
            base_lo[e] = frustum.base.lo
            base_hi[e] = frustum.base.hi
            top_lo[e] = frustum.top.lo
            top_hi[e] = frustum.top.hi
        return "frustum", {"axis": axis, "base_lo": base_lo,
                           "base_hi": base_hi, "top_lo": top_lo,
                           "top_hi": top_hi}
    raise TypeError(f"cannot mirror region family {type(sample).__name__}")


def midas_arena(n: int, *, dims: int = 2, seed: int = 0,
                data: np.ndarray | None = None,
                precompute_links: bool = False) -> MidasArena:
    """Build a balanced ``n``-peer MIDAS network as a :class:`MidasArena`.

    The network is the balanced dyadic k-d tree over ``[0, 1]^dims``:
    with ``n = 2**D + m`` the first ``m`` level-``D`` nodes (path order)
    split once more, so all zones sit at depth ``D`` or ``D + 1`` and the
    peer index *is* the left-to-right leaf order.  ``data`` rows are
    assigned to zones by a vectorized midpoint descent (``D`` passes over
    the point set, plus one for the deep leaves) and laid out as one CSR
    row block.  With ``precompute_links`` every link-target descent —
    the seeded-\\ ``mix`` random walk of the MIDAS ``"random"`` link
    policy — is resolved for *all* ``n * depth`` links at once,
    level-synchronously, via :func:`~repro.common.hashing.mix_array`.
    """
    if n < 1:
        raise ValueError(f"need at least one peer, got {n}")
    if dims < 1:
        raise ValueError(f"dims must be positive, got {dims}")
    base_depth = n.bit_length() - 1
    extra = n - (1 << base_depth)

    if data is not None:
        data = np.ascontiguousarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] != dims:
            raise ValueError(f"expected (m, {dims}) data, got {data.shape}")
        leaf = _assign_leaves(data, dims, base_depth, extra)
        order = np.argsort(leaf, kind="stable")
        tuples = data[order]
        counts = np.bincount(leaf, minlength=n)
        store_ptr = np.concatenate(([0], np.cumsum(counts)))
    else:
        tuples = np.empty((0, dims))
        store_ptr = np.zeros(n + 1, dtype=np.int64)

    link_ptr = link_target = None
    if precompute_links and n > 1:
        link_ptr, link_target = _resolve_links(base_depth, extra, seed)

    return MidasArena(dims=dims, store_ptr=store_ptr, tuples=tuples,
                      base_depth=base_depth, extra=extra, seed=seed,
                      link_ptr=link_ptr, link_target=link_target)


def _assign_leaves(data: np.ndarray, dims: int, base_depth: int,
                   extra: int) -> np.ndarray:
    """Vectorized tree descent: each row's owning leaf (= peer) index.

    Maintains the per-point cell bounds so the midpoint sequence is
    bit-identical to the scalar :meth:`MidasArena.locate_index` walk
    (and to the link-region rectangles decoded from path bits).
    """
    count = len(data)
    value = np.zeros(count, dtype=np.int64)
    lo = np.zeros((count, dims))
    hi = np.ones((count, dims))
    for level in range(base_depth):
        j = level % dims
        mid = (lo[:, j] + hi[:, j]) / 2.0
        bit = data[:, j] >= mid
        value = (value << 1) | bit
        lo[bit, j] = mid[bit]
        hi[~bit, j] = mid[~bit]
    leaf = value + extra
    deep = value < extra
    if extra and deep.any():
        j = base_depth % dims
        mid = (lo[deep, j] + hi[deep, j]) / 2.0
        bit = data[deep, j] >= mid
        leaf[deep] = (value[deep] << 1) | bit
    return leaf


def _resolve_links(base_depth: int, extra: int, seed: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """All link-target descents of the balanced tree, level-synchronous.

    Every link starts at a sibling-subtree prefix; each pass extends all
    still-internal prefixes by one seeded branch bit (one
    :func:`mix_array` sweep per level — at most ``base_depth + 1``
    passes total), then maps finished leaf paths to peer indexes.
    """
    n = (1 << base_depth) + extra
    two_extra = 2 * extra
    index = np.arange(n, dtype=np.int64)
    depths = np.where(index < two_extra, base_depth + 1, base_depth)
    paths = np.where(index < two_extra, index, index - extra)

    degrees = depths
    link_ptr = np.concatenate(([0], np.cumsum(degrees)))
    owner = np.repeat(index, degrees)
    level = np.arange(len(owner), dtype=np.int64) - link_ptr[owner]
    # Sibling prefix at this level: the (level+1)-bit prefix, last bit
    # flipped.
    value = (paths[owner] >> (depths[owner] - 1 - level)) ^ 1
    length = level + 1

    def is_leaf(value: np.ndarray, length: np.ndarray) -> np.ndarray:
        return (length > base_depth) \
            | ((length == base_depth) & (value >= extra))

    active = np.flatnonzero(~is_leaf(value, length))
    while len(active):
        key = (np.int64(1) << length[active]) | value[active]
        bit = (mix_array(seed, owner[active], key)
               & np.uint64(1)).astype(np.int64)
        value[active] = (value[active] << 1) | bit
        length[active] += 1
        active = active[~is_leaf(value[active], length[active])]
    link_target = np.where(length > base_depth, value, value + extra)
    return link_ptr, link_target
