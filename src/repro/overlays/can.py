"""The CAN overlay: a d-dimensional content-addressable network [13].

Peers own axis-aligned zones produced by CAN's join protocol (the hosting
zone splits in half, cycling through dimensions); two peers are neighbors
when their zones share a (d-1)-dimensional face.  Under uniform joins the
zones form exactly the structure of a cyclic midpoint split tree, which we
reuse (:class:`~repro.overlays.kdtree.SplitTree`) — the omniscient
simulator view; peers themselves only see their neighbor lists.

For RIPPLE-over-CAN (the Section 3.1 genericity argument) each neighbor is
assigned a pyramidal-frustum region: its top is the shared face with the
neighbor, its base the matching slice of the domain boundary face, so the
regions of all neighbors tile the domain outside the peer's zone.  A
neighbor's *zone* is not always contained in its frustum (zones can be
wider than the shared face), so frustum covers are approximate and RIPPLE
runs in non-strict (dedup) mode over CAN — see DESIGN.md.

DSL and the distributed diversification baseline (:mod:`repro.baselines`)
use the plain neighbor graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal, Sequence

import numpy as np

from ..common.geometry import Frustum, Point, Rect
from ..common.store import LocalStore, Replica
from ..core.framework import Link
from ..core.regions import FrustumRegion, RectRegion, domain_region
from .kdtree import Node, SplitTree

__all__ = ["CanPeer", "CanOverlay", "Adjacency"]

JoinPolicy = Literal["uniform", "data"]


@dataclass(frozen=True)
class Adjacency:
    """One neighbor relation: the shared face between two zones.

    ``axis`` is the dimension the zones abut along; ``side`` is +1 when
    the neighbor lies above ``peer`` on that axis, -1 below; ``face`` is
    the shared (d-1)-face as a flat :class:`Rect`.
    """

    peer: "CanPeer"
    axis: int
    side: int
    face: Rect


class CanPeer:
    """A CAN peer: one zone plus links to all face-adjacent zones."""

    __slots__ = ("peer_id", "overlay", "leaf", "store", "anchor", "alive",
                 "replicas", "_neighbors", "_links")

    def __init__(self, peer_id: int, overlay: "CanOverlay", leaf: Node,
                 anchor: Point) -> None:
        self.peer_id = peer_id
        self.overlay = overlay
        self.leaf = leaf
        self.store = LocalStore(overlay.dims)
        self.anchor = anchor
        #: Liveness flag for fault scenarios (see FaultPlan.from_overlay).
        self.alive = True
        #: Replicas of other peers' stores hosted here, keyed by owner id;
        #: maintained by :class:`~repro.overlays.replication.ReplicaDirectory`.
        self.replicas: dict[int, "Replica"] = {}
        self._neighbors: tuple[int, list[Adjacency]] | None = None
        self._links: tuple[int, list[Link]] | None = None

    @property
    def zone(self) -> Rect:
        return self.leaf.rect

    def neighbors(self) -> list[Adjacency]:
        """Face-adjacent peers, recomputed lazily after churn."""
        epoch = self.overlay.tree.epoch
        if self._neighbors is not None and self._neighbors[0] == epoch:
            return self._neighbors[1]
        found = self.overlay.adjacencies(self)
        self._neighbors = (epoch, found)
        return found

    def links(self) -> list[Link]:
        """RIPPLE links: one frustum region per neighbor (Section 3.1)."""
        epoch = self.overlay.tree.epoch
        if self._links is not None and self._links[0] == epoch:
            return self._links[1]
        links = [Link(peer=adj.peer, region=FrustumRegion(
            self._frustum(adj))) for adj in self.neighbors()]
        self._links = (epoch, links)
        return links

    def _frustum(self, adj: Adjacency) -> Frustum:
        """The frustum between a domain-boundary slice and the shared face.

        The shared face's cross-section, normalized within this zone's
        face, is scaled up to the domain boundary so that the frustums of
        all neighbors tile the pyramid of their side.
        """
        zone = self.zone
        axis = adj.axis
        domain = Rect.unit(zone.dims)
        boundary = domain.lo[axis] if adj.side < 0 else domain.hi[axis]
        face_coord = zone.lo[axis] if adj.side < 0 else zone.hi[axis]
        base_lo, base_hi = [], []
        for dim in range(zone.dims):
            if dim == axis:
                base_lo.append(boundary)
                base_hi.append(boundary)
                continue
            span = zone.hi[dim] - zone.lo[dim]
            lo_frac = (adj.face.lo[dim] - zone.lo[dim]) / span
            hi_frac = (adj.face.hi[dim] - zone.lo[dim]) / span
            extent = domain.hi[dim] - domain.lo[dim]
            base_lo.append(domain.lo[dim] + lo_frac * extent)
            base_hi.append(domain.lo[dim] + hi_frac * extent)
        base = Rect(tuple(base_lo), tuple(base_hi))
        top_lo = tuple(face_coord if d == axis else adj.face.lo[d]
                       for d in range(zone.dims))
        top_hi = tuple(face_coord if d == axis else adj.face.hi[d]
                       for d in range(zone.dims))
        return Frustum(axis=axis, base=base, top=Rect(top_lo, top_hi))

    def __repr__(self) -> str:
        return f"CanPeer(id={self.peer_id}, zone={self.zone.lo}-{self.zone.hi})"


class CanOverlay:
    """An omniscient simulation of a CAN network."""

    def __init__(self, dims: int, *, size: int = 1, seed: int = 0,
                 join_policy: JoinPolicy = "uniform") -> None:
        self.dims = dims
        self.seed = seed
        self.join_policy: JoinPolicy = join_policy
        self.tree = SplitTree(dims)
        self.rng = np.random.default_rng(seed ^ 0xCA17)
        self._peers: list[CanPeer] = []
        self._next_id = 0
        self._data_pool: list[np.ndarray] = []
        self._pool_sizes: list[int] = []
        first = self._new_peer(self.tree.root)
        self.tree.root.payload = first
        self.grow_to(size)

    # -- registry -----------------------------------------------------------

    def _new_peer(self, leaf: Node) -> CanPeer:
        peer = CanPeer(self._next_id, self, leaf, leaf.rect.sample(self.rng))
        self._next_id += 1
        self._peers.append(peer)
        return peer

    def __len__(self) -> int:
        return len(self._peers)

    def peers(self) -> Sequence[CanPeer]:
        return self._peers

    def iter_peers(self) -> Iterator[CanPeer]:
        return iter(self._peers)

    def random_peer(self, rng: np.random.Generator | None = None) -> CanPeer:
        rng = rng or self.rng
        return self._peers[int(rng.integers(len(self._peers)))]

    def locate(self, point: Sequence[float]) -> CanPeer:
        return self.tree.locate(point).payload

    def domain(self) -> RectRegion:
        return domain_region(self.dims)

    # -- churn --------------------------------------------------------------

    def join(self) -> CanPeer:
        """CAN join: land on a random key, split the hosting zone in half."""
        point = self._join_point()
        leaf = self.tree.locate(point)
        host: CanPeer = leaf.payload
        dim = leaf.depth % self.dims
        value = (leaf.rect.lo[dim] + leaf.rect.hi[dim]) / 2.0
        left, right = self.tree.split_leaf(leaf, dim, value)
        host_child = left if host.anchor[dim] < value else right
        new_child = right if host_child is left else left
        host.leaf = host_child
        host_child.payload = host
        joiner = self._new_peer(new_child)
        if new_child.rect.contains(point):
            joiner.anchor = point
        new_child.payload = joiner
        joiner.store.bulk_load(host.store.extract(new_child.rect))
        return joiner

    def _join_point(self) -> Point:
        if self.join_policy == "data" and self._pool_sizes:
            total = self._pool_sizes[-1]
            pick = int(self.rng.integers(total))
            for block, cumulative in zip(self._data_pool, self._pool_sizes):
                if pick < cumulative:
                    row = block[pick - (cumulative - len(block))]
                    return tuple(float(v) for v in row)
        return tuple(float(v) for v in self.rng.random(self.dims))

    def leave(self, peer: CanPeer | None = None) -> None:
        """CAN departure: a mergeable neighbor takes the zone over."""
        if len(self._peers) <= 1:
            raise ValueError("cannot remove the last peer")
        peer = peer or self.random_peer()
        leaf = peer.leaf
        parent = leaf.parent
        assert parent is not None
        sibling = parent.child(1 - leaf.path[-1])
        if sibling.is_leaf:
            survivor: CanPeer = sibling.payload
            survivor.store.bulk_load(peer.store.take_all())
            merged = self.tree.merge_children(parent)
            merged.payload = survivor
            survivor.leaf = merged
        else:
            pair = self.tree.find_leaf_pair(sibling)
            mover: CanPeer = pair.child(1).payload
            absorber: CanPeer = pair.child(0).payload
            absorber.store.bulk_load(mover.store.take_all())
            merged = self.tree.merge_children(pair)
            merged.payload = absorber
            absorber.leaf = merged
            leaf.payload = mover
            mover.leaf = leaf
            mover.store = peer.store
            mover.anchor = leaf.rect.sample(self.rng)
        self._peers.remove(peer)

    def grow_to(self, size: int) -> None:
        while len(self._peers) < size:
            self.join()

    def shrink_to(self, size: int) -> None:
        if size < 1:
            raise ValueError("network size must stay positive")
        while len(self._peers) > size:
            self.leave()

    # -- data ---------------------------------------------------------------

    def load(self, array: np.ndarray) -> None:
        array = np.asarray(array, dtype=float)
        self.tree.partition(
            array, lambda leaf, rows: leaf.payload.store.bulk_load(rows))
        self._data_pool.append(array)
        previous = self._pool_sizes[-1] if self._pool_sizes else 0
        self._pool_sizes.append(previous + len(array))

    def total_tuples(self) -> int:
        return sum(len(peer.store) for peer in self._peers)

    # -- replication --------------------------------------------------------

    def replica_targets(self, peer: CanPeer, count: int) -> list[CanPeer]:
        """Zone-neighbor replication: copies on face-adjacent peers.

        CAN's takeover protocol hands a failed zone to one of its
        neighbors, so mirroring onto the (deterministically ordered)
        neighbor list puts the data exactly where the takeover happens.
        Zones with fewer neighbors than ``count`` widen one ring out to
        neighbors-of-neighbors.
        """
        if count <= 0:
            return []
        ring = sorted({adj.peer.peer_id: adj.peer
                       for adj in peer.neighbors()}.values(),
                      key=lambda p: p.peer_id)
        chosen = ring[:count]
        if len(chosen) < count:
            seen = {peer.peer_id, *(p.peer_id for p in chosen)}
            for neighbor in ring:
                for adj in neighbor.neighbors():
                    second = adj.peer
                    if second.peer_id in seen:
                        continue
                    seen.add(second.peer_id)
                    chosen.append(second)
                    if len(chosen) == count:
                        return chosen
        return chosen

    # -- adjacency ----------------------------------------------------------

    def adjacencies(self, peer: CanPeer) -> list[Adjacency]:
        """All face-sharing neighbors of ``peer``, via a tree search."""
        zone = peer.zone
        found: list[Adjacency] = []
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(zone):
                continue
            if not node.is_leaf:
                stack.append(node.child(0))
                stack.append(node.child(1))
                continue
            if node is peer.leaf:
                continue
            adjacency = _shared_face(zone, node.rect)
            if adjacency is not None:
                axis, side, face = adjacency
                found.append(Adjacency(node.payload, axis, side, face))
        return found


def _shared_face(zone: Rect, other: Rect) -> tuple[int, int, Rect] | None:
    """The (axis, side, face) along which two closed boxes share a
    (d-1)-dimensional face, or None."""
    axis = side = None
    for dim in range(zone.dims):
        if zone.hi[dim] == other.lo[dim]:
            candidate = (dim, +1)
        elif other.hi[dim] == zone.lo[dim]:
            candidate = (dim, -1)
        else:
            continue
        if axis is not None:
            return None  # abutting along two axes: corner contact only
        axis, side = candidate
    if axis is None:
        return None
    lo, hi = [], []
    for dim in range(zone.dims):
        if dim == axis:
            coord = zone.hi[dim] if side > 0 else zone.lo[dim]
            lo.append(coord)
            hi.append(coord)
            continue
        low = max(zone.lo[dim], other.lo[dim])
        high = min(zone.hi[dim], other.hi[dim])
        if low >= high:
            return None  # degenerate overlap: corner/edge contact only
        lo.append(low)
        hi.append(high)
    return axis, side, Rect(tuple(lo), tuple(hi))
