"""The virtual binary split tree underlying MIDAS (and our CAN builder).

MIDAS organizes peers as the leaves of a *virtual k-d tree* (Section 2.3):
each internal node splits its rectangle along some dimension, each leaf is
a peer's zone, and a node's identifier is its root path (left = 0,
right = 1).  The tree is "virtual" in that no peer stores it whole; the
simulator, being omniscient, keeps it as a concrete structure and lets
peers look at exactly the parts the protocol grants them (their path and
their sibling subtrees).

CAN zones produced by CAN's midpoint-split join protocol form the same
structure, so :class:`SplitTree` is shared by both overlays.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from ..common.geometry import Rect

__all__ = ["Node", "SplitTree"]


class Node:
    """One node of the split tree.

    A node is created once and never re-parented: its ``path`` (the id of
    Section 2.3) is fixed at birth.  Leaves carry the owning peer in
    ``payload``; internal nodes carry the split plane and two children.
    """

    __slots__ = ("rect", "parent", "path", "split_dim", "split_value",
                 "left", "right", "payload")

    def __init__(self, rect: Rect, parent: "Node | None",
                 bit: int | None) -> None:
        self.rect = rect
        self.parent = parent
        if parent is None or bit is None:
            self.path: tuple[int, ...] = ()
        else:
            self.path = parent.path + (bit,)
        self.split_dim: int | None = None
        self.split_value: float | None = None
        self.left: "Node | None" = None
        self.right: "Node | None" = None
        self.payload: Any = None

    @property
    def depth(self) -> int:
        return len(self.path)

    @property
    def is_leaf(self) -> bool:
        return self.split_dim is None

    def child(self, bit: int) -> "Node":
        node = self.left if bit == 0 else self.right
        if node is None:
            raise ValueError("leaf has no children")
        return node

    def id_string(self) -> str:
        """The binary identifier of Figure 1 (empty for the root)."""
        return "".join(str(b) for b in self.path)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "node"
        return f"<{kind} {self.id_string() or 'root'}>"


class SplitTree:
    """A mutable binary space partition of the unit domain."""

    def __init__(self, dims: int) -> None:
        self.dims = dims
        self.root = Node(Rect.unit(dims), None, None)
        self.leaf_count = 1
        #: Incremented by every structural change; used by peers to cache
        #: link tables between churn events.
        self.epoch = 0

    # -- queries --------------------------------------------------------

    def locate(self, point: Sequence[float]) -> Node:
        """The leaf whose (half-open) zone contains ``point``."""
        node = self.root
        while True:
            split_dim, split_value = node.split_dim, node.split_value
            if split_dim is None or split_value is None:
                return node
            node = node.child(0 if point[split_dim] < split_value else 1)

    def iter_leaves(self, node: Node | None = None) -> Iterator[Node]:
        node = node or self.root
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                yield current
            else:
                stack.append(current.child(1))
                stack.append(current.child(0))

    def max_depth(self) -> int:
        return max(leaf.depth for leaf in self.iter_leaves())

    def sibling_subtrees(self, leaf: Node) -> list[Node]:
        """Sibling subtree roots along ``leaf``'s root path, depth 1 first.

        Entry ``i-1`` is the subtree rooted at depth ``i`` whose id differs
        from the leaf's in the ``i``-th bit — the home of the peer's
        ``i``-th MIDAS link.
        """
        siblings: list[Node] = []
        node = leaf
        while node.parent is not None:
            bit = node.path[-1]
            siblings.append(node.parent.child(1 - bit))
            node = node.parent
        siblings.reverse()
        return siblings

    # -- mutation ---------------------------------------------------------

    def split_leaf(self, leaf: Node, dim: int, value: float) -> tuple[Node, Node]:
        """Split ``leaf`` into two children; returns (left, right)."""
        if not leaf.is_leaf:
            raise ValueError("can only split a leaf")
        lo_rect, hi_rect = leaf.rect.split(dim, value)
        leaf.split_dim = dim
        leaf.split_value = value
        leaf.left = Node(lo_rect, leaf, 0)
        leaf.right = Node(hi_rect, leaf, 1)
        leaf.payload = None
        self.leaf_count += 1
        self.epoch += 1
        return leaf.left, leaf.right

    def merge_children(self, parent: Node) -> Node:
        """Collapse an internal node whose children are both leaves."""
        if parent.is_leaf:
            raise ValueError("cannot merge a leaf")
        if not (parent.child(0).is_leaf and parent.child(1).is_leaf):
            raise ValueError("children must both be leaves")
        parent.split_dim = None
        parent.split_value = None
        parent.left = None
        parent.right = None
        self.leaf_count -= 1
        self.epoch += 1
        return parent

    def find_leaf_pair(self, node: Node) -> Node:
        """An internal node under ``node`` whose children are both leaves.

        Such a node always exists in any non-leaf subtree (descend into an
        internal child until none is left); it is the contraction point
        used when a peer departs.
        """
        if node.is_leaf:
            raise ValueError("subtree is a single leaf")
        current = node
        while True:
            left, right = current.child(0), current.child(1)
            if left.is_leaf and right.is_leaf:
                return current
            current = right if left.is_leaf else left

    # -- bulk data distribution -----------------------------------------

    def partition(
        self,
        array: np.ndarray,
        deliver: Callable[[Node, np.ndarray], None],
        node: Node | None = None,
    ) -> None:
        """Route every row of ``array`` to its leaf, vectorized per level."""
        array = np.asarray(array, dtype=float)
        stack = [(node or self.root, array)]
        while stack:
            current, rows = stack.pop()
            if len(rows) == 0:
                continue
            split_dim, split_value = current.split_dim, current.split_value
            if split_dim is None or split_value is None:
                deliver(current, rows)
                continue
            mask = rows[:, split_dim] < split_value
            stack.append((current.child(0), rows[mask]))
            stack.append((current.child(1), rows[~mask]))
