"""The Chord overlay: a ring DHT with finger tables [15].

Peers sit on the unit ring ``[0, 1)``; a peer owns the arc from its id up
to its successor's id.  Fingers point at the successors of
``id + 2^-i``; Section 3.1 assigns the ``i``-th distinct finger the arc
stretching from the beginning of that finger's zone to the beginning of
the next finger's zone (and back to the peer's own id for the last one),
so the finger regions partition the ring outside the peer's own zone —
exactly what RIPPLE requires.

Chord is hash-organized and one-dimensional, so the genericity
demonstration runs rank queries over 1-d datasets (the key *is* the
value).  This is the paper's point in Section 3.1: RIPPLE works on any
DHT; the multidimensional guarantees come from MIDAS.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator, Sequence

import numpy as np

from ..common.geometry import Interval
from ..common.store import LocalStore, Replica
from ..core.framework import Link
from ..core.regions import ArcRegion, RectRegion, domain_region
from ..common.hashing import mix

__all__ = ["ChordPeer", "ChordOverlay"]


class ChordPeer:
    """A Chord peer: a ring id, the arc up to its successor, fingers."""

    __slots__ = ("peer_id", "overlay", "ring_id", "store", "alive",
                 "replicas", "_links")

    def __init__(self, peer_id: int, overlay: "ChordOverlay", ring_id: float) -> None:
        self.peer_id = peer_id
        self.overlay = overlay
        self.ring_id = ring_id
        self.store = LocalStore(1)
        #: Liveness flag for fault scenarios (see FaultPlan.from_overlay).
        self.alive = True
        #: Replicas of other peers' stores hosted here, keyed by owner id;
        #: maintained by :class:`~repro.overlays.replication.ReplicaDirectory`.
        self.replicas: dict[int, "Replica"] = {}
        self._links: tuple[int, list[Link]] | None = None

    @property
    def zone(self) -> Interval:
        return Interval(self.ring_id, self.overlay.successor_id(self.ring_id))

    def links(self) -> list[Link]:
        epoch = self.overlay.epoch
        if self._links is not None and self._links[0] == epoch:
            return self._links[1]
        links = self.overlay.finger_links(self)
        self._links = (epoch, links)
        return links

    def __repr__(self) -> str:
        return f"ChordPeer(id={self.peer_id}, ring={self.ring_id:.4f})"


class ChordOverlay:
    """An omniscient simulation of a Chord ring."""

    def __init__(self, *, size: int = 1, seed: int = 0) -> None:
        self.rng = np.random.default_rng(mix(seed, 0xC0D))
        self.epoch = 0
        self._peers: list[ChordPeer] = []   # kept sorted by ring_id
        self._next_id = 0
        self.grow_to(max(1, size))

    # -- ring bookkeeping ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._peers)

    def peers(self) -> Sequence[ChordPeer]:
        return self._peers

    def iter_peers(self) -> Iterator[ChordPeer]:
        return iter(self._peers)

    def random_peer(self, rng: np.random.Generator | None = None) -> ChordPeer:
        rng = rng or self.rng
        return self._peers[int(rng.integers(len(self._peers)))]

    def domain(self) -> RectRegion:
        return domain_region(1)

    def _ring_ids(self) -> list[float]:
        return [p.ring_id for p in self._peers]

    def successor_id(self, ring_id: float) -> float:
        """The ring id of the next peer clockwise (itself if alone)."""
        ids = self._ring_ids()
        index = bisect.bisect_right(ids, ring_id)
        return ids[index % len(ids)]

    def owner(self, key: float) -> ChordPeer:
        """The peer whose arc contains ``key``."""
        ids = self._ring_ids()
        index = bisect.bisect_right(ids, key % 1.0) - 1
        return self._peers[index % len(self._peers)]

    # -- churn -------------------------------------------------------------------

    def join(self) -> ChordPeer:
        ring_id = float(self.rng.random())
        while any(p.ring_id == ring_id for p in self._peers):
            ring_id = float(self.rng.random())
        peer = ChordPeer(self._next_id, self, ring_id)
        self._next_id += 1
        if self._peers:
            predecessor = self.owner(ring_id)
            bisect.insort(self._peers, peer, key=lambda p: p.ring_id)
            self.epoch += 1
            # the new peer takes over the tail of its predecessor's arc
            moved = [(k,) for (k,) in predecessor.store.iter_points()
                     if peer.zone.contains(k)]
            if moved:
                remaining = [(k,) for (k,) in predecessor.store.iter_points()
                             if not peer.zone.contains(k)]
                predecessor.store = LocalStore(1, remaining)
                peer.store = LocalStore(1, moved)
        else:
            self._peers.append(peer)
            self.epoch += 1
        return peer

    def leave(self, peer: ChordPeer | None = None) -> None:
        if len(self._peers) <= 1:
            raise ValueError("cannot remove the last peer")
        peer = peer or self.random_peer()
        index = self._peers.index(peer)
        predecessor = self._peers[index - 1]
        predecessor.store.bulk_load(peer.store.take_all())
        self._peers.pop(index)
        self.epoch += 1

    def grow_to(self, size: int) -> None:
        while len(self._peers) < size:
            self.join()

    # -- data ---------------------------------------------------------------------

    def load(self, array: np.ndarray) -> None:
        """Distribute 1-d tuples: the key of a tuple is its value."""
        array = np.asarray(array, dtype=float).reshape(-1, 1)
        for row in array:
            self.owner(float(row[0])).store.insert((float(row[0]),))

    def total_tuples(self) -> int:
        return sum(len(p.store) for p in self._peers)

    # -- replication -----------------------------------------------------------------

    def replica_targets(self, peer: ChordPeer, count: int) -> list[ChordPeer]:
        """Successor-list replication: the next ``count`` peers clockwise.

        The classic Chord discipline — a peer's data is mirrored on its
        successor list, so when it fails the immediate successor (which
        takes over the arc by ring stitching) already holds the tuples.
        """
        if count <= 0 or len(self._peers) <= 1:
            return []
        index = self._peers.index(peer)
        return [self._peers[(index + step) % len(self._peers)]
                for step in range(1, min(count, len(self._peers) - 1) + 1)]

    # -- fingers --------------------------------------------------------------------

    def finger_resolution(self) -> int:
        return max(1, math.ceil(math.log2(max(2, len(self._peers)))) + 2)

    def finger_links(self, peer: ChordPeer) -> list[Link]:
        """Distinct fingers plus their ring-arc regions (Section 3.1)."""
        if len(self._peers) == 1:
            return []
        # Chord peers always hold an explicit successor pointer; the
        # remaining fingers are the successors of id + 2^-i.
        successor = self.owner(peer.zone.end)
        targets: list[ChordPeer] = [successor]
        seen: set[int] = {peer.peer_id, successor.peer_id}
        for i in range(self.finger_resolution(), 0, -1):
            finger = self.owner((peer.ring_id + 2.0 ** -i) % 1.0)
            # Chord fingers are the successors *at or after* the target
            # point; owner() returns the arc owner, whose successor is the
            # textbook finger when the target is mid-arc.
            if finger.ring_id != (peer.ring_id + 2.0 ** -i) % 1.0:
                finger = self.owner(finger.zone.end)
            if finger.peer_id not in seen:
                seen.add(finger.peer_id)
                targets.append(finger)
        # order fingers clockwise starting just after the peer's own zone
        targets.sort(key=lambda p: (p.ring_id - peer.ring_id) % 1.0)
        links: list[Link] = []
        nexts: list[ChordPeer | None] = [*targets[1:], None]
        for current, nxt in zip(targets, nexts):
            end = peer.ring_id if nxt is None else nxt.ring_id
            region = ArcRegion.from_interval(Interval(current.ring_id, end))
            links.append(Link(peer=current, region=region))
        return links
