"""A rainbow skip-graph overlay: constant-degree, fault-tolerant substrate.

Skip graphs (Aspnes & Shah) arrange peers in a sorted base list plus a
hierarchy of sparser lists selected by membership-vector prefixes, giving
O(log n) search without a hash-organized keyspace.  The *Rainbow* Skip
Graph (Goodrich, Nelson & Sun, SODA'06) makes the structure both
fault-tolerant and **constant-degree** by grouping Theta(log n)
key-consecutive peers into *towers*: the tower collectively plays the
role of one skip-graph element, and each member carries the pointers of
exactly one level — so no peer's degree grows with the network.  This
module reproduces that shape as RIPPLE's fourth substrate:

* **Towers** — peers sorted by key are grouped into runs of
  ``tower_size ~ log2 n`` consecutive members.  A tower's membership
  vector is derived by seeded hashing from its anchor member, and at
  level ``i`` the tower is linked to the nearest towers (left and right)
  sharing its ``i``-bit membership prefix — the classic skip-graph list
  family, with the tower as the list element.
* **Rainbow link assignment** — member ``j`` of a tower carries the
  tower's level-``j`` left/right pointers (one "color" of the rainbow
  per member) plus an intra-tower ring pointer pair and its base-list
  (global key order) predecessor/successor.  Every peer therefore holds
  at most :data:`SkipGraphOverlay.MAX_DEGREE` ``= 6`` links regardless
  of ``n`` — the headline robustness property, pinned by a degree-bound
  suite in ``tests/overlays/test_skipgraph.py``.
* **Link regions** — RIPPLE needs each peer's links annotated with
  regions that partition the domain outside its own zone.  Keys live on
  the unit ring (the base list is closed into a ring so that zones tile
  the key space exactly as Chord's arcs do), and the Section 3.1 Chord
  construction applies verbatim to *any* target set that includes the
  immediate successor: order the link targets clockwise and stretch each
  target's arc to the beginning of the next target's arc.  The base
  successor link guarantees the partition starts at the peer's own zone
  boundary, so greedy routing always makes clockwise progress and
  Algorithm 3's restriction areas stay exact (strict mode).
* **Replica discipline** — ``replica_targets`` mirrors a peer first onto
  its same-tower neighbors (the members that share its tower's routing
  duties — the rainbow analogue of a hydra component's redundancy) and
  then onto adjacent towers, so the copies sit exactly where the
  structure would re-route around a failure.

The overlay is an omniscient simulation like its MIDAS/Chord/CAN
siblings: joins draw a uniform key and split the hosting arc, departures
hand the arc to the predecessor, and the epoch counter invalidates the
per-peer link caches and the derived tower index.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator, Sequence

import numpy as np

from ..common.geometry import Interval
from ..common.hashing import mix
from ..common.store import LocalStore, Replica
from ..core.framework import Link
from ..core.regions import ArcRegion, RectRegion, domain_region

__all__ = ["SkipGraphOverlay", "SkipGraphPeer"]

_KEY_SALT = 0x5C1B
_VECTOR_SALT = 0x7074


class SkipGraphPeer:
    """A skip-graph peer: one key on the ring, one tower membership."""

    __slots__ = ("peer_id", "overlay", "key", "store", "alive", "replicas",
                 "_links")

    def __init__(self, peer_id: int, overlay: "SkipGraphOverlay",
                 key: float) -> None:
        self.peer_id = peer_id
        self.overlay = overlay
        self.key = key
        self.store = LocalStore(1)
        #: Liveness flag for fault scenarios (see FaultPlan.from_overlay).
        self.alive = True
        #: Replicas of other peers' stores hosted here, keyed by owner id;
        #: maintained by :class:`~repro.overlays.replication.ReplicaDirectory`.
        self.replicas: dict[int, "Replica"] = {}
        self._links: tuple[int, list[Link]] | None = None

    @property
    def zone(self) -> Interval:
        return Interval(self.key, self.overlay.successor_key(self.key))

    def links(self) -> list[Link]:
        epoch = self.overlay.epoch
        if self._links is not None and self._links[0] == epoch:
            return self._links[1]
        links = self.overlay.peer_links(self)
        self._links = (epoch, links)
        return links

    def __repr__(self) -> str:
        return f"SkipGraphPeer(id={self.peer_id}, key={self.key:.4f})"


class _TowerIndex:
    """The tower decomposition of one overlay epoch (derived, cached).

    Rebuilt whenever churn moves the epoch: peers in key order are cut
    into runs of ``tower_size`` consecutive members, and the level
    neighborhoods of every tower are resolved by grouping towers on
    their membership-vector prefixes.  All level lists are *lines* (no
    wrap), faithful to the skip-graph structure; only the base peer list
    is a ring, to close the key space.
    """

    __slots__ = ("keys", "rank", "towers", "position", "neighbors")

    def __init__(self, peers: Sequence[SkipGraphPeer], tower_size: int,
                 seed: int) -> None:
        #: Sorted peer keys and each peer's rank in key order.
        self.keys: list[float] = [p.key for p in peers]
        self.rank: dict[int, int] = {p.peer_id: i
                                     for i, p in enumerate(peers)}
        #: Tower members in key order, towers in key order.
        self.towers: list[list[SkipGraphPeer]] = [
            list(peers[base:base + tower_size])
            for base in range(0, len(peers), tower_size)]
        #: peer id -> (tower index, member index)
        self.position: dict[int, tuple[int, int]] = {}
        for t, members in enumerate(self.towers):
            for j, member in enumerate(members):
                self.position[member.peer_id] = (t, j)
        #: (tower index, level) -> (left tower index | None, right | None)
        self.neighbors: dict[tuple[int, int], tuple[int | None, int | None]]
        self.neighbors = {}
        count = len(self.towers)
        if count <= 1:
            return
        vectors = [
            tuple(mix(seed, _VECTOR_SALT, members[0].peer_id, level) & 1
                  for level in range(tower_size))
            for members in self.towers]
        max_levels = max(len(members) for members in self.towers)
        for level in range(max_levels):
            groups: dict[tuple[int, ...], list[int]] = {}
            for t in range(count):
                groups.setdefault(vectors[t][:level], []).append(t)
            for run in groups.values():
                for slot, t in enumerate(run):
                    left = run[slot - 1] if slot > 0 else None
                    right = run[slot + 1] if slot + 1 < len(run) else None
                    self.neighbors[(t, level)] = (left, right)


class SkipGraphOverlay:
    """An omniscient simulation of a rainbow skip graph.

    ``tower_size`` defaults to ``max(1, ceil(log2 n))`` — the
    Theta(log n) tower height of the rainbow construction — and is
    re-derived after churn, so the degree bound never drifts as the
    network grows or shrinks.  Pass an explicit ``tower_size`` to pin
    the decomposition for structural experiments.
    """

    #: Worst-case out-degree of any peer: base-ring successor and
    #: predecessor, intra-tower ring pair, and one skip level's left and
    #: right pointers.  Independent of the network size by construction.
    MAX_DEGREE = 6

    def __init__(self, *, size: int = 1, seed: int = 0,
                 tower_size: int | None = None) -> None:
        if tower_size is not None and tower_size < 1:
            raise ValueError(f"tower_size must be positive, got {tower_size}")
        self.seed = seed
        self.rng = np.random.default_rng(mix(seed, _KEY_SALT))
        self.epoch = 0
        self._tower_size_override = tower_size
        self._peers: list[SkipGraphPeer] = []   # kept sorted by key
        self._next_id = 0
        self._towers: tuple[int, _TowerIndex] | None = None
        self.grow_to(max(1, size))

    # -- registry ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._peers)

    def peers(self) -> Sequence[SkipGraphPeer]:
        return self._peers

    def iter_peers(self) -> Iterator[SkipGraphPeer]:
        return iter(self._peers)

    def random_peer(self, rng: np.random.Generator | None = None
                    ) -> SkipGraphPeer:
        rng = rng or self.rng
        return self._peers[int(rng.integers(len(self._peers)))]

    def domain(self) -> RectRegion:
        return domain_region(1)

    def tower_size(self) -> int:
        """The current tower height: ``~log2 n``, floor 1."""
        if self._tower_size_override is not None:
            return self._tower_size_override
        return max(1, math.ceil(math.log2(max(2, len(self._peers)))))

    def tower_index(self) -> _TowerIndex:
        """The epoch-cached tower decomposition (rebuilt after churn)."""
        if self._towers is not None and self._towers[0] == self.epoch:
            return self._towers[1]
        index = _TowerIndex(self._peers, self.tower_size(), self.seed)
        self._towers = (self.epoch, index)
        return index

    def max_links(self) -> int:
        """The realized Delta — never exceeds :data:`MAX_DEGREE`."""
        return max(len(peer.links()) for peer in self._peers)

    # -- key space ---------------------------------------------------------

    def successor_key(self, key: float) -> float:
        """The key of the next peer clockwise (itself if alone)."""
        keys = self.tower_index().keys
        index = bisect.bisect_right(keys, key)
        return keys[index % len(keys)]

    def owner(self, key: float) -> SkipGraphPeer:
        """The peer whose arc contains ``key``."""
        keys = self.tower_index().keys
        index = bisect.bisect_right(keys, key % 1.0) - 1
        return self._peers[index % len(self._peers)]

    # -- churn -------------------------------------------------------------

    def _draw_key(self, taken: set[float]) -> float:
        key = float(self.rng.random())
        while key in taken:
            key = float(self.rng.random())
        return key

    def join(self) -> SkipGraphPeer:
        key = self._draw_key({p.key for p in self._peers})
        peer = SkipGraphPeer(self._next_id, self, key)
        self._next_id += 1
        if self._peers:
            predecessor = self.owner(key)
            bisect.insort(self._peers, peer, key=lambda p: p.key)
            self.epoch += 1
            # the joiner takes over the tail of its predecessor's arc
            moved = [(k,) for (k,) in predecessor.store.iter_points()
                     if peer.zone.contains(k)]
            if moved:
                remaining = [(k,) for (k,) in predecessor.store.iter_points()
                             if not peer.zone.contains(k)]
                predecessor.store = LocalStore(1, remaining)
                peer.store = LocalStore(1, moved)
        else:
            self._peers.append(peer)
            self.epoch += 1
        return peer

    def leave(self, peer: SkipGraphPeer | None = None) -> None:
        if len(self._peers) <= 1:
            raise ValueError("cannot remove the last peer")
        peer = peer or self.random_peer()
        index = self._peers.index(peer)
        predecessor = self._peers[index - 1]
        predecessor.store.bulk_load(peer.store.take_all())
        self._peers.pop(index)
        self.epoch += 1

    def grow_to(self, size: int) -> None:
        if not self._peers and size > 1:
            # Bulk build: draw all keys in one pass (same generator, so a
            # given seed still yields one deterministic network), then
            # register the peers in key order.
            keys: set[float] = set()
            while len(keys) < size:
                keys.add(float(self.rng.random()))
            for key in sorted(keys):
                self._peers.append(SkipGraphPeer(self._next_id, self, key))
                self._next_id += 1
            self.epoch += 1
            return
        while len(self._peers) < size:
            self.join()

    # -- data --------------------------------------------------------------

    def load(self, array: np.ndarray) -> None:
        """Distribute 1-d tuples: the key of a tuple is its value."""
        array = np.asarray(array, dtype=float).reshape(-1, 1)
        for row in array:
            self.owner(float(row[0])).store.insert((float(row[0]),))

    def total_tuples(self) -> int:
        return sum(len(p.store) for p in self._peers)

    # -- replication -------------------------------------------------------

    def replica_targets(self, peer: SkipGraphPeer, count: int
                        ) -> list[SkipGraphPeer]:
        """Same-tower members first, then adjacent towers.

        The rainbow discipline: a tower's members jointly carry its
        routing state, so mirroring a member onto its tower-mates puts
        the copies on exactly the peers that take over its duties when
        it fails; further copies land on the neighboring towers — the
        peers the base list stitches to the lost arc.  Candidates
        alternate outward (next member, previous member, next-but-one,
        ...; then right tower, left tower, ...) so ``R = 1`` stays
        within the tower and higher degrees spread across structure.
        """
        if count <= 0 or len(self._peers) <= 1:
            return []
        index = self.tower_index()
        t, j = index.position[peer.peer_id]
        chosen: list[SkipGraphPeer] = []
        seen = {peer.peer_id}

        def take(candidate: SkipGraphPeer) -> bool:
            if candidate.peer_id not in seen:
                seen.add(candidate.peer_id)
                chosen.append(candidate)
            return len(chosen) >= count

        members = index.towers[t]
        for step in range(1, len(members)):
            for direction in (1, -1):
                if take(members[(j + direction * step) % len(members)]):
                    return chosen
        towers = index.towers
        for step in range(1, len(towers)):
            for direction in (1, -1):
                for member in towers[(t + direction * step) % len(towers)]:
                    if take(member):
                        return chosen
        return chosen

    # -- links -------------------------------------------------------------

    def peer_links(self, peer: SkipGraphPeer) -> list[Link]:
        """The rainbow link set with its clockwise ring-arc regions.

        Targets: base-list successor and predecessor (global key order),
        intra-tower ring neighbors, and the left/right towers of the
        level this member carries (level = member index, the rainbow
        assignment; the counterpart member of the neighbor tower is the
        one carrying the same level).  Regions follow the Section 3.1
        Chord construction — targets ordered clockwise, each arc
        stretching to the start of the next — which partitions the ring
        outside the peer's own zone because the successor is always a
        target.
        """
        if len(self._peers) <= 1:
            return []
        index = self.tower_index()
        t, j = index.position[peer.peer_id]
        position = index.rank[peer.peer_id]
        count = len(self._peers)
        targets: list[SkipGraphPeer] = [
            self._peers[(position + 1) % count],     # base successor
            self._peers[(position - 1) % count],     # base predecessor
        ]
        members = index.towers[t]
        if len(members) > 1:
            targets.append(members[(j + 1) % len(members)])
            targets.append(members[(j - 1) % len(members)])
        for side in index.neighbors.get((t, j), (None, None)):
            if side is not None:
                neighbor = index.towers[side]
                targets.append(neighbor[j % len(neighbor)])
        distinct: dict[int, SkipGraphPeer] = {}
        for target in targets:
            if target.peer_id != peer.peer_id:
                distinct.setdefault(target.peer_id, target)
        ordered = sorted(distinct.values(),
                         key=lambda p: (p.key - peer.key) % 1.0)
        links: list[Link] = []
        nexts: list[SkipGraphPeer | None] = [*ordered[1:], None]
        for current, nxt in zip(ordered, nexts):
            end = peer.key if nxt is None else nxt.key
            region = ArcRegion.from_interval(Interval(current.key, end))
            links.append(Link(peer=current, region=region))
        return links
