"""Boundary identifier patterns (Section 5.2).

With the split dimension alternating by depth, a peer whose identifier has
a ``0`` at every position *not* congruent to ``j`` modulo ``D`` owns a zone
touching the lower domain boundary of every dimension except ``j``:

    p_j = positions i with i mod D != j carry 0, the rest are free (X).

Such "border peers" are where skyline tuples live, so the optimized MIDAS
link policy targets them.  Crucially the patterns are prefix-closed — once
a prefix violates every pattern, no descendant identifier can match — so a
pattern-matching leaf can be found (or ruled out) by a single root-to-leaf
descent.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["alive_patterns", "matches_any_pattern"]


def alive_patterns(path: Iterable[int], dims: int) -> frozenset[int]:
    """Pattern indices ``j`` that the identifier prefix can still match.

    For a full identifier this is the set of patterns it matches; for a
    prefix, the set of patterns some extension could match.  Empty means
    the subtree rooted at this prefix contains no border peer.
    """
    alive = set(range(dims))
    for position, bit in enumerate(path):
        if bit == 1:
            alive &= {position % dims}
            if not alive:
                break
    return frozenset(alive)


def matches_any_pattern(path: Iterable[int], dims: int) -> bool:
    """True when the identifier matches at least one boundary pattern."""
    return bool(alive_patterns(path, dims))
