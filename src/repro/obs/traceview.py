"""Terminal critical-path summary of a recorded query trace.

Usage::

    python -m repro.obs.traceview trace.jsonl

reads a JSONL archive written by :func:`repro.obs.export.write_jsonl`
(or by the ``--trace-out`` flag of ``repro.experiments`` /
``benchmarks.bench_churn``) and prints the replayed message totals plus
the hop-by-hop critical path — the chain of peers whose sequential
processing determined the query's latency.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .export import load_jsonl
from .metrics import metrics_of
from .trace import QueryTrace, critical_path, replay

__all__ = ["main", "render"]


def render(trace: QueryTrace) -> str:
    """A human-readable multi-line summary of ``trace``."""
    replayed = replay(trace)
    roots = trace.roots()
    lines = [
        f"trace: {len(trace.spans)} spans, {len(trace.events)} events, "
        f"{len(roots)} root(s)",
        f"messages: {replayed.forward_messages} forwards, "
        f"{replayed.response_messages} responses, "
        f"{replayed.answer_messages} answers "
        f"(total {replayed.total_messages})",
        f"replayed latency: {replayed.latency} hop(s)",
    ]
    path = critical_path(trace)
    if path:
        root = path[0]
        while root.parent_id is not None:
            parent = trace.get_span(root.parent_id)
            if parent is None:
                break
            root = parent
        lines.append(f"critical path ({len(path)} hop(s), "
                     f"root span #{root.span_id}):")
        for span in path:
            t = span.begin - root.begin
            size = span.attrs.get("state_size")
            carried = "-" if size is None else str(size)
            region = span.region or "-"
            if len(region) > 48:
                region = region[:45] + "..."
            lines.append(f"  t={t:<4d} peer {span.peer!r:<12} "
                         f"state={carried:<6} region={region}")
    else:
        lines.append("critical path: (empty trace)")
    registry = metrics_of(trace)
    fanout = registry.histograms["fanout.per_peer"]
    sizes = registry.histograms["state_size.per_hop"]
    lines.append(f"fan-out per peer: n={fanout.total} "
                 f"mean={fanout.mean:.2f} p90<={fanout.quantile(0.9):g}")
    lines.append(f"state size per hop: n={sizes.total} "
                 f"mean={sizes.mean:.1f} p90<={sizes.quantile(0.9):g}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.traceview",
        description="Summarize a recorded RIPPLE query trace (JSONL).")
    parser.add_argument("trace", help="path to a trace .jsonl archive")
    args = parser.parse_args(argv)
    try:
        trace = load_jsonl(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    try:
        print(render(trace))
    except BrokenPipeError:  # piped into head/less that closed early
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
