"""Counters and fixed-bucket histograms over recorded query traces.

A :class:`MetricsRegistry` is a tiny, dependency-free metrics surface
(Prometheus-style naming): named monotonically increasing
:class:`Counter` objects plus :class:`Histogram` objects with fixed upper
bounds chosen at creation.  Fixed buckets keep observation O(#buckets)
and make registries from different runs directly comparable —
aggregating two runs is bucket-wise addition (:meth:`Histogram.merge`).

:func:`metrics_of` derives the standard per-query distributions from a
recorded :class:`~repro.obs.trace.QueryTrace`: per-peer message fan-out
(how many forwards each peer originated — the congestion hot-spot view)
and per-hop state snapshot sizes (how much certificate each hop carried
— the bandwidth view), plus one counter per event kind.
"""

from __future__ import annotations

import bisect
from typing import Hashable, Iterable, Sequence

from .trace import QueryTrace

__all__ = [
    "Counter",
    "DEFAULT_FANOUT_BUCKETS",
    "DEFAULT_STATE_SIZE_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "metrics_of",
]

#: Powers of two up to the largest realistic link fan-out: MIDAS routing
#: tables are O(log n), CAN zones have O(d) neighbors.
DEFAULT_FANOUT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)

#: State snapshots range from a scalar certificate (a few entries) to a
#: partial skyline of hundreds of points times dimensions.
DEFAULT_STATE_SIZE_BUCKETS: tuple[float, ...] = (
    0, 4, 16, 64, 256, 1024, 4096)


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram: counts of observations ``<=`` each bound.

    ``bounds`` are the inclusive upper edges, strictly increasing; one
    implicit overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_FANOUT_BUCKETS) -> None:
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile.

        Conservative by construction (bucket edges, not interpolation);
        the overflow bucket reports ``inf``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return float("inf")

    def merge(self, other: "Histogram") -> None:
        """Fold another run's histogram in (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"bucket mismatch: {self.bounds} vs {other.bounds}")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum

    def as_dict(self) -> dict[str, float | int | dict[str, int]]:
        buckets = {f"le_{bound:g}": count
                   for bound, count in zip(self.bounds, self.counts)}
        buckets["overflow"] = self.counts[-1]
        return {"count": self.total, "sum": self.sum, "buckets": buckets}

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named counters and histograms; lazily created, JSON-exportable."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        found = self.counters.get(name)
        if found is None:
            found = self.counters[name] = Counter(name)
        return found

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_FANOUT_BUCKETS
                  ) -> Histogram:
        found = self.histograms.get(name)
        if found is None:
            found = self.histograms[name] = Histogram(name, bounds)
        return found

    def as_dict(self) -> dict[str, object]:
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self.counters.items())},
            "histograms": {name: histogram.as_dict()
                           for name, histogram
                           in sorted(self.histograms.items())},
        }


def metrics_of(trace: QueryTrace,
               registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """The standard per-query distributions of a recorded trace.

    Populates (and returns) ``registry``:

    * ``events.<kind>`` counters — one per point-event kind;
    * ``spans.<kind>`` counters — one per span kind;
    * ``fanout.per_peer`` histogram — forwards originated per peer;
    * ``state_size.per_hop`` histogram — the ``state_size`` attribute of
      every ``process`` span (snapshot entries carried into each hop).
    """
    out = MetricsRegistry() if registry is None else registry
    fanout: dict[Hashable, int] = {}
    for event in trace.events:
        out.counter(f"events.{event.kind}").inc(event.count)
        if event.kind == "forward" and event.span_id:
            span = trace.get_span(event.span_id)
            if span is not None:
                fanout[span.peer] = fanout.get(span.peer, 0) + 1
    state_sizes = out.histogram("state_size.per_hop",
                                DEFAULT_STATE_SIZE_BUCKETS)
    for span in trace.spans:
        out.counter(f"spans.{span.kind}").inc()
        if span.kind == "process" and "state_size" in span.attrs:
            state_sizes.observe(float(span.attrs["state_size"]))
    out.histogram("fanout.per_peer",
                  DEFAULT_FANOUT_BUCKETS).observe_many(
        float(n) for n in fanout.values())
    return out
