"""Trace exporters: JSONL archives and Chrome/Perfetto ``trace_event`` JSON.

Two formats, two purposes:

* **JSONL** (:func:`write_jsonl` / :func:`load_jsonl`) — a lossless,
  line-per-record archive of a :class:`~repro.obs.trace.QueryTrace`.
  Round-trips through :func:`load_jsonl`, so archived traces replay
  (:func:`repro.obs.trace.replay`) and summarize
  (``python -m repro.obs.traceview``) exactly like live ones.
* **Perfetto / Chrome** (:func:`to_perfetto` / :func:`write_perfetto`) —
  the ``trace_event`` JSON consumed by https://ui.perfetto.dev and
  ``chrome://tracing``: every span becomes a complete (``ph: "X"``)
  event on its peer's track, every point event an instant (``ph: "i"``)
  mark, so a query renders as a flame-graph of the overlay walk.

Simulation time is unitless hops; the Perfetto export maps one hop to
1 ms (1000 µs timestamp units) so the UI shows readable durations.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Any, Hashable, Mapping

from .trace import PointEvent, QueryTrace, Span

__all__ = [
    "load_jsonl",
    "to_jsonl_records",
    "to_perfetto",
    "write_jsonl",
    "write_perfetto",
]

#: Perfetto timestamps are microseconds; one simulated hop maps to 1 ms.
_HOP_US = 1000

_FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return repr(value)


def to_jsonl_records(trace: QueryTrace) -> list[dict[str, Any]]:
    """The trace as a list of JSON-ready record dicts (one per line)."""
    records: list[dict[str, Any]] = [
        {"type": "meta", "version": _FORMAT_VERSION,
         "spans": len(trace.spans), "events": len(trace.events)}]
    for span in trace.spans:
        records.append({
            "type": "span",
            "id": span.span_id,
            "kind": span.kind,
            "peer": _jsonable(span.peer),
            "begin": span.begin,
            "end": span.end,
            "parent": span.parent_id,
            "region": span.region,
            "attrs": _jsonable(span.attrs),
        })
    for event in trace.events:
        records.append({
            "type": "event",
            "kind": event.kind,
            "t": event.t,
            "span": event.span_id,
            "count": event.count,
            "attrs": _jsonable(event.attrs),
        })
    for stats in trace.stats_records:
        as_dict = getattr(stats, "as_dict", None)
        payload = as_dict() if callable(as_dict) else _jsonable(stats)
        records.append({"type": "stats", "stats": payload})
    return records


def write_jsonl(trace: QueryTrace, path: str | Path) -> Path:
    """Write the trace as one JSON record per line; returns the path."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as fh:
        for record in to_jsonl_records(trace):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_jsonl(path: str | Path) -> QueryTrace:
    """Rebuild a :class:`QueryTrace` from a :func:`write_jsonl` archive.

    Peer ids come back as their JSON projection (ints and strings
    survive; tuple ids return as lists turned into tuples); stats records
    return as plain dicts.
    """
    trace = QueryTrace()
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                peer = record["peer"]
                span = Span(int(record["id"]), str(record["kind"]),
                            tuple(peer) if isinstance(peer, list) else peer,
                            int(record["begin"]),
                            parent_id=record.get("parent"),
                            end=record.get("end"),
                            region=record.get("region"),
                            attrs=dict(record.get("attrs") or {}))
                trace.spans.append(span)
                trace._by_id[span.span_id] = span
            elif kind == "event":
                trace.events.append(PointEvent(
                    str(record["kind"]), int(record["t"]),
                    int(record.get("span") or 0),
                    int(record.get("count", 1)),
                    dict(record.get("attrs") or {})))
            elif kind == "stats":
                trace.stats_records.append(record["stats"])
    next_id = 1 + max((span.span_id for span in trace.spans), default=0)
    trace._next_id = itertools.count(next_id)
    return trace


def _track_ids(trace: QueryTrace) -> dict[Hashable, int]:
    """Stable peer -> Perfetto thread-id mapping, in first-seen order."""
    tracks: dict[Hashable, int] = {}
    for span in trace.spans:
        if span.peer not in tracks:
            tracks[span.peer] = len(tracks) + 1
    return tracks


def to_perfetto(trace: QueryTrace) -> dict[str, Any]:
    """The trace in Chrome/Perfetto ``trace_event`` JSON object format.

    One process (the simulated overlay), one thread per peer; spans map
    to complete events, point events to thread-scoped instants.  Open
    spans (e.g. a crashed peer's execution) export with zero duration.
    """
    tracks = _track_ids(trace)
    events: list[dict[str, Any]] = [{
        "ph": "M", "pid": 1, "name": "process_name",
        "args": {"name": "ripple overlay"},
    }]
    for peer, tid in tracks.items():
        events.append({"ph": "M", "pid": 1, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": f"peer {peer!r}"}})
    for span in trace.spans:
        args: dict[str, Any] = {"span_id": span.span_id,
                                "parent": span.parent_id}
        if span.region is not None:
            args["region"] = span.region
        args.update({k: _jsonable(v) for k, v in span.attrs.items()})
        events.append({
            "name": span.kind,
            "cat": span.kind,
            "ph": "X",
            "ts": span.begin * _HOP_US,
            "dur": max(0, span.duration) * _HOP_US,
            "pid": 1,
            "tid": tracks[span.peer],
            "args": args,
        })
    for event in trace.events:
        span = trace.get_span(event.span_id) if event.span_id else None
        tid = tracks.get(span.peer, 0) if span is not None else 0
        events.append({
            "name": event.kind,
            "cat": "mark",
            "ph": "i",
            "s": "t" if tid else "g",
            "ts": event.t * _HOP_US,
            "pid": 1,
            "tid": tid,
            "args": {"count": event.count,
                     **{k: _jsonable(v) for k, v in event.attrs.items()}},
        })
    return {
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": {"format_version": _FORMAT_VERSION,
                      "time_unit": "1 hop = 1 ms"},
    }


def write_perfetto(trace: QueryTrace, path: str | Path) -> Path:
    """Write Perfetto JSON (open in https://ui.perfetto.dev); returns path."""
    target = Path(path)
    target.write_text(json.dumps(to_perfetto(trace)), encoding="utf-8")
    return target
