"""Hop-level tracing of one simulated RIPPLE query.

The simulation engines report *aggregate* :class:`~repro.net.context.QueryStats`
counters; this module records the *structure* behind them.  A
:class:`TraceSink` receives three kinds of signals while a query runs:

* **spans** — intervals with parent causality.  A ``process`` span covers
  one peer's execution of Algorithm 3 (a :class:`~repro.core.framework._Frame`
  in the recursive engine, an ``_Invocation`` in the event-driven ones); an
  ``attempt`` span covers one fault-supervised forward (the ``_Attempt``
  ladder); a ``query`` span covers a seeded driver's whole route + ripple.
* **point events** — ``forward`` / ``response`` / ``answer`` / ``ack`` /
  ``retry`` / ``reroute`` / ``drop`` / ``timeout`` / ``replica-read`` /
  ``region-recovered`` / ``unreachable`` marks, emitted adjacent to the
  corresponding :class:`~repro.net.context.QueryContext` counter bumps so a
  trace carries exactly the information the counters aggregate.
* **stats** — the final :class:`~repro.net.context.QueryStats` emission.

Timestamps are simulation clocks: the event-driven engines stamp
``sim.now``; the recursive engine derives virtual hop times from its
analytic latency model (a child forwarded by a sequential frame starts at
``parent.t0 + parent.latency + 1``, by a parallel frame at
``parent.t0 + 1``) so that both executions of the same query produce
time-compatible traces.

The default sink is :data:`NULL_SINK`, whose class-level ``enabled=False``
lets every instrumentation site collapse to a single attribute test — the
zero-overhead guarantee: with the null sink, answers and stats are
bit-identical to an un-instrumented build (property-tested in
``tests/obs/test_trace.py``).

:func:`replay` re-derives ``latency`` and ``total_messages`` from a
recorded trace alone; ``tests/obs/test_trace_replay.py`` property-tests
that the replay matches the engine-reported stats exactly, which pins the
instrumentation to the cost model of Lemmas 1–3.

This module deliberately imports nothing from ``repro.core`` / ``repro.net``
(``net.context`` imports it for the default sink), so the observability
layer can never perturb engine import order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Protocol, runtime_checkable

__all__ = [
    "ACTIVITY_EVENTS",
    "NULL_SINK",
    "NullSink",
    "PointEvent",
    "QueryTrace",
    "ReplayedStats",
    "Span",
    "TraceSink",
    "critical_path",
    "replay",
    "state_size",
]

#: Point-event kinds that witness real query progress; together with
#: ``process`` span begins and successful ``attempt`` span ends they are
#: exactly the sites where the engines advance their latency clocks
#: (``note_time`` / the analytic fold), so :func:`replay` rebuilds the
#: critical path from them.
ACTIVITY_EVENTS = frozenset({"response", "unreachable"})


def state_size(state: Any) -> int:
    """Number of scalar entries a handler state snapshot carries.

    Handler states are nested tuples / dataclasses of floats (a partial
    skyline is a tuple of points, a top-k certificate a dataclass holding
    a score tuple); the count of scalar leaves is a representation-free
    proxy for the bytes a state message would occupy on the wire.
    """
    if state is None:
        return 0
    if isinstance(state, (str, bytes)):
        return 1
    if isinstance(state, Mapping):
        return sum(state_size(value) for value in state.values())
    if isinstance(state, Iterable):
        return sum(state_size(item) for item in state)
    fields_ = getattr(state, "__dataclass_fields__", None)
    if fields_ is not None:
        return sum(state_size(getattr(state, name)) for name in fields_)
    return 1


@runtime_checkable
class TraceSink(Protocol):
    """What the engines require of a trace consumer.

    Implementations must treat every argument as **read-only**: a sink
    observes the query, it never steers it (ripplelint rule RPL010
    enforces this statically).  ``enabled`` gates all instrumentation —
    engines test it before computing span attributes, so a disabled sink
    pays one attribute load per site and nothing else.
    """

    enabled: bool

    def begin_span(self, kind: str, peer: Hashable, t: int, *,
                   parent: int | None = None, region: str | None = None,
                   **attrs: Any) -> int:
        """Open a span at time ``t``; returns its id (0 from null sinks)."""
        ...  # pragma: no cover - protocol

    def end_span(self, span_id: int, t: int, **attrs: Any) -> None:
        """Close span ``span_id`` at time ``t``, merging final attributes."""
        ...  # pragma: no cover - protocol

    def event(self, kind: str, t: int, *, span: int = 0, count: int = 1,
              **attrs: Any) -> None:
        """Record an instantaneous mark attached to span ``span``."""
        ...  # pragma: no cover - protocol

    def on_stats(self, stats: Any) -> None:
        """The query finished; ``stats`` is its final ``QueryStats``."""
        ...  # pragma: no cover - protocol


class NullSink:
    """The default sink: discards everything, costs one attribute test.

    ``enabled`` is a *class* attribute, so ``ctx.sink.enabled`` resolves
    without instance dict lookups; engines guard every span/event
    construction behind it and never call these methods in practice.
    """

    __slots__ = ()

    enabled: bool = False

    def begin_span(self, kind: str, peer: Hashable, t: int, *,
                   parent: int | None = None, region: str | None = None,
                   **attrs: Any) -> int:
        return 0

    def end_span(self, span_id: int, t: int, **attrs: Any) -> None:
        return None

    def event(self, kind: str, t: int, *, span: int = 0, count: int = 1,
              **attrs: Any) -> None:
        return None

    def on_stats(self, stats: Any) -> None:
        return None


#: Shared stateless instance; the default of ``QueryContext.sink``.
NULL_SINK = NullSink()


@dataclass
class Span:
    """One interval of query work; ``end`` is None while still open."""

    span_id: int
    kind: str
    peer: Hashable
    begin: int
    parent_id: int | None = None
    end: int | None = None
    region: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Closed duration; an open span reads as zero-length."""
        return (self.begin if self.end is None else self.end) - self.begin


@dataclass(frozen=True)
class PointEvent:
    """An instantaneous mark; ``span_id`` 0 means unattached."""

    kind: str
    t: int
    span_id: int = 0
    count: int = 1
    attrs: Mapping[str, Any] = field(default_factory=dict)


class QueryTrace:
    """A recording :class:`TraceSink`: everything, in emission order."""

    enabled: bool = True

    def __init__(self) -> None:
        self._next_id = itertools.count(1)
        self.spans: list[Span] = []
        self.events: list[PointEvent] = []
        #: Final ``QueryStats`` emissions (several for multi-round queries
        #: such as diversification — one per sub-query).
        self.stats_records: list[Any] = []
        self._by_id: dict[int, Span] = {}

    # -- TraceSink interface ----------------------------------------------

    def begin_span(self, kind: str, peer: Hashable, t: int, *,
                   parent: int | None = None, region: str | None = None,
                   **attrs: Any) -> int:
        span = Span(next(self._next_id), kind, peer, int(t),
                    parent_id=parent, region=region, attrs=dict(attrs))
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span.span_id

    def end_span(self, span_id: int, t: int, **attrs: Any) -> None:
        span = self._by_id.get(span_id)
        if span is None:
            return
        span.end = int(t)
        span.attrs.update(attrs)

    def event(self, kind: str, t: int, *, span: int = 0, count: int = 1,
              **attrs: Any) -> None:
        self.events.append(PointEvent(kind, int(t), span, count, dict(attrs)))

    def on_stats(self, stats: Any) -> None:
        self.stats_records.append(stats)

    # -- structure helpers ------------------------------------------------

    def get_span(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def roots(self) -> list[Span]:
        """Top-level spans, in creation order (one per query round)."""
        return [span for span in self.spans if span.parent_id is None]

    def children(self) -> dict[int, list[Span]]:
        """Parent span id -> child spans, in creation order."""
        out: dict[int, list[Span]] = {}
        for span in self.spans:
            if span.parent_id is not None:
                out.setdefault(span.parent_id, []).append(span)
        return out

    def root_of(self, span_id: int) -> int:
        """The id of the top-level ancestor of ``span_id``."""
        current = self._by_id[span_id]
        while current.parent_id is not None:
            current = self._by_id[current.parent_id]
        return current.span_id


@dataclass(frozen=True)
class ReplayedStats:
    """What :func:`replay` can reconstruct from a trace alone."""

    latency: int
    forward_messages: int
    response_messages: int
    answer_messages: int

    @property
    def total_messages(self) -> int:
        return (self.forward_messages + self.response_messages
                + self.answer_messages)


def replay(trace: QueryTrace) -> ReplayedStats:
    """Re-derive ``latency`` and the message counts from a recorded trace.

    Message counts mirror the counter sites one-to-one: each ``forward``
    event is one forward message, a ``response`` event carries the number
    of state messages it folded, each ``answer`` event is one non-empty
    answer upload.

    Latency is the per-root critical path: within each root tree the
    latest *activity* timestamp (``process`` span begins, successful
    ``attempt`` span ends, :data:`ACTIVITY_EVENTS` marks) measured from
    the root's begin — summed across roots, because multi-round queries
    run their rounds back to back (``QueryStats.combine_sequential``).
    """
    forwards = 0
    responses = 0
    answers = 0
    activity: dict[int, int] = {}
    for root in trace.roots():
        activity[root.span_id] = root.begin

    def mark(span_id: int, t: int) -> None:
        root_id = trace.root_of(span_id)
        if t > activity.setdefault(root_id, t):
            activity[root_id] = t

    for span in trace.spans:
        if span.kind == "process":
            mark(span.span_id, span.begin)
        elif (span.kind == "attempt" and span.end is not None
              and span.attrs.get("status") == "ok"):
            mark(span.span_id, span.end)
    for event in trace.events:
        if event.kind == "forward":
            forwards += 1
        elif event.kind == "response":
            responses += event.count
        elif event.kind == "answer":
            answers += 1
        if event.kind in ACTIVITY_EVENTS and event.span_id:
            mark(event.span_id, event.t)

    latency = sum(activity[root.span_id] - root.begin
                  for root in trace.roots())
    return ReplayedStats(latency=latency, forward_messages=forwards,
                         response_messages=responses,
                         answer_messages=answers)


def _activity_marks(trace: QueryTrace) -> dict[int, int]:
    """Per-span latest *own* activity timestamp (no descendants)."""
    own: dict[int, int] = {}
    for span in trace.spans:
        if span.kind == "process":
            own[span.span_id] = span.begin
        elif (span.kind == "attempt" and span.end is not None
              and span.attrs.get("status") == "ok"):
            own[span.span_id] = span.end
    for event in trace.events:
        if event.kind in ACTIVITY_EVENTS and event.span_id:
            if event.t > own.get(event.span_id, event.t - 1):
                own[event.span_id] = event.t
    return own


def critical_path(trace: QueryTrace,
                  root_id: int | None = None) -> list[Span]:
    """The chain of ``process`` spans leading to the latest activity.

    Walks from the root (the one with the largest latency contribution
    unless ``root_id`` picks one) down the child whose subtree holds the
    tree's latest activity mark; the spans on that walk are the hops the
    query's latency is made of — ``path[-1]`` begins exactly ``latency``
    time units after the root begins on fault-free traces (the fig7-style
    acceptance test pins this).
    """
    if not trace.spans:
        return []
    children = trace.children()
    own = _activity_marks(trace)
    # Children are always created after their parents, so one reverse
    # sweep over creation order folds subtree maxima bottom-up.
    subtree: dict[int, int] = {}
    for span in reversed(trace.spans):
        best = own.get(span.span_id, span.begin)
        for child in children.get(span.span_id, ()):
            best = max(best, subtree[child.span_id])
        subtree[span.span_id] = best

    roots = trace.roots()
    if root_id is None:
        root = max(roots, key=lambda s: (subtree[s.span_id] - s.begin,
                                         -s.span_id))
    else:
        root = next(s for s in roots if s.span_id == root_id)
    path: list[Span] = []
    current = root
    while True:
        if current.kind == "process":
            path.append(current)
        descend = None
        for child in children.get(current.span_id, ()):
            if subtree[child.span_id] == subtree[current.span_id]:
                descend = child
                break
        if descend is None:
            return path
        current = descend
