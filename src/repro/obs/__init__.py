"""Query observability: hop-level tracing, metrics, and exporters.

See ``docs/OBSERVABILITY.md``.  The package is dependency-light and
imports nothing from the simulation engines, so attaching (or not
attaching) a sink can never change engine behavior; the default
:data:`NULL_SINK` makes instrumentation a single attribute test per site.
"""

from .export import (load_jsonl, to_jsonl_records, to_perfetto, write_jsonl,
                     write_perfetto)
from .metrics import (Counter, DEFAULT_FANOUT_BUCKETS,
                      DEFAULT_STATE_SIZE_BUCKETS, Histogram, MetricsRegistry,
                      metrics_of)
from .trace import (ACTIVITY_EVENTS, NULL_SINK, NullSink, PointEvent,
                    QueryTrace, ReplayedStats, Span, TraceSink, critical_path,
                    replay, state_size)

__all__ = [
    "ACTIVITY_EVENTS",
    "Counter",
    "DEFAULT_FANOUT_BUCKETS",
    "DEFAULT_STATE_SIZE_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SINK",
    "NullSink",
    "PointEvent",
    "QueryTrace",
    "ReplayedStats",
    "Span",
    "TraceSink",
    "critical_path",
    "load_jsonl",
    "metrics_of",
    "replay",
    "state_size",
    "to_jsonl_records",
    "to_perfetto",
    "write_jsonl",
    "write_perfetto",
]
