"""Static-analysis tooling for the RIPPLE reproduction codebase.

The load-bearing invariants of this repo — bit-identical deterministic
replay under seeded :class:`~repro.net.faults.FaultPlan` schedules,
version-keyed :class:`~repro.common.store.LocalStore` caching, and the
overlay/handler protocol conformance that makes Algorithms 1-3 evaluate
identically over MIDAS, Chord, and CAN — are cheap to break silently and
expensive to debug from a flaky simulation.  :mod:`.ripplelint` rejects
the known-dangerous patterns *before* a simulation ever runs; see
``docs/STATIC_ANALYSIS.md`` for the rule catalogue.

Run it as ``python -m repro.analysis_tools.ripplelint src/`` or through
the ``tools/ripplelint`` wrapper.
"""

from typing import Any

__all__ = ["ripplelint"]


def __getattr__(name: str) -> Any:
    # Lazy import (PEP 562): lets ``python -m repro.analysis_tools.
    # ripplelint`` execute the submodule exactly once instead of
    # importing it eagerly here and re-executing it under runpy.
    if name in __all__:
        import importlib
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
