"""``ripplelint``: AST-based invariant checks specific to this codebase.

Generic linters cannot know that an unseeded ``random`` call silently
breaks deterministic replay, or that writing ``store._size`` bypasses the
version counter the computation cache hangs off.  Each rule here encodes
one such repo-specific invariant (the PR that introduced it is recorded
in ``docs/STATIC_ANALYSIS.md``):

==========  ===========================================================
rule        invariant
==========  ===========================================================
``RPL001``  no unseeded randomness in shipped code (replay)
``RPL002``  no wall-clock reads outside a ``_wallclock`` helper
``RPL003``  no access to ``LocalStore`` internals outside the store
``RPL004``  ``QueryHandler`` subclasses implement the full protocol
``RPL005``  churn-capable overlays honor the replication contract
``RPL006``  no mutable default arguments, no bare ``except``
``RPL007``  no exact float equality on computed kernel expressions
``RPL008``  ``__all__`` is present in packages and every name resolves
``RPL009``  ``# type: ignore`` must be narrow and carry a justification
``RPL010``  trace-sink overrides must not mutate ``QueryContext`` state
``RPL011``  retry/queue loops in ``repro/net`` carry an explicit bound
``RPL012``  arena modules: no object dtypes, no per-peer Python loops
==========  ===========================================================

Rules RPL001/002/003/004/006/009/010 apply to ``src/repro``,
``benchmarks/``, and ``tools/`` alike (the simulation invariants bind
benchmark drivers exactly as hard as library code); RPL005 is scoped to
``repro/overlays``, RPL007 to the numeric kernel modules, RPL008 to the
``repro`` package tree, RPL011 to ``repro/net``, RPL012 to the arena
substrate modules.

Findings print as ``path:line:col: RPLxxx message`` (or as GitHub
problem-matcher ``::error`` lines with ``--format github``) and the
process exits non-zero when any finding survives.  A finding is
suppressed by a targeted comment on the offending line::

    value = time.time()  # ripplelint: disable=RPL002 -- profiling only

Suppressions name explicit rule ids; there is no blanket opt-out.

Usage::

    python -m repro.analysis_tools.ripplelint src/
    python -m repro.analysis_tools.ripplelint --list-rules
    tools/ripplelint --format github src/
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = ["Finding", "ParsedModule", "RULES", "lint_paths", "lint_source",
           "main"]


# ---------------------------------------------------------------------------
# Infrastructure
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self, fmt: str = "text") -> str:
        if fmt == "github":
            # GitHub Actions problem-matcher format: annotates the file
            # and line directly on the PR diff.
            return (f"::error file={self.path},line={self.line},"
                    f"col={self.col}::{self.rule} {self.message}")
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


_SUPPRESS_RE = re.compile(r"#\s*ripplelint:\s*disable=([A-Z0-9, ]+)")


def _scan_comments(source: str) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` for every real comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps string
    literals and docstrings that merely *mention* a comment marker —
    like this module's own rule documentation — out of RPL009 and out
    of the suppression scanner.
    """
    comments: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse ran first
        pass
    return comments


def _logical_package(posix_path: str) -> str:
    """Path from the ``repro`` package root, or the plain path outside it."""
    parts = posix_path.split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return posix_path


@dataclass
class ParsedModule:
    """A parsed source file plus the metadata rules need.

    ``package`` is the module's path expressed from the ``repro`` package
    root (e.g. ``repro/net/eventsim.py``) so that rule scoping works the
    same whether the linter scans ``src/``, a single file, or a test
    fixture tree.  Files outside a ``repro`` package keep their plain
    relative path.
    """

    path: str
    package: str
    tree: ast.Module
    comments: list[tuple[int, int, str]]
    suppressed: dict[int, frozenset[str]]

    @classmethod
    def from_source(cls, source: str, *, path: str) -> "ParsedModule":
        tree = ast.parse(source, filename=path)
        comments = _scan_comments(source)
        suppressed: dict[int, frozenset[str]] = {}
        for line, _col, text in comments:
            match = _SUPPRESS_RE.search(text)
            if match:
                suppressed[line] = frozenset(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip())
        return cls(path=path, package=_logical_package(path), tree=tree,
                   comments=comments, suppressed=suppressed)

    @classmethod
    def parse(cls, path: Path) -> "ParsedModule":
        return cls.from_source(path.read_text(encoding="utf-8"),
                               path=path.as_posix())

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressed.get(line, frozenset())


Checker = Callable[[ParsedModule], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One lintable invariant: an id, a one-line summary, a checker."""

    id: str
    summary: str
    check: Checker


def _finding(module: ParsedModule, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(path=module.path, line=node.lineno,
                   col=node.col_offset + 1, rule=rule, message=message)


def _in_scope(module: ParsedModule, prefixes: tuple[str, ...]) -> bool:
    return any(module.package == p or module.package.startswith(p + "/")
               for p in prefixes)


#: Where the general-purpose invariants apply: the shipped package plus
#: the benchmark drivers and repo scripts that feed CI numbers.  A flaky
#: benchmark corrupts the regression baselines exactly like flaky
#: library code corrupts answers.
_SHARED_SCOPE = ("repro", "benchmarks", "tools")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _walk_with_function_stack(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield ``(node, enclosing_function_names)`` in document order."""
    stack: list[tuple[ast.AST, tuple[str, ...]]] = [(tree, ())]
    while stack:
        node, functions = stack.pop()
        yield node, functions
        inner = functions
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = functions + (node.name,)
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, inner))


# ---------------------------------------------------------------------------
# RPL001 -- unseeded randomness breaks deterministic replay
# ---------------------------------------------------------------------------

#: ``np.random`` members that merely *construct* seeded generators.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "Philox", "SFC64", "MT19937",
})


def _check_rpl001(module: ParsedModule) -> Iterator[Finding]:
    """RPL001: no unseeded randomness in shipped code.

    Replay under a seeded ``FaultPlan`` is bit-identical only while every
    random draw flows from an explicitly seeded ``np.random.Generator``
    (threaded through constructors) or :func:`repro.common.hashing.mix`.
    The process-global ``random`` module and the legacy ``np.random.<fn>``
    module-level draws are hidden global state and are banned outright.
    """
    if not _in_scope(module, _SHARED_SCOPE):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield _finding(
                        module, node, "RPL001",
                        "import of the process-global 'random' module; "
                        "thread a seeded np.random.Generator instead")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield _finding(
                    module, node, "RPL001",
                    "import from the process-global 'random' module; "
                    "thread a seeded np.random.Generator instead")
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (len(parts) == 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _NP_RANDOM_ALLOWED):
                yield _finding(
                    module, node, "RPL001",
                    f"legacy global-state draw '{dotted}'; use a seeded "
                    "np.random.default_rng(...) generator")


# ---------------------------------------------------------------------------
# RPL002 -- wall-clock reads where virtual time rules
# ---------------------------------------------------------------------------

_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: The single sanctioned wall-clock shim: a module-private helper named
#: ``_wallclock`` whose body is the only place the rule permits real
#: clock reads (see ``repro/experiments/__main__.py``).
_WALLCLOCK_HELPER = "_wallclock"


def _check_rpl002(module: ParsedModule) -> Iterator[Finding]:
    """RPL002: no wall-clock reads outside a ``_wallclock`` helper.

    Simulation code (``core/``, ``net/``, ``overlays/``, ``queries/``)
    runs on virtual time — ``EventSimulator.now`` and hop counts — so a
    real clock read is always a bug there.  The one legitimate consumer
    (experiment progress reporting) must route through a module-private
    ``_wallclock()`` helper, which keeps every real clock read greppable
    and explicitly allowlisted.
    """
    if not _in_scope(module, _SHARED_SCOPE):
        return
    for node, functions in _walk_with_function_stack(module.tree):
        if _WALLCLOCK_HELPER in functions:
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FNS:
                    yield _finding(
                        module, node, "RPL002",
                        f"wall-clock import 'from time import {alias.name}'; "
                        "simulation code runs on virtual time "
                        f"(route real timing through {_WALLCLOCK_HELPER}())")
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if parts[0] == "time" and len(parts) == 2 and parts[1] in _TIME_FNS:
            yield _finding(
                module, node, "RPL002",
                f"wall-clock read '{dotted}()'; simulation code runs on "
                f"virtual time (route real timing through "
                f"{_WALLCLOCK_HELPER}())")
        elif (parts[-1] in _DATETIME_FNS and len(parts) >= 2
                and "datetime" in parts[:-1]):
            yield _finding(
                module, node, "RPL002",
                f"wall-clock read '{dotted}()'; simulation code runs on "
                f"virtual time (route real timing through "
                f"{_WALLCLOCK_HELPER}())")


# ---------------------------------------------------------------------------
# RPL003 -- out-of-band LocalStore mutation defeats cache invalidation
# ---------------------------------------------------------------------------

_STORE_FIELDS = frozenset({"_buf", "_size", "_version", "_cache"})
_STORE_METHODS = frozenset({"_invalidate", "_reserve", "_score_index"})
_STORE_MODULE = "repro/common/store.py"


def _check_rpl003(module: ParsedModule) -> Iterator[Finding]:
    """RPL003: no access to ``LocalStore`` internals outside the store.

    Every mutation must bump ``LocalStore.version`` (which drops the
    version-keyed computation cache and invalidates replicas).  Touching
    ``_buf``/``_size``/``_version``/``_cache`` — or calling the private
    maintenance methods — from outside ``repro/common/store.py`` bypasses
    that machinery and silently serves stale cached kernels.
    """
    if not _in_scope(module, _SHARED_SCOPE) \
            or module.package == _STORE_MODULE:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr in _STORE_FIELDS:
            yield _finding(
                module, node, "RPL003",
                f"access to LocalStore internal '{node.attr}' outside the "
                "versioned mutation API; use insert/bulk_load/extract/"
                "take_all (mutation) or array/cached (reads)")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _STORE_METHODS:
                yield _finding(
                    module, node, "RPL003",
                    f"call to LocalStore private method '{func.attr}()' "
                    "outside the store; cache consistency is the store's "
                    "own job")


# ---------------------------------------------------------------------------
# RPL004 -- partial QueryHandler implementations fail at query time
# ---------------------------------------------------------------------------

#: Required protocol methods -> positional arity excluding ``self``
#: (see ``repro/core/handler.py``; the table mirrors the paper's six
#: abstract functions plus ``finalize``).
_HANDLER_REQUIRED = {
    "initial_state": 0,
    "compute_local_state": 2,
    "compute_global_state": 2,
    "update_local_state": 1,
    "compute_local_answer": 2,
    "is_link_relevant": 2,
    "link_priority": 1,
    "finalize": 1,
}
#: Optional hooks with defaults in the ABC -> expected arity.
_HANDLER_OPTIONAL = {
    "neutral_local_state": 0,
    "seed_satisfied": 1,
    "probe_score": 1,
    "answer_size": 1,
}


def _method_arity(fn: ast.FunctionDef) -> int | None:
    """Positional arity excluding self, or None when *args absorbs any."""
    if fn.args.vararg is not None:
        return None
    return len(fn.args.posonlyargs) + len(fn.args.args) - 1


def _is_abstract(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        if _dotted(base) in ("ABC", "abc.ABC"):
            return True
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                if _dotted(decorator) in ("abstractmethod",
                                          "abc.abstractmethod"):
                    return True
    return False


def _check_rpl004(module: ParsedModule) -> Iterator[Finding]:
    """RPL004: ``QueryHandler`` subclasses implement the full protocol.

    The RIPPLE templates call the six abstract handler functions (plus
    ``finalize``) dynamically, so a missing or mis-signatured method only
    explodes once a query actually reaches it — possibly deep inside a
    fault-injected simulation.  This rule checks presence and positional
    arity of every protocol method at parse time.
    """
    if not _in_scope(module, _SHARED_SCOPE):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_dotted(base) in ("QueryHandler", "handler.QueryHandler")
                   for base in node.bases):
            continue
        if _is_abstract(node):
            continue
        methods = {item.name: item for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        for name, arity in _HANDLER_REQUIRED.items():
            fn = methods.get(name)
            if fn is None:
                yield _finding(
                    module, node, "RPL004",
                    f"handler class '{node.name}' is missing protocol "
                    f"method '{name}' (see repro/core/handler.py)")
                continue
            actual = _method_arity(fn)
            if actual is not None and actual != arity:
                yield _finding(
                    module, fn, "RPL004",
                    f"handler method '{node.name}.{name}' takes {actual} "
                    f"positional argument(s), protocol expects {arity}")
        for name, arity in _HANDLER_OPTIONAL.items():
            fn = methods.get(name)
            if fn is None:
                continue
            actual = _method_arity(fn)
            if actual is not None and actual != arity:
                yield _finding(
                    module, fn, "RPL004",
                    f"handler hook '{node.name}.{name}' takes {actual} "
                    f"positional argument(s), protocol expects {arity}")


# ---------------------------------------------------------------------------
# RPL005 -- replication contract of churn-capable overlays
# ---------------------------------------------------------------------------

def _class_slots(cls: ast.ClassDef) -> frozenset[str] | None:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__slots__" in targets and isinstance(
                    node.value, (ast.Tuple, ast.List)):
                return frozenset(
                    element.value for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str))
    return None


def _check_rpl005(module: ParsedModule) -> Iterator[Finding]:
    """RPL005: churn-capable overlays honor the replication contract.

    ``ReplicaDirectory`` can only heal an overlay that (i) exposes
    ``replica_targets(peer, count)`` for structural replica placement and
    (ii) whose peers carry ``replicas`` and ``alive`` slots.  Any class
    that declares a ``physical_id`` (split logical/physical identity)
    must be fully ``PeerLike`` — ``peer_id``, ``store``, ``links`` — or
    liveness checks through ``physical_id()`` silently dereference the
    wrong machine.
    """
    if not _in_scope(module, ("repro/overlays",)):
        return
    classes = [node for node in ast.walk(module.tree)
               if isinstance(node, ast.ClassDef)]
    churny = []
    for cls in classes:
        methods = {item.name: item for item in cls.body
                   if isinstance(item, ast.FunctionDef)}
        if cls.name.endswith("Overlay") and \
                ("join" in methods or "leave" in methods):
            churny.append(cls)
            fn = methods.get("replica_targets")
            if fn is None:
                yield _finding(
                    module, cls, "RPL005",
                    f"churn-capable overlay '{cls.name}' does not define "
                    "replica_targets(peer, count); ReplicaDirectory cannot "
                    "place copies, so crashed zones are unrecoverable")
            else:
                arity = _method_arity(fn)
                if arity is not None and arity != 2:
                    yield _finding(
                        module, fn, "RPL005",
                        f"'{cls.name}.replica_targets' takes {arity} "
                        "positional argument(s), the replication contract "
                        "expects (peer, count)")
    if churny:
        for cls in classes:
            slots = _class_slots(cls)
            if slots is None or "store" not in slots:
                continue  # not a peer class
            for needed in ("replicas", "alive"):
                if needed not in slots:
                    yield _finding(
                        module, cls, "RPL005",
                        f"peer class '{cls.name}' lacks the '{needed}' "
                        "slot required by the replication/fault machinery")
    for cls in classes:
        slots = _class_slots(cls)
        if slots is not None and "physical_id" in slots:
            methods = {item.name for item in cls.body
                       if isinstance(item, ast.FunctionDef)}
            missing = [n for n in ("peer_id", "store")
                       if n not in slots and n not in methods]
            if "links" not in methods:
                missing.append("links")
            if missing:
                yield _finding(
                    module, cls, "RPL005",
                    f"class '{cls.name}' declares 'physical_id' but lacks "
                    f"{missing}; split-identity stand-ins must be fully "
                    "PeerLike (see repro/overlays/replication.py)")


# ---------------------------------------------------------------------------
# RPL006 -- mutable defaults and bare except
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque",
                            "defaultdict", "Counter", "OrderedDict"})


def _check_rpl006(module: ParsedModule) -> Iterator[Finding]:
    """RPL006: no mutable default arguments, no bare ``except``.

    A mutable default is shared across every call — per-peer state would
    leak between simulated peers.  A bare ``except`` swallows
    ``DuplicateVisitError`` / ``SimulationBudgetExceeded`` and the other
    loud invariant guards this codebase relies on failing fast.
    """
    if not _in_scope(module, _SHARED_SCOPE):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                               ast.ListComp, ast.DictComp,
                                               ast.SetComp))
                if (not mutable and isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in _MUTABLE_CALLS):
                    mutable = True
                if mutable:
                    name = getattr(node, "name", "<lambda>")
                    yield _finding(
                        module, default, "RPL006",
                        f"mutable default argument in '{name}'; default to "
                        "None (or an immutable sentinel) and materialize "
                        "inside the function")
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield _finding(
                module, node, "RPL006",
                "bare 'except:' swallows simulator invariant errors; "
                "catch the narrowest exception type instead")


# ---------------------------------------------------------------------------
# RPL007 -- exact float equality on computed kernel expressions
# ---------------------------------------------------------------------------

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod,
              ast.FloorDiv)
_KERNEL_MODULES = ("repro/common/geometry.py", "repro/common/scoring.py",
                   "repro/queries")


def _check_rpl007(module: ParsedModule) -> Iterator[Finding]:
    """RPL007: no ``==``/``!=`` against computed floats in kernel modules.

    Coordinates and scores flow through sums, products, and distance
    computations; comparing such an *expression* exactly collapses or
    splits skyline/top-k ties depending on rounding (the kernels sort
    with explicit tie-break keys for the same reason).  Comparing two
    stored values (names, attributes) exactly is fine — zones tile the
    domain with shared, bit-identical face coordinates.
    """
    if not _in_scope(module, _KERNEL_MODULES):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        for operand in (node.left, *node.comparators):
            if isinstance(operand, ast.BinOp) and \
                    isinstance(operand.op, _ARITH_OPS):
                yield _finding(
                    module, node, "RPL007",
                    "exact ==/!= on an arithmetic expression in a kernel "
                    "module; bind the value first and compare with an "
                    "explicit tolerance (math.isclose) or restructure")
                break


# ---------------------------------------------------------------------------
# RPL008 -- __all__ hygiene
# ---------------------------------------------------------------------------

def _bound_names(tree: ast.Module) -> tuple[set[str], bool]:
    """Module-level bound names plus whether a PEP 562 __getattr__ exists.

    Walks top-level statements including the branches of module-level
    ``if``/``try`` blocks (``if TYPE_CHECKING:`` imports bind names for
    the checker's purposes).
    """
    names: set[str] = set()
    has_getattr = False
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
    return names, has_getattr


def _literal_all(tree: ast.Module) -> tuple[ast.AST, list[str]] | None:
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in targets):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            names = [element.value for element in value.elts
                     if isinstance(element, ast.Constant)
                     and isinstance(element.value, str)]
            return node, names
        return node, []
    return None


def _check_rpl008(module: ParsedModule) -> Iterator[Finding]:
    """RPL008: ``__all__`` is present in packages and every name resolves.

    ``from repro.X import *`` must surface a deliberate public API:
    every package ``__init__.py`` needs a docstring and an ``__all__``,
    and each ``__all__`` entry must be bound at module level (modules
    serving names lazily via a PEP 562 ``__getattr__`` are exempt from
    the resolution check, not from the presence check).
    """
    if not _in_scope(module, ("repro",)):
        return
    declared = _literal_all(module.tree)
    is_package = module.package.endswith("__init__.py")
    if is_package:
        if ast.get_docstring(module.tree) is None:
            yield Finding(path=module.path, line=1, col=1, rule="RPL008",
                          message="package __init__.py lacks a module "
                                  "docstring describing its public API")
        if declared is None:
            yield Finding(path=module.path, line=1, col=1, rule="RPL008",
                          message="package __init__.py lacks __all__; "
                                  "star-imports must be deliberate")
    if declared is None:
        return
    node, names = declared
    bound, has_getattr = _bound_names(module.tree)
    if has_getattr:
        return
    for name in names:
        if name not in bound and name != "__version__":
            yield _finding(
                module, node, "RPL008",
                f"__all__ names '{name}' which is not bound at module "
                "level; star-imports of this module would fail")


# ---------------------------------------------------------------------------
# RPL009 -- type: ignore hygiene
# ---------------------------------------------------------------------------

_IGNORE_RE = re.compile(r"#\s*type:\s*ignore(?P<codes>\[[^\]]*\])?"
                        r"(?P<trailer>.*)$")


def _check_rpl009(module: ParsedModule) -> Iterator[Finding]:
    """RPL009: ``# type: ignore`` must be narrow and carry a justification.

    A blanket ignore suppresses every current and future error on the
    line; an unexplained one rots.  Required shape::

        x = f(y)  # type: ignore[arg-type]  # knobs forwarded verbatim

    i.e. an explicit error-code list plus a trailing comment saying why
    the checker is wrong (or why the dynamic idiom is intentional).
    """
    if not _in_scope(module, _SHARED_SCOPE):
        return
    for number, col, text in module.comments:
        match = _IGNORE_RE.search(text)
        if match is None:
            continue
        if not match.group("codes"):
            yield Finding(
                path=module.path, line=number, col=col + match.start() + 1,
                rule="RPL009",
                message="blanket '# type: ignore' suppresses every error "
                        "on the line; use '# type: ignore[code]' plus a "
                        "justification comment")
            continue
        trailer = match.group("trailer").strip()
        if not trailer.startswith("#") or len(trailer.lstrip("# ")) < 3:
            yield Finding(
                path=module.path, line=number, col=col + match.start() + 1,
                rule="RPL009",
                message="'# type: ignore[...]' without a justification; "
                        "append '  # <why the checker is wrong here>'")


# ---------------------------------------------------------------------------
# RPL010 -- trace sinks observe queries, they never drive them
# ---------------------------------------------------------------------------

#: The TraceSink protocol surface (see ``repro/obs/trace.py``).
_SINK_METHODS = frozenset({"begin_span", "end_span", "event", "on_stats"})
#: Base-class names that mark a class as a sink implementation.
_SINK_BASES = ("TraceSink", "NullSink", "QueryTrace")
#: QueryContext methods that mutate query accounting (``net/context.py``).
_CTX_MUTATORS = frozenset({
    "begin_processing", "on_forward", "on_response", "on_answer",
    "on_timeout", "on_retry", "on_reroute", "on_drop", "on_ack",
    "on_unreachable", "on_region_recovered", "on_replica_read", "note_time",
    "on_queue_wait", "cancel",
})
#: Methods that mutate a container in place.
_MUTATING_CALLS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault",
})


def _chain_root(node: ast.AST) -> str | None:
    """The leftmost ``Name`` of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_sink_class(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        dotted = _dotted(base)
        if dotted is not None and dotted.split(".")[-1].endswith(_SINK_BASES):
            return True
    defined = {item.name for item in cls.body
               if isinstance(item, ast.FunctionDef)}
    return len(defined & _SINK_METHODS) >= 2


def _check_rpl010(module: ParsedModule) -> Iterator[Finding]:
    """RPL010: trace-sink overrides must not mutate ``QueryContext`` state.

    The observability layer is passive by contract: with any sink
    attached, answers and ``QueryStats`` stay bit-identical to a
    ``NullSink`` run (the zero-overhead guarantee, property-tested in
    ``tests/obs``).  A sink method that calls a ``QueryContext`` counter
    mutator — or writes through any object handed to it — silently skews
    the very statistics the trace is supposed to reproduce.  Flagged
    inside ``begin_span``/``end_span``/``event``/``on_stats`` overrides:
    calls to context mutators, attribute/item assignment rooted at a
    method parameter, and in-place container mutation of a parameter.
    """
    if not _in_scope(module, _SHARED_SCOPE):
        return
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef) or not _is_sink_class(cls):
            continue
        for fn in cls.body:
            if not isinstance(fn, ast.FunctionDef) or \
                    fn.name not in _SINK_METHODS:
                continue
            params = {arg.arg for arg in (*fn.args.posonlyargs,
                                          *fn.args.args,
                                          *fn.args.kwonlyargs)}
            params.discard("self")
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute):
                    attr = node.func.attr
                    root = _chain_root(node.func.value)
                    if attr in _CTX_MUTATORS:
                        yield _finding(
                            module, node, "RPL010",
                            f"sink method '{cls.name}.{fn.name}' calls "
                            f"QueryContext mutator '{attr}()'; sinks "
                            "observe queries, they must never drive the "
                            "accounting they record")
                    elif attr in _MUTATING_CALLS and root in params:
                        yield _finding(
                            module, node, "RPL010",
                            f"sink method '{cls.name}.{fn.name}' mutates "
                            f"parameter '{root}' via '.{attr}()'; record a "
                            "copy instead of editing shared query state")
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if not isinstance(target, (ast.Attribute,
                                                   ast.Subscript)):
                            continue
                        root = _chain_root(target)
                        if root in params:
                            yield _finding(
                                module, target, "RPL010",
                                f"sink method '{cls.name}.{fn.name}' "
                                f"assigns through parameter '{root}'; "
                                "sinks must treat recorded objects as "
                                "read-only")


# ---------------------------------------------------------------------------
# RPL011 -- unbounded loops on retry/queue paths
# ---------------------------------------------------------------------------

#: Name fragments that mark a loop as explicitly bounded.  Matching is
#: substring-on-lowercase, so ``max_events``, ``self.capacity``,
#: ``retries_left``, and ``watchdog`` all qualify.
_BOUND_TOKENS = ("max", "budget", "cap", "deadline", "limit", "tries",
                 "attempt", "bound", "watchdog")


def _mentions_bound(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        else:
            continue
        lowered = name.lower()
        if any(token in lowered for token in _BOUND_TOKENS):
            return True
    return False


def _check_rpl011(module: ParsedModule) -> Iterator[Finding]:
    """RPL011: retry/queue loops in ``repro/net`` carry an explicit bound.

    The simulator's event pump, the scheduler's admission drain, and the
    fault layer's retry machinery are exactly the places where an
    unbounded ``while`` turns one lost ack into a hang that no deadline
    can interrupt — the concurrency layer's liveness rests on every such
    loop being cut off by *something*.  A ``while`` loop passes when its
    condition compares against a value (``ast.Compare``, e.g.
    ``while visited < max_peers``) or when the loop mentions a bound by
    name anywhere in its test or body (an identifier or attribute
    containing one of max/budget/cap/deadline/limit/tries/attempt/bound/
    watchdog, e.g. the event pump consuming ``cap``).  A bare
    ``while True:`` pump with neither has no exit story and is flagged.
    """
    if not _in_scope(module, ("repro/net",)):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.While):
            continue
        if any(isinstance(part, ast.Compare)
               for part in ast.walk(node.test)):
            continue
        if _mentions_bound(node):
            continue
        yield _finding(
            module, node, "RPL011",
            "unbounded 'while' on a retry/queue path; compare the loop "
            "condition against a limit or reference an explicit bound "
            "(max_*/cap/budget/deadline/limit/tries) so the loop "
            "provably terminates")


# ---------------------------------------------------------------------------
# RPL012 -- arena modules stay vectorized
# ---------------------------------------------------------------------------

#: The structure-of-arrays substrate: these modules exist so that no
#: per-peer Python object or loop stands between a query and the flat
#: arrays.  The mirror *builder* inherently walks the object peers once;
#: its loops carry per-line suppressions rather than a scope exemption,
#: so every new loop is a conscious decision.
_ARENA_MODULES = ("repro/overlays/arena.py", "repro/overlays/arena_build.py")

#: Identifiers that denote "the whole peer range" when iterated.
_PEER_RANGE_NAMES = frozenset({"peers", "n_peers", "num_peers",
                               "peer_count"})


def _is_object_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "object":
        return True
    if isinstance(node, ast.Attribute) and node.attr in ("object_", "object"):
        return True
    return isinstance(node, ast.Constant) and node.value in ("object", "O")


def _iterates_peer_range(expr: ast.AST) -> bool:
    """True when a loop iterable mentions the peer range: a ``.peers()``
    call, or an identifier like ``peers``/``n_peers`` (also inside
    ``range(...)``/``enumerate(...)`` wrappers)."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            callee = sub.func
            if isinstance(callee, ast.Attribute) and callee.attr == "peers":
                return True
            if isinstance(callee, ast.Name) and callee.id == "peers":
                return True
        if isinstance(sub, ast.Name) and sub.id in _PEER_RANGE_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _PEER_RANGE_NAMES:
            return True
    return False


def _check_rpl012(module: ParsedModule) -> Iterator[Finding]:
    """RPL012: arena modules hold no object arrays and no per-peer loops.

    The arena substrate's entire value is that per-peer state lives in
    flat *typed* NumPy arrays operated on wholesale: a ``dtype=object``
    array silently reintroduces one Python object per peer (boxing,
    pointer-chasing, no vectorized kernels), and a Python ``for`` loop
    or comprehension over the peer range reintroduces the O(n)
    interpreter cost the arena exists to remove — harmless at 200 peers,
    fatal at 1M.  Flags ``dtype=object`` (including ``np.object_``,
    ``"object"``/``"O"`` strings, and ``.astype(object)``) anywhere in
    an arena module, and any ``for``/comprehension whose iterable
    mentions the peer range (a ``.peers()`` call or a
    ``peers``/``n_peers``-style identifier, bare or inside
    ``range``/``enumerate``).  The mirror builder's one-time snapshot
    walk carries per-line suppressions — the loop is the documented
    exception, not the default.
    """
    if not _in_scope(module, _ARENA_MODULES):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "dtype" \
                        and _is_object_dtype(keyword.value):
                    yield _finding(
                        module, node, "RPL012",
                        "dtype=object defeats the arena's flat typed "
                        "layout; use a numeric dtype (encode ragged data "
                        "as CSR offsets + a flat payload)")
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "astype" and node.args \
                    and _is_object_dtype(node.args[0]):
                yield _finding(
                    module, node, "RPL012",
                    "astype(object) defeats the arena's flat typed "
                    "layout; keep the array numeric")
        iterables: list[ast.AST] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(comp.iter for comp in node.generators)
        if any(_iterates_peer_range(it) for it in iterables):
            yield _finding(
                module, node, "RPL012",
                "Python-level loop over the peer range inside an arena "
                "module; express this as a vectorized kernel over the "
                "flat arrays (or suppress per line if the walk is a "
                "one-time snapshot of an object overlay)")


# ---------------------------------------------------------------------------
# Registry and driver
# ---------------------------------------------------------------------------

RULES: tuple[Rule, ...] = tuple(
    Rule(id=rule_id, summary=(checker.__doc__ or "").strip().splitlines()[0],
         check=checker)
    for rule_id, checker in [
        ("RPL001", _check_rpl001),
        ("RPL002", _check_rpl002),
        ("RPL003", _check_rpl003),
        ("RPL004", _check_rpl004),
        ("RPL005", _check_rpl005),
        ("RPL006", _check_rpl006),
        ("RPL007", _check_rpl007),
        ("RPL008", _check_rpl008),
        ("RPL009", _check_rpl009),
        ("RPL010", _check_rpl010),
        ("RPL011", _check_rpl011),
        ("RPL012", _check_rpl012),
    ]
)


def lint_module(module: ParsedModule,
                rules: Sequence[Rule] = RULES) -> list[Finding]:
    """All unsuppressed findings for one parsed module."""
    findings = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    return findings


def lint_source(source: str, *, virtual_path: str,
                rules: Sequence[Rule] = RULES) -> list[Finding]:
    """Lint a source string as though it lived at ``virtual_path``.

    The test-suite's fixture entry point: ``virtual_path`` determines
    rule scoping exactly like a real file path would.
    """
    return lint_module(ParsedModule.from_source(source, path=virtual_path),
                       rules)


def _is_python_script(path: Path) -> bool:
    """Extensionless executables with a python shebang (``tools/ripplelint``)."""
    if path.suffix or not path.is_file():
        return False
    try:
        with path.open("rb") as fh:
            first = fh.readline(128)
    except OSError:  # unreadable special file; not lintable anyway
        return False
    return first.startswith(b"#!") and b"python" in first


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            scripts = (p for p in path.rglob("*") if _is_python_script(p))
            yield from sorted({*path.rglob("*.py"), *scripts})
        elif path.suffix == ".py" or _is_python_script(path):
            yield path


def lint_paths(paths: Iterable[str],
               rules: Sequence[Rule] = RULES) -> list[Finding]:
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        if "egg-info" in path.as_posix():
            continue
        module = ParsedModule.parse(path)
        findings.extend(lint_module(module, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis_tools.ripplelint",
        description="AST-based invariant checks for the RIPPLE codebase")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="'github' emits ::error problem-matcher lines")
    parser.add_argument("--rule", action="append", metavar="RPLxxx",
                        help="restrict to specific rule ids (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0

    rules: Sequence[Rule] = RULES
    if args.rule:
        wanted = set(args.rule)
        unknown = wanted - {rule.id for rule in RULES}
        if unknown:
            parser.error(f"unknown rule id(s): {sorted(unknown)}")
        rules = [rule for rule in RULES if rule.id in wanted]

    findings = lint_paths(args.paths, rules)
    for finding in findings:
        print(finding.render(args.format))
    if findings:
        print(f"ripplelint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
