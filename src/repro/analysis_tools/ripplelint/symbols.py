"""Symbol table and import resolver for the ``repro`` package tree.

Maps names to definitions across the whole program so the call graph
(:mod:`.callgraph`) can resolve ``Name`` calls through import chains and
method calls through the class inventory:

* every top-level function and every class method gets a *qualname*
  (``repro.net.scheduler.QueryEngine.submit``) and a line span;
* every module gets an import map (local alias -> dotted target), with
  relative imports resolved against the module's own dotted name;
* classes record their base-name spellings so protocol/ABC hierarchies
  (``QueryHandler``, ``TraceSink`` and friends) can be walked
  transitively;
* a bare-name method index (``compute_local_state`` -> every method so
  named) backs the conservative receiver-blind resolution of attribute
  calls.

Nested functions are folded into their enclosing top-level function or
method: reachability is judged at that granularity, which over-counts
(a reachable function makes its inner helpers reachable) — the safe
direction for a checker whose scope must only ever grow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .engine import ParsedModule, Project

__all__ = ["ClassInfo", "FunctionInfo", "SymbolTable"]


@dataclass
class FunctionInfo:
    """One top-level function or class method."""

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def span(self) -> tuple[int, int]:
        return (self.node.lineno,
                self.node.end_lineno or self.node.lineno)

    def param_names(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in (*args.posonlyargs, *args.args,
                                *args.kwonlyargs)]


@dataclass
class ClassInfo:
    """One class definition: methods plus base-name spellings."""

    qualname: str
    module: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class SymbolTable:
    """Project-wide name -> definition maps (see the module docstring)."""

    project: Project
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module dotted name -> {local alias: dotted target}
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: bare method name -> qualnames of every method so named
    method_index: dict[str, set[str]] = field(default_factory=dict)
    #: bare class name -> qualnames of every class so named
    class_index: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: Project) -> "SymbolTable":
        table = cls(project=project)
        for module_name, module in project.modules.items():
            table._index_module(module_name, module)
        return table

    # -- construction ------------------------------------------------------

    def _index_module(self, module_name: str, module: ParsedModule) -> None:
        imports: dict[str, str] = {}
        self.imports[module_name] = imports
        for node in module.tree.body:
            self._index_statement(module_name, node, imports)

    def _index_statement(self, module_name: str, node: ast.stmt,
                         imports: dict[str, str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(qualname=f"{module_name}.{node.name}",
                                module=module_name, node=node)
            self.functions[info.qualname] = info
        elif isinstance(node, ast.ClassDef):
            self._index_class(module_name, node)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_from(module_name, node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and optional-dependency try blocks
            # still bind names the resolver must know about.
            bodies: list[list[ast.stmt]] = [getattr(node, "body", [])]
            bodies.append(getattr(node, "orelse", []))
            bodies.append(getattr(node, "finalbody", []))
            for handler in getattr(node, "handlers", []):
                bodies.append(handler.body)
            for body in bodies:
                for child in body:
                    self._index_statement(module_name, child, imports)

    def _index_class(self, module_name: str, node: ast.ClassDef) -> None:
        from .astutil import dotted
        qualname = f"{module_name}.{node.name}"
        info = ClassInfo(qualname=qualname, module=module_name, node=node,
                         bases=[d for d in (dotted(b) for b in node.bases)
                                if d is not None])
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualname=f"{qualname}.{item.name}",
                    module=module_name, node=item, cls=qualname)
                info.methods[item.name] = method
                self.functions[method.qualname] = method
                self.method_index.setdefault(item.name, set()).add(
                    method.qualname)
        self.classes[qualname] = info
        self.class_index.setdefault(node.name, set()).add(qualname)

    def _resolve_from(self, module_name: str,
                      node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        parts = module_name.split(".")
        # ``from .x import y`` inside a module drops the module's own
        # leaf; inside a package __init__ the dotted name *is* the
        # package, which ``module_name`` already reflects.
        anchor = parts[:-node.level] if not self._is_package(module_name) \
            else parts[:len(parts) - node.level + 1]
        if not anchor:
            return node.module
        if node.module:
            return ".".join(anchor + [node.module])
        return ".".join(anchor)

    def _is_package(self, module_name: str) -> bool:
        module = self.project.modules.get(module_name)
        return module is not None and \
            module.package.endswith("__init__.py")

    # -- queries -----------------------------------------------------------

    def resolve_name(self, module_name: str, name: str,
                     _depth: int = 0) -> str | None:
        """Resolve a bare name used in ``module_name`` to a qualname.

        Follows import chains (including re-exports through package
        ``__init__`` modules) up to a small fixed depth; returns the
        qualname of a project function or class, or None when the name
        leaves the project (stdlib, numpy) or cannot be resolved.
        """
        if _depth > 8:
            return None
        direct = f"{module_name}.{name}"
        if direct in self.functions or direct in self.classes:
            return direct
        target = self.imports.get(module_name, {}).get(name)
        if target is None:
            return None
        if target in self.functions or target in self.classes:
            return target
        if target in self.project.modules:
            return target  # a module alias; attribute access resolves later
        owner, _, leaf = target.rpartition(".")
        if owner and owner in self.project.modules:
            return self.resolve_name(owner, leaf, _depth + 1)
        return None

    def resolve_dotted(self, module_name: str, path: str) -> str | None:
        """Resolve ``alias.attr...`` used in ``module_name``.

        Handles module-alias chains (``framework.execute``) and
        class-attribute chains (``QueryEngine.submit``).
        """
        first, _, rest = path.partition(".")
        base = self.resolve_name(module_name, first)
        if base is None:
            return None
        while rest:
            head, _, rest = rest.partition(".")
            if base in self.project.modules:
                base = self.resolve_name(base, head)
                if base is None:
                    return None
            elif base in self.classes:
                method = self.classes[base].methods.get(head)
                if method is None:
                    return None
                base = method.qualname
            else:
                return None
        return base

    def subclasses_of(self, base_name: str) -> list[ClassInfo]:
        """Every project class whose ancestry names ``base_name``.

        Base matching is by trailing spelling (``QueryHandler`` matches
        ``handler.QueryHandler``), walked transitively through the
        project class inventory — the conservative protocol-hierarchy
        walk the whole-program rules rely on.
        """
        matching: set[str] = set()
        changed = True
        bounded = 0
        while changed and bounded <= len(self.classes):
            changed = False
            bounded += 1
            for qualname, info in self.classes.items():
                if qualname in matching:
                    continue
                for base in info.bases:
                    leaf = base.split(".")[-1]
                    if leaf == base_name:
                        matching.add(qualname)
                        changed = True
                        break
                    resolved = self.resolve_dotted(info.module, base)
                    if resolved in matching:
                        matching.add(qualname)
                        changed = True
                        break
        return [self.classes[q] for q in sorted(matching)]

    def function_at(self, module_name: str,
                    line: int) -> FunctionInfo | None:
        """The top-level function/method whose span contains ``line``."""
        best: FunctionInfo | None = None
        for info in self.functions.values():
            if info.module != module_name:
                continue
            lo, hi = info.span
            if lo <= line <= hi:
                if best is None or lo > best.span[0]:
                    best = info
        return best
