"""Sim-reachability: which code can run inside a deterministic simulation.

The determinism rules used to scope themselves by module-name prefix
(``repro/core``, ``repro/net``, ...).  That heuristic is a *directory*
property; the guarantee it protects — bit-identical replay — is a
*call-graph* property: a helper in ``repro/common`` is harmless until an
engine path starts calling it, and a function in ``repro/obs`` is
sim-critical the moment the framework invokes it through a sink.

This pass roots the conservative call graph at the simulation entry
points (:data:`ENTRY_POINTS`: the three engines, the batched wavefront
engine, the query engine's submission surface, the workload driver, and
the seeded query drivers) and closes over "may call".  The resulting
set of functions, line spans, and modules is what
:func:`repro.analysis_tools.ripplelint.engine.sim_scope` unions with the
module-prefix fallback — reachability strictly *extends* the historical
scope, it never shrinks it, so unresolvable call edges (dynamic dispatch
the graph cannot follow) only cost extra coverage, never soundness
relative to the old behavior.

Module-level statements of a module containing any reachable function
count as reachable too: importing the module executes them, and sim code
imports it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .callgraph import CallGraph

__all__ = ["ENTRY_POINTS", "SimReachability"]

#: Simulation entry-point roots, as symbol-table qualnames.  Every name
#: listed here must resolve in the real repo — ``missing_roots`` on the
#: built pass reports any that do not (and the test-suite pins it empty),
#: so a rename cannot silently detach the analysis from an engine.
ENTRY_POINTS: tuple[str, ...] = (
    # The three scalar engines (Algorithms 1-3 + supervised variants).
    "repro.core.framework.run_ripple",
    "repro.core.framework.run_fast",
    "repro.core.framework.run_slow",
    "repro.core.framework.execute",
    "repro.net.eventsim.event_driven_ripple",
    "repro.net.faults.resilient_ripple",
    # The batched wavefront engine over the SoA arena.
    "repro.overlays.arena.wavefront_execute",
    "repro.overlays.arena.run_wavefront",
    # The concurrent multi-query engine's submission surface.
    "repro.net.scheduler.QueryEngine.submit",
    "repro.net.scheduler.QueryEngine.submit_at",
    "repro.net.scheduler.QueryEngine.run",
    "repro.net.workload.run_workload",
    # Seeded query drivers (route -> probe -> ripple).
    "repro.queries.drivers.run_seeded",
    "repro.queries.topk.distributed_topk",
    "repro.queries.skyline.distributed_skyline",
    "repro.queries.diversify.greedy_diversify",
)

#: Modules never treated as sim-reachable even if the receiver-blind
#: method resolution finds a name collision into them: the linter
#: analyzes simulations, it does not run inside one.  (RPL001/002/006/
#: 009 still bind it through the shared module-prefix scope.)
_EXCLUDED_PREFIXES = ("repro.analysis_tools",)


@dataclass
class SimReachability:
    """Reachable qualnames + per-module line spans, rooted at the engines."""

    callgraph: CallGraph
    roots: tuple[str, ...] = ENTRY_POINTS
    reachable: set[str] = field(default_factory=set)
    missing_roots: tuple[str, ...] = ()
    #: module dotted name -> sorted (lo, hi) line spans of reachable code
    spans: dict[str, list[tuple[int, int]]] = field(default_factory=dict)

    @classmethod
    def build(cls, callgraph: CallGraph,
              roots: tuple[str, ...] = ENTRY_POINTS) -> "SimReachability":
        functions = callgraph.symbols.functions
        present = {root for root in roots if root in functions}
        pass_ = cls(callgraph=callgraph, roots=roots,
                    missing_roots=tuple(sorted(set(roots) - present)))
        pass_.reachable = {
            qualname for qualname in callgraph.reachable_from(present)
            if not qualname.startswith(_EXCLUDED_PREFIXES)}
        for qualname in pass_.reachable:
            info = functions[qualname]
            pass_.spans.setdefault(info.module, []).append(info.span)
        for module in pass_.spans:
            pass_.spans[module].sort()
        return pass_

    def function_reachable(self, qualname: str) -> bool:
        return qualname in self.reachable

    def module_reachable(self, module_name: str) -> bool:
        """Whether any function of the module is sim-reachable."""
        return module_name in self.spans

    def line_reachable(self, module_name: str, line: int) -> bool:
        """Whether ``line`` is inside reachable code.

        Lines inside a reachable function's span qualify directly;
        module-level lines (imports, constants) qualify whenever the
        module holds any reachable function, because importing the
        module — which sim code does — executes them.
        """
        spans = self.spans.get(module_name)
        if spans is None:
            return False
        for lo, hi in spans:
            if lo <= line <= hi:
                return True
        functions = self.callgraph.symbols.functions
        for info in functions.values():
            if info.module != module_name:
                continue
            lo, hi = info.span
            if lo <= line <= hi:
                # Inside a function that is *not* reachable.
                return False
        return True  # module-level statement of a reachable module
