"""Finding baselines: adopt the linter on a codebase with known debt.

A baseline is a JSON snapshot of the current findings.  Comparing a run
against it splits findings into *new* (fail the build) and *known*
(tracked debt, reported but tolerated), so a rule can be introduced —
or tightened via reachability — without first paying down every historic
hit in the same change.

Matching is deliberately line-insensitive: findings are keyed by
``(path, rule, message)`` as a multiset, so unrelated edits that shift a
known finding up or down a file do not resurrect it as "new".  Two
*identical* findings in one file are two multiset entries — fixing one
of a pair shrinks the allowance.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from .engine import Finding

__all__ = ["compare", "load", "write"]

_VERSION = 1


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.path, finding.rule, finding.message)


def write(path: Path, findings: Iterable[Finding]) -> None:
    """Record ``findings`` as the accepted baseline at ``path``."""
    entries = [
        {"path": path, "rule": rule, "message": message}
        for path, rule, message in sorted(_key(f) for f in findings)]
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def load(path: Path) -> Counter:
    """The baseline at ``path`` as a ``(path, rule, message)`` multiset."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != _VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path}; "
            f"re-record with --write-baseline")
    counter: Counter = Counter()
    for entry in payload.get("findings", []):
        counter[(entry["path"], entry["rule"], entry["message"])] += 1
    return counter


def compare(findings: Sequence[Finding],
            known: Counter) -> tuple[list[Finding], list[Finding]]:
    """Split ``findings`` into ``(new, baselined)`` against ``known``.

    Consumes baseline allowances as a multiset: each recorded finding
    excuses at most one live finding with the same key.
    """
    remaining = Counter(known)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
