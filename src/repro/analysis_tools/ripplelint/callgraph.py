"""Conservative call graph over the ``repro`` package tree.

Nodes are the symbol table's functions (top-level functions and class
methods); edges over-approximate "may call":

* **Name calls** (``execute(...)``) resolve through the import resolver,
  following re-export chains; calling a project class adds an edge to
  its ``__init__``.
* **Attribute calls** (``handler.compute_local_state(...)``,
  ``self._admit(...)``) resolve receiver-blind through the method index:
  an edge to *every* project method of that name.  This is exactly how
  the protocol classes (``QueryHandler``, ``TraceSink``, the peer and
  overlay protocols) dispatch dynamically, so the over-approximation is
  the point — a handler implementation becomes reachable the moment any
  reachable code calls its protocol method by name.  Module-alias chains
  (``framework.execute``) resolve precisely first.
* **References** — a bare name that resolves to a project function but
  is not called (callback passing, ``executor=wavefront_execute``) also
  adds an edge: address-taken functions may run.

Calls that resolve to nothing in the project (builtins, numpy, genuinely
dynamic dispatch) are counted per function as *unresolved*; the
reachability pass exposes that count so scoping can prove it never got
looser than the module-prefix fallback.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from .astutil import dotted
from .symbols import SymbolTable

__all__ = ["CallGraph"]

#: Attribute-call names that never resolve inside the project and would
#: otherwise be counted as unresolved edges on nearly every function.
_BUILTIN_METHODS = frozenset({
    "append", "extend", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "get", "items", "keys", "values", "add", "discard",
    "remove", "index", "count", "sort", "reverse", "copy", "join",
    "split", "rsplit", "strip", "lstrip", "rstrip", "startswith",
    "endswith", "format", "encode", "decode", "lower", "upper", "title",
    "replace", "partition", "rpartition", "zfill", "ljust", "rjust",
})


@dataclass
class CallGraph:
    """``qualname -> set[qualname]`` edges plus unresolved-call counts."""

    symbols: SymbolTable
    edges: dict[str, set[str]] = field(default_factory=dict)
    unresolved: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, symbols: SymbolTable) -> "CallGraph":
        graph = cls(symbols=symbols)
        for qualname, info in symbols.functions.items():
            graph.edges[qualname] = set()
            graph.unresolved[qualname] = 0
            graph._scan_function(qualname, info.module, info.node,
                                 cls_qualname=info.cls)
        return graph

    # -- construction ------------------------------------------------------

    def _scan_function(self, qualname: str, module: str,
                       fn: ast.FunctionDef | ast.AsyncFunctionDef,
                       cls_qualname: str | None) -> None:
        out = self.edges[qualname]
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                self._resolve_call(qualname, module, node, cls_qualname, out)
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                referenced = self.symbols.resolve_name(module, node.id)
                if referenced in self.symbols.functions:
                    out.add(referenced)

    def _resolve_call(self, qualname: str, module: str, call: ast.Call,
                      cls_qualname: str | None, out: set[str]) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.symbols.resolve_name(module, func.id)
            if resolved is None:
                if not hasattr(builtins, func.id):
                    self.unresolved[qualname] += 1
                return
            self._add_target(resolved, out)
        elif isinstance(func, ast.Attribute):
            path = dotted(func)
            if path is not None:
                precise = self.symbols.resolve_dotted(module, path)
                if precise is not None:
                    self._add_target(precise, out)
                    return
            method = func.attr
            if cls_qualname is not None and self._receiver_is_self(func):
                own = self.symbols.classes[cls_qualname].methods.get(method)
                if own is not None:
                    out.add(own.qualname)
            candidates = self.symbols.method_index.get(method, ())
            if candidates:
                out.update(candidates)
            elif method not in _BUILTIN_METHODS:
                self.unresolved[qualname] += 1
        else:
            # Calling the result of an arbitrary expression: dynamic.
            self.unresolved[qualname] += 1

    @staticmethod
    def _receiver_is_self(func: ast.Attribute) -> bool:
        return isinstance(func.value, ast.Name) and func.value.id == "self"

    def _add_target(self, resolved: str, out: set[str]) -> None:
        if resolved in self.symbols.functions:
            out.add(resolved)
        elif resolved in self.symbols.classes:
            init = self.symbols.classes[resolved].methods.get("__init__")
            if init is not None:
                out.add(init.qualname)

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def has_unresolved(self, qualname: str) -> bool:
        return self.unresolved.get(qualname, 0) > 0

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Transitive closure over the edges; cycle-safe BFS."""
        seen = set(root for root in roots if root in self.edges)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen
