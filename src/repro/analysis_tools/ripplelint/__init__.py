"""ripplelint: whole-program AST invariant checks for the RIPPLE codebase.

Once a single 1,100-line module, now a pipeline:

* :mod:`.engine` — findings, parsed modules, suppression, rule registry
  plumbing, and the lazily-derived whole-program :class:`Project`;
* :mod:`.symbols` / :mod:`.callgraph` / :mod:`.reachability` — the
  import-resolving symbol table, the conservative call graph, and the
  simulation-reachability pass that scopes the determinism rules by
  "can this code run inside a simulation?" rather than by directory;
* :mod:`.rules` — the RPL001-RPL015 catalogue;
* :mod:`.baseline` / :mod:`.cli` — debt baselines and the command line
  (``--baseline``, ``--changed``, ``--format github``).

The public surface re-exported here is what the test-suite and the
``tools/ripplelint`` launcher consume; it is a strict superset of the
old single-module API.
"""

from .baseline import compare as baseline_compare
from .baseline import load as baseline_load
from .baseline import write as baseline_write
from .cli import main
from .engine import (Finding, ParsedModule, Project, Rule,
                     SIM_FALLBACK_SCOPE, iter_python_files, lint_module,
                     lint_paths, lint_source)
from .reachability import ENTRY_POINTS
from .rules import RULES

__all__ = [
    "ENTRY_POINTS",
    "Finding",
    "ParsedModule",
    "Project",
    "RULES",
    "Rule",
    "SIM_FALLBACK_SCOPE",
    "baseline_compare",
    "baseline_load",
    "baseline_write",
    "iter_python_files",
    "lint_module",
    "lint_paths",
    "lint_source",
    "main",
]
