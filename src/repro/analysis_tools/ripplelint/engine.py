"""ripplelint's core model: findings, parsed modules, rules, the project.

The engine owns everything that is not a rule: parsing and suppression
bookkeeping (:class:`ParsedModule`), the finding/result model
(:class:`Finding`), rule registration (:class:`Rule`), scope predicates,
and — new with the whole-program pipeline — :class:`Project`, which
parses an entire ``repro`` package tree once and lazily derives the
symbol table (:mod:`.symbols`), the call graph (:mod:`.callgraph`), and
the simulation-reachability pass (:mod:`.reachability`) that rules
consult through :func:`sim_scope`.

Scoping is deliberately monotone: reachability only ever *adds* files
and lines to a rule's scope on top of the historical module-prefix
scopes (``_SHARED_SCOPE``, :data:`SIM_FALLBACK_SCOPE`).  An unresolvable
call edge therefore cannot silence a rule — the prefix fallback still
applies — it can only fail to extend the scope further.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Iterable, Iterator, Optional,
                    Sequence)

if TYPE_CHECKING:  # import cycle: symbols/callgraph consume ParsedModule
    from .callgraph import CallGraph
    from .reachability import SimReachability
    from .symbols import SymbolTable

__all__ = ["Finding", "ParsedModule", "Project", "Rule", "SIM_FALLBACK_SCOPE",
           "finding_at", "in_scope", "in_shared_scope", "iter_python_files",
           "lint_module", "lint_paths", "lint_source", "sim_scope"]


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``end_line`` is the last line of the flagged statement's span (used
    only for suppression matching: a ``# ripplelint: disable=`` comment
    on any line of a multi-line statement silences it); it defaults to
    ``line`` and never appears in rendered output.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    end_line: int = 0

    def render(self, fmt: str = "text") -> str:
        if fmt == "github":
            # GitHub Actions problem-matcher format: annotates the file
            # and line directly on the PR diff.
            return (f"::error file={self.path},line={self.line},"
                    f"col={self.col}::{self.rule} {self.message}")
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    @property
    def span_end(self) -> int:
        return self.end_line if self.end_line >= self.line else self.line


_SUPPRESS_RE = re.compile(r"#\s*ripplelint:\s*disable=([A-Z0-9, ]+)")


def _scan_comments(source: str) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` for every real comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps string
    literals and docstrings that merely *mention* a comment marker —
    like this package's own rule documentation — out of RPL009 and out
    of the suppression scanner.
    """
    comments: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse ran first
        pass
    return comments


def _logical_package(posix_path: str) -> str:
    """Path from the ``repro`` package root, or the plain path outside it."""
    parts = posix_path.split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return posix_path


@dataclass
class ParsedModule:
    """A parsed source file plus the metadata rules need.

    ``package`` is the module's path expressed from the ``repro`` package
    root (e.g. ``repro/net/eventsim.py``) so that rule scoping works the
    same whether the linter scans ``src/``, a single file, or a test
    fixture tree.  Files outside a ``repro`` package keep their plain
    relative path.
    """

    path: str
    package: str
    tree: ast.Module
    comments: list[tuple[int, int, str]]
    suppressed: dict[int, frozenset[str]]

    @classmethod
    def from_source(cls, source: str, *, path: str) -> "ParsedModule":
        tree = ast.parse(source, filename=path)
        comments = _scan_comments(source)
        suppressed: dict[int, frozenset[str]] = {}
        for line, _col, text in comments:
            match = _SUPPRESS_RE.search(text)
            if match:
                suppressed[line] = frozenset(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip())
        return cls(path=path, package=_logical_package(path), tree=tree,
                   comments=comments, suppressed=suppressed)

    @classmethod
    def parse(cls, path: Path) -> "ParsedModule":
        return cls.from_source(path.read_text(encoding="utf-8"),
                               path=path.as_posix())

    @property
    def module_name(self) -> str | None:
        """Dotted import name for files under a ``repro`` package root."""
        if not self.package.startswith("repro/") and self.package != "repro":
            return None
        trimmed = self.package[:-3] if self.package.endswith(".py") \
            else self.package
        parts = trimmed.split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressed.get(line, frozenset())

    def is_suppressed_span(self, finding: Finding) -> bool:
        """Whether any line of the flagged statement carries a disable.

        Multi-line statements (wrapped calls, parenthesized conditions)
        may only have room for the suppression comment on a
        *continuation* line; honoring the full span keeps the comment
        next to the construct it excuses.
        """
        return any(finding.rule in self.suppressed.get(line, frozenset())
                   for line in range(finding.line, finding.span_end + 1))


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

#: A checker receives the module under lint plus the whole-program
#: :class:`Project` when one is available (directory scans); fixture
#: lints of a bare source string pass ``None`` and rules fall back to
#: their module-prefix scopes.
Checker = Callable[[ParsedModule, Optional["Project"]], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One lintable invariant: an id, a one-line summary, a checker."""

    id: str
    summary: str
    check: Checker


#: Statement types whose span, for suppression purposes, is clamped to
#: the header (a disable comment inside a function/class/loop *body*
#: must not silence a finding anchored at the header).
_HEADER_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.For, ast.AsyncFor, ast.While, ast.If, ast.With,
                 ast.AsyncWith, ast.Try)


def finding_at(module: ParsedModule, node: ast.AST, rule: str,
               message: str) -> Finding:
    end = getattr(node, "end_lineno", None) or node.lineno
    body = getattr(node, "body", None)
    if isinstance(node, _HEADER_STMTS) and body:
        end = max(node.lineno, body[0].lineno - 1)
    return Finding(path=module.path, line=node.lineno,
                   col=node.col_offset + 1, rule=rule, message=message,
                   end_line=end)


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------

def in_scope(module: ParsedModule, prefixes: tuple[str, ...]) -> bool:
    return any(module.package == p or module.package.startswith(p + "/")
               for p in prefixes)


#: Where the general-purpose invariants apply: the shipped package plus
#: the benchmark drivers and repo scripts that feed CI numbers.  A flaky
#: benchmark corrupts the regression baselines exactly like flaky
#: library code corrupts answers.
_SHARED_SCOPE = ("repro", "benchmarks", "tools")

#: Module-prefix fallback for the *simulation* scope: the packages whose
#: code runs inside a deterministic simulation.  When a whole-program
#: :class:`Project` is available, :func:`sim_scope` widens this with
#: everything actually reachable from the simulation entry points
#: (which pulls in e.g. the reachable half of ``repro/obs``); without
#: one, the prefix list alone applies — never less.
SIM_FALLBACK_SCOPE = ("repro/core", "repro/net", "repro/overlays",
                      "repro/queries", "repro/common")


def in_shared_scope(module: ParsedModule,
                    project: "Project | None") -> bool:
    """The RPL001/RPL002-style scope: shared prefixes ∪ sim-reachable.

    The union is the monotonicity guarantee: adding the reachability
    pass can only ever extend where these rules apply, it can never
    exempt a module the old ``_SHARED_SCOPE`` prefix covered.
    """
    if in_scope(module, _SHARED_SCOPE):
        return True
    return project is not None and project.module_reachable(module)


def sim_scope(module: ParsedModule, line: int,
              project: "Project | None") -> bool:
    """Whether ``line`` of ``module`` is simulation code.

    True when the module sits under a :data:`SIM_FALLBACK_SCOPE` prefix,
    or when the project's call graph proves the line reachable from a
    simulation entry point.  Prefix-first ordering makes unresolvable
    call edges harmless: they can only lose the *extra* coverage.
    """
    if in_scope(module, SIM_FALLBACK_SCOPE):
        return True
    return project is not None and project.line_reachable(module, line)


# ---------------------------------------------------------------------------
# The whole-program project
# ---------------------------------------------------------------------------

@dataclass
class Project:
    """Every parsed module of a ``repro`` package tree, plus derived passes.

    Construction parses only; the symbol table, call graph, and
    reachability pass materialize lazily on first use so that single-rule
    fixture runs never pay for them.
    """

    modules: dict[str, ParsedModule] = field(default_factory=dict)
    _symbols: "SymbolTable | None" = field(default=None, repr=False)
    _callgraph: "CallGraph | None" = field(default=None, repr=False)
    _reachability: "SimReachability | None" = field(default=None, repr=False)

    @classmethod
    def from_modules(cls, modules: Iterable[ParsedModule]) -> "Project":
        project = cls()
        for module in modules:
            name = module.module_name
            if name is not None:
                project.modules[name] = module
        return project

    @classmethod
    def discover(cls, files: Iterable[Path]) -> "Project":
        """Parse the full ``repro`` tree(s) enclosing the given files.

        A ``--changed``-scoped or single-file lint still analyzes the
        whole program: findings are reported only for the requested
        files, but reachability is judged over everything the enclosing
        ``repro`` package contains.
        """
        roots: set[Path] = set()
        for file in files:
            parts = file.resolve().parts
            if "repro" in parts:
                index = len(parts) - 1 - parts[::-1].index("repro")
                roots.add(Path(*parts[:index + 1]))
        modules: list[ParsedModule] = []
        for root in sorted(roots):
            for path in sorted(root.rglob("*.py")):
                if "egg-info" in path.as_posix():
                    continue
                try:
                    modules.append(ParsedModule.parse(path))
                except SyntaxError:
                    continue  # unparsable files surface via lint_paths
        return cls.from_modules(modules)

    @property
    def symbols(self) -> "SymbolTable":
        if self._symbols is None:
            from .symbols import SymbolTable
            self._symbols = SymbolTable.build(self)
        return self._symbols

    @property
    def callgraph(self) -> "CallGraph":
        if self._callgraph is None:
            from .callgraph import CallGraph
            self._callgraph = CallGraph.build(self.symbols)
        return self._callgraph

    @property
    def reachability(self) -> "SimReachability":
        if self._reachability is None:
            from .reachability import SimReachability
            self._reachability = SimReachability.build(self.callgraph)
        return self._reachability

    # -- scope queries (consumed via in_shared_scope / sim_scope) ----------

    def module_reachable(self, module: ParsedModule) -> bool:
        name = module.module_name
        return name is not None and self.reachability.module_reachable(name)

    def line_reachable(self, module: ParsedModule, line: int) -> bool:
        name = module.module_name
        return name is not None and self.reachability.line_reachable(name,
                                                                     line)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def _default_rules() -> "Sequence[Rule]":
    from .rules import RULES  # late: rules modules import this engine
    return RULES


def lint_module(module: ParsedModule, rules: Sequence[Rule] | None = None,
                project: "Project | None" = None) -> list[Finding]:
    """All unsuppressed findings for one parsed module."""
    findings = []
    for rule in rules if rules is not None else _default_rules():
        for finding in rule.check(module, project):
            if not module.is_suppressed_span(finding):
                findings.append(finding)
    return findings


def lint_source(source: str, *, virtual_path: str,
                rules: Sequence[Rule] | None = None,
                project: "Project | None" = None) -> list[Finding]:
    """Lint a source string as though it lived at ``virtual_path``.

    The test-suite's fixture entry point: ``virtual_path`` determines
    rule scoping exactly like a real file path would.  Without a
    ``project``, the whole-program rules apply their module-prefix
    fallback scopes.
    """
    return lint_module(ParsedModule.from_source(source, path=virtual_path),
                       rules, project)


def _is_python_script(path: Path) -> bool:
    """Extensionless executables with a python shebang (``tools/ripplelint``)."""
    if path.suffix or not path.is_file():
        return False
    try:
        with path.open("rb") as fh:
            first = fh.readline(128)
    except OSError:  # unreadable special file; not lintable anyway
        return False
    return first.startswith(b"#!") and b"python" in first


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            scripts = (p for p in path.rglob("*") if _is_python_script(p))
            yield from sorted({*path.rglob("*.py"), *scripts})
        elif path.suffix == ".py" or _is_python_script(path):
            yield path


def lint_paths(paths: Iterable[str],
               rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint files/directories with whole-program analysis attached.

    The project is discovered from the scanned files' enclosing
    ``repro`` trees, so even a one-file invocation gets call-graph-aware
    scoping judged over the full program.
    """
    files = [path for path in iter_python_files(paths)
             if "egg-info" not in path.as_posix()]
    project = Project.discover(files)
    cache = {Path(m.path).resolve().as_posix(): m
             for m in project.modules.values()}
    findings: list[Finding] = []
    for path in files:
        cached = cache.get(path.resolve().as_posix())
        # Findings must carry the caller's spelling of the path (CI
        # passes relative paths so --format github annotates the diff),
        # so the project's absolute parse is reused only when it agrees.
        if cached is not None and cached.path == path.as_posix():
            module = cached
        else:
            module = ParsedModule.parse(path)
        findings.extend(lint_module(module, rules, project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
