"""Small AST helpers shared by the analysis pipeline and the rules.

Nothing here knows about rules, scoping, or the project model — these are
the syntax-level primitives: dotted-name extraction, attribute-chain
roots, function-stack walks, and arity counting.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["attr_chain", "chain_root", "dotted", "method_arity",
           "walk_with_function_stack"]


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def chain_root(node: ast.AST) -> str | None:
    """The leftmost ``Name`` of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def attr_chain(node: ast.AST) -> list[str]:
    """Every name along an attribute/subscript chain, root first.

    ``peer.store.insert`` -> ``["peer", "store", "insert"]``; subscripts
    are skipped (``peers[0].store`` -> ``["peers", "store"]``); a
    non-Name root contributes nothing.
    """
    parts: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def walk_with_function_stack(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield ``(node, enclosing_function_names)`` in document order."""
    stack: list[tuple[ast.AST, tuple[str, ...]]] = [(tree, ())]
    while stack:
        node, functions = stack.pop()
        yield node, functions
        inner = functions
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = functions + (node.name,)
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, inner))


def method_arity(fn: ast.FunctionDef) -> int | None:
    """Positional arity excluding self, or None when *args absorbs any."""
    if fn.args.vararg is not None:
        return None
    return len(fn.args.posonlyargs) + len(fn.args.args) - 1
