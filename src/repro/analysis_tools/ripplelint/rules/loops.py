"""Loop rules: RPL011 (bounded retry loops), RPL012 (arena vectorization).

Both are liveness/scale invariants about iteration itself: every retry
pump must provably terminate, and the arena substrate must never regrow
per-peer Python loops.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import (Finding, ParsedModule, Project, finding_at, in_scope)

__all__ = ["check_rpl011", "check_rpl012"]


# ---------------------------------------------------------------------------
# RPL011 -- unbounded loops on retry/queue paths
# ---------------------------------------------------------------------------

#: Name fragments that mark a loop as explicitly bounded.  Matching is
#: substring-on-lowercase, so ``max_events``, ``self.capacity``,
#: ``retries_left``, and ``watchdog`` all qualify.
_BOUND_TOKENS = ("max", "budget", "cap", "deadline", "limit", "tries",
                 "attempt", "bound", "watchdog")


def _mentions_bound(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        else:
            continue
        lowered = name.lower()
        if any(token in lowered for token in _BOUND_TOKENS):
            return True
    return False


def check_rpl011(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL011: retry/queue loops in ``repro/net`` carry an explicit bound.

    The simulator's event pump, the scheduler's admission drain, and the
    fault layer's retry machinery are exactly the places where an
    unbounded ``while`` turns one lost ack into a hang that no deadline
    can interrupt — the concurrency layer's liveness rests on every such
    loop being cut off by *something*.  A ``while`` loop passes when its
    condition compares against a value (``ast.Compare``, e.g.
    ``while visited < max_peers``) or when the loop mentions a bound by
    name anywhere in its test or body (an identifier or attribute
    containing one of max/budget/cap/deadline/limit/tries/attempt/bound/
    watchdog, e.g. the event pump consuming ``cap``).  A bare
    ``while True:`` pump with neither has no exit story and is flagged.
    """
    if not in_scope(module, ("repro/net",)):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.While):
            continue
        if any(isinstance(part, ast.Compare)
               for part in ast.walk(node.test)):
            continue
        if _mentions_bound(node):
            continue
        yield finding_at(
            module, node, "RPL011",
            "unbounded 'while' on a retry/queue path; compare the loop "
            "condition against a limit or reference an explicit bound "
            "(max_*/cap/budget/deadline/limit/tries) so the loop "
            "provably terminates")


# ---------------------------------------------------------------------------
# RPL012 -- arena modules stay vectorized
# ---------------------------------------------------------------------------

#: The structure-of-arrays substrate: these modules exist so that no
#: per-peer Python object or loop stands between a query and the flat
#: arrays.  The mirror *builder* inherently walks the object peers once;
#: its loops carry per-line suppressions rather than a scope exemption,
#: so every new loop is a conscious decision.
_ARENA_MODULES = ("repro/overlays/arena.py", "repro/overlays/arena_build.py")

#: Identifiers that denote "the whole peer range" when iterated.
_PEER_RANGE_NAMES = frozenset({"peers", "n_peers", "num_peers",
                               "peer_count"})


def _is_object_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "object":
        return True
    if isinstance(node, ast.Attribute) and node.attr in ("object_", "object"):
        return True
    return isinstance(node, ast.Constant) and node.value in ("object", "O")


def _iterates_peer_range(expr: ast.AST) -> bool:
    """True when a loop iterable mentions the peer range: a ``.peers()``
    call, or an identifier like ``peers``/``n_peers`` (also inside
    ``range(...)``/``enumerate(...)`` wrappers)."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            callee = sub.func
            if isinstance(callee, ast.Attribute) and callee.attr == "peers":
                return True
            if isinstance(callee, ast.Name) and callee.id == "peers":
                return True
        if isinstance(sub, ast.Name) and sub.id in _PEER_RANGE_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _PEER_RANGE_NAMES:
            return True
    return False


def check_rpl012(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL012: arena modules hold no object arrays and no per-peer loops.

    The arena substrate's entire value is that per-peer state lives in
    flat *typed* NumPy arrays operated on wholesale: a ``dtype=object``
    array silently reintroduces one Python object per peer (boxing,
    pointer-chasing, no vectorized kernels), and a Python ``for`` loop
    or comprehension over the peer range reintroduces the O(n)
    interpreter cost the arena exists to remove — harmless at 200 peers,
    fatal at 1M.  Flags ``dtype=object`` (including ``np.object_``,
    ``"object"``/``"O"`` strings, and ``.astype(object)``) anywhere in
    an arena module, and any ``for``/comprehension whose iterable
    mentions the peer range (a ``.peers()`` call or a
    ``peers``/``n_peers``-style identifier, bare or inside
    ``range``/``enumerate``).  The mirror builder's one-time snapshot
    walk carries per-line suppressions — the loop is the documented
    exception, not the default.
    """
    if not in_scope(module, _ARENA_MODULES):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "dtype" \
                        and _is_object_dtype(keyword.value):
                    yield finding_at(
                        module, node, "RPL012",
                        "dtype=object defeats the arena's flat typed "
                        "layout; use a numeric dtype (encode ragged data "
                        "as CSR offsets + a flat payload)")
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "astype" and node.args \
                    and _is_object_dtype(node.args[0]):
                yield finding_at(
                    module, node, "RPL012",
                    "astype(object) defeats the arena's flat typed "
                    "layout; keep the array numeric")
        iterables: list[ast.AST] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(comp.iter for comp in node.generators)
        if any(_iterates_peer_range(it) for it in iterables):
            yield finding_at(
                module, node, "RPL012",
                "Python-level loop over the peer range inside an arena "
                "module; express this as a vectorized kernel over the "
                "flat arrays (or suppress per line if the walk is a "
                "one-time snapshot of an object overlay)")
