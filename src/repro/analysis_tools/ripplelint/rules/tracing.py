"""Tracing rules: RPL010 (sink passivity), RPL015 (context threading).

Both protect the observability/plumbing contract: sinks observe without
driving, and the sink/executor/context an entry point was handed is the
one every hop downstream must see.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import chain_root, dotted
from ..engine import (Finding, ParsedModule, Project, finding_at,
                      in_shared_scope, sim_scope)

__all__ = ["check_rpl010", "check_rpl015"]


# ---------------------------------------------------------------------------
# RPL010 -- trace sinks observe queries, they never drive them
# ---------------------------------------------------------------------------

#: The TraceSink protocol surface (see ``repro/obs/trace.py``).
_SINK_METHODS = frozenset({"begin_span", "end_span", "event", "on_stats"})
#: Base-class names that mark a class as a sink implementation.
_SINK_BASES = ("TraceSink", "NullSink", "QueryTrace")
#: QueryContext methods that mutate query accounting (``net/context.py``).
_CTX_MUTATORS = frozenset({
    "begin_processing", "on_forward", "on_response", "on_answer",
    "on_timeout", "on_retry", "on_reroute", "on_drop", "on_ack",
    "on_unreachable", "on_region_recovered", "on_replica_read", "note_time",
    "on_queue_wait", "cancel",
})
#: Methods that mutate a container in place.
_MUTATING_CALLS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault",
})


def _is_sink_class(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        path = dotted(base)
        if path is not None and path.split(".")[-1].endswith(_SINK_BASES):
            return True
    defined = {item.name for item in cls.body
               if isinstance(item, ast.FunctionDef)}
    return len(defined & _SINK_METHODS) >= 2


def check_rpl010(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL010: trace-sink overrides must not mutate ``QueryContext`` state.

    The observability layer is passive by contract: with any sink
    attached, answers and ``QueryStats`` stay bit-identical to a
    ``NullSink`` run (the zero-overhead guarantee, property-tested in
    ``tests/obs``).  A sink method that calls a ``QueryContext`` counter
    mutator — or writes through any object handed to it — silently skews
    the very statistics the trace is supposed to reproduce.  Flagged
    inside ``begin_span``/``end_span``/``event``/``on_stats`` overrides:
    calls to context mutators, attribute/item assignment rooted at a
    method parameter, and in-place container mutation of a parameter.
    """
    if not in_shared_scope(module, project):
        return
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef) or not _is_sink_class(cls):
            continue
        for fn in cls.body:
            if not isinstance(fn, ast.FunctionDef) or \
                    fn.name not in _SINK_METHODS:
                continue
            params = {arg.arg for arg in (*fn.args.posonlyargs,
                                          *fn.args.args,
                                          *fn.args.kwonlyargs)}
            params.discard("self")
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute):
                    attr = node.func.attr
                    root = chain_root(node.func.value)
                    if attr in _CTX_MUTATORS:
                        yield finding_at(
                            module, node, "RPL010",
                            f"sink method '{cls.name}.{fn.name}' calls "
                            f"QueryContext mutator '{attr}()'; sinks "
                            "observe queries, they must never drive the "
                            "accounting they record")
                    elif attr in _MUTATING_CALLS and root in params:
                        yield finding_at(
                            module, node, "RPL010",
                            f"sink method '{cls.name}.{fn.name}' mutates "
                            f"parameter '{root}' via '.{attr}()'; record a "
                            "copy instead of editing shared query state")
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if not isinstance(target, (ast.Attribute,
                                                   ast.Subscript)):
                            continue
                        root = chain_root(target)
                        if root in params:
                            yield finding_at(
                                module, target, "RPL010",
                                f"sink method '{cls.name}.{fn.name}' "
                                f"assigns through parameter '{root}'; "
                                "sinks must treat recorded objects as "
                                "read-only")


# ---------------------------------------------------------------------------
# RPL015 -- context threading: forward the object you were handed
# ---------------------------------------------------------------------------

#: Parameters that thread one-per-query plumbing through the call tree.
#: A function that accepts one of these owes every downstream hop the
#: *same* object: the sink accumulates the trace, the executor carries
#: the batching/backpressure policy, the context carries the budget and
#: the visited/processed accounting.
_THREAD_PARAMS = ("sink", "executor", "ctx", "context")


def _function_thread_params(
        fn: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    args = fn.args
    names = {a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)}
    return frozenset(names & set(_THREAD_PARAMS))


def _resolve_plain_function(module: ParsedModule, project: Project,
                            call: ast.Call):
    """The project-level *top-level function* a call resolves to, or None.

    Only precise resolutions count (bare names through the import
    resolver, module-alias dotted chains); receiver-blind method fan-out
    is far too coarse to reason about parameter positions.
    """
    name = module.module_name
    if name is None:
        return None
    symbols = project.symbols
    if isinstance(call.func, ast.Name):
        resolved = symbols.resolve_name(name, call.func.id)
    elif isinstance(call.func, ast.Attribute):
        path = dotted(call.func)
        resolved = symbols.resolve_dotted(name, path) if path else None
    else:
        return None
    if resolved is None:
        return None
    info = symbols.functions.get(resolved)
    if info is None or info.cls is not None:
        return None
    return info


def check_rpl015(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL015: thread the sink/executor/context you were handed — all the way.

    Two failure shapes, both of which produce runs that *work* but lie:

    * **Fresh construction**: a function that accepts ``sink=``/
      ``executor=``/``ctx=`` passes a *newly constructed* object
      (``sink=NullSink()``, ``ctx=QueryContext(...)``) downstream.  The
      caller's trace silently loses every hop below that point, or the
      budget accounting forks into two contexts that each stay under a
      limit the combined query exceeds.
    * **Dropped threading** (whole-program): a call resolves to a
      project function that accepts the same threading parameter the
      caller holds, and the call passes it neither by keyword nor
      positionally.  The callee's default (``sink=None`` → ``NullSink``)
      kicks in and the plumbing quietly ends there.

    Scoped to simulation code (prefix fallback ∪ call-graph
    reachability).  Forwarding expressions (``sink=sink``,
    ``sink=sink or child_sink``) and explicit defaulting *statements*
    (``sink = sink if sink is not None else NullSink()``) are all fine —
    only a construction at the call site and a silent drop are flagged.
    """
    for fn in ast.walk(module.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        held = _function_thread_params(fn)
        if not held:
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call) or \
                    not sim_scope(module, node.lineno, project):
                continue
            passed_kw = {kw.arg for kw in node.keywords if kw.arg}
            has_kwargs_spread = any(kw.arg is None for kw in node.keywords)
            has_star_args = any(isinstance(a, ast.Starred)
                                for a in node.args)
            for kw in node.keywords:
                if kw.arg in held and isinstance(kw.value, ast.Call):
                    yield finding_at(
                        module, node, "RPL015",
                        f"'{fn.name}' accepts '{kw.arg}' but passes a "
                        f"freshly constructed object as '{kw.arg}=' "
                        "downstream; forward the caller's object so the "
                        "trace/budget stays one query's")
            if project is None or has_kwargs_spread or has_star_args:
                continue
            callee = _resolve_plain_function(module, project, node)
            if callee is None:
                continue
            callee_params = callee.param_names()
            for param in held:
                if param not in callee_params or param in passed_kw:
                    continue
                if callee_params.index(param) < len(node.args):
                    continue  # covered positionally
                yield finding_at(
                    module, node, "RPL015",
                    f"'{fn.name}' holds '{param}' but calls "
                    f"'{callee.name}' (which accepts '{param}') without "
                    f"forwarding it; the callee's default silently drops "
                    "the threading — pass it through explicitly")
