"""Hygiene rules: RPL006-RPL009.

General code-health invariants — mutable defaults/bare except, exact
float comparison in kernels, ``__all__`` discipline, and ``type:
ignore`` hygiene.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import (Finding, ParsedModule, Project, finding_at, in_scope,
                      in_shared_scope)

__all__ = ["check_rpl006", "check_rpl007", "check_rpl008", "check_rpl009"]


# ---------------------------------------------------------------------------
# RPL006 -- mutable defaults and bare except
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque",
                            "defaultdict", "Counter", "OrderedDict"})


def check_rpl006(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL006: no mutable default arguments, no bare ``except``.

    A mutable default is shared across every call — per-peer state would
    leak between simulated peers.  A bare ``except`` swallows
    ``DuplicateVisitError`` / ``SimulationBudgetExceeded`` and the other
    loud invariant guards this codebase relies on failing fast.
    """
    if not in_shared_scope(module, project):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                               ast.ListComp, ast.DictComp,
                                               ast.SetComp))
                if (not mutable and isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in _MUTABLE_CALLS):
                    mutable = True
                if mutable:
                    name = getattr(node, "name", "<lambda>")
                    yield finding_at(
                        module, default, "RPL006",
                        f"mutable default argument in '{name}'; default to "
                        "None (or an immutable sentinel) and materialize "
                        "inside the function")
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield finding_at(
                module, node, "RPL006",
                "bare 'except:' swallows simulator invariant errors; "
                "catch the narrowest exception type instead")


# ---------------------------------------------------------------------------
# RPL007 -- exact float equality on computed kernel expressions
# ---------------------------------------------------------------------------

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod,
              ast.FloorDiv)
_KERNEL_MODULES = ("repro/common/geometry.py", "repro/common/scoring.py",
                   "repro/queries")


def check_rpl007(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL007: no ``==``/``!=`` against computed floats in kernel modules.

    Coordinates and scores flow through sums, products, and distance
    computations; comparing such an *expression* exactly collapses or
    splits skyline/top-k ties depending on rounding (the kernels sort
    with explicit tie-break keys for the same reason).  Comparing two
    stored values (names, attributes) exactly is fine — zones tile the
    domain with shared, bit-identical face coordinates.
    """
    if not in_scope(module, _KERNEL_MODULES):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        for operand in (node.left, *node.comparators):
            if isinstance(operand, ast.BinOp) and \
                    isinstance(operand.op, _ARITH_OPS):
                yield finding_at(
                    module, node, "RPL007",
                    "exact ==/!= on an arithmetic expression in a kernel "
                    "module; bind the value first and compare with an "
                    "explicit tolerance (math.isclose) or restructure")
                break


# ---------------------------------------------------------------------------
# RPL008 -- __all__ hygiene
# ---------------------------------------------------------------------------

def _bound_names(tree: ast.Module) -> tuple[set[str], bool]:
    """Module-level bound names plus whether a PEP 562 __getattr__ exists.

    Walks top-level statements including the branches of module-level
    ``if``/``try`` blocks (``if TYPE_CHECKING:`` imports bind names for
    the checker's purposes).
    """
    names: set[str] = set()
    has_getattr = False
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
    return names, has_getattr


def _literal_all(tree: ast.Module) -> tuple[ast.AST, list[str]] | None:
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in targets):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            names = [element.value for element in value.elts
                     if isinstance(element, ast.Constant)
                     and isinstance(element.value, str)]
            return node, names
        return node, []
    return None


def check_rpl008(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL008: ``__all__`` is present in packages and every name resolves.

    ``from repro.X import *`` must surface a deliberate public API:
    every package ``__init__.py`` needs a docstring and an ``__all__``,
    and each ``__all__`` entry must be bound at module level (modules
    serving names lazily via a PEP 562 ``__getattr__`` are exempt from
    the resolution check, not from the presence check).
    """
    if not in_scope(module, ("repro",)):
        return
    declared = _literal_all(module.tree)
    is_package = module.package.endswith("__init__.py")
    if is_package:
        if ast.get_docstring(module.tree) is None:
            yield Finding(path=module.path, line=1, col=1, rule="RPL008",
                          message="package __init__.py lacks a module "
                                  "docstring describing its public API")
        if declared is None:
            yield Finding(path=module.path, line=1, col=1, rule="RPL008",
                          message="package __init__.py lacks __all__; "
                                  "star-imports must be deliberate")
    if declared is None:
        return
    node, names = declared
    bound, has_getattr = _bound_names(module.tree)
    if has_getattr:
        return
    for name in names:
        if name not in bound and name != "__version__":
            yield finding_at(
                module, node, "RPL008",
                f"__all__ names '{name}' which is not bound at module "
                "level; star-imports of this module would fail")


# ---------------------------------------------------------------------------
# RPL009 -- type: ignore hygiene
# ---------------------------------------------------------------------------

_IGNORE_RE = re.compile(r"#\s*type:\s*ignore(?P<codes>\[[^\]]*\])?"
                        r"(?P<trailer>.*)$")


def check_rpl009(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL009: ``# type: ignore`` must be narrow and carry a justification.

    A blanket ignore suppresses every current and future error on the
    line; an unexplained one rots.  Required shape::

        x = f(y)  # type: ignore[arg-type]  # knobs forwarded verbatim

    i.e. an explicit error-code list plus a trailing comment saying why
    the checker is wrong (or why the dynamic idiom is intentional).
    """
    if not in_shared_scope(module, project):
        return
    for number, col, text in module.comments:
        match = _IGNORE_RE.search(text)
        if match is None:
            continue
        if not match.group("codes"):
            yield Finding(
                path=module.path, line=number, col=col + match.start() + 1,
                rule="RPL009",
                message="blanket '# type: ignore' suppresses every error "
                        "on the line; use '# type: ignore[code]' plus a "
                        "justification comment")
            continue
        trailer = match.group("trailer").strip()
        if not trailer.startswith("#") or len(trailer.lstrip("# ")) < 3:
            yield Finding(
                path=module.path, line=number, col=col + match.start() + 1,
                rule="RPL009",
                message="'# type: ignore[...]' without a justification; "
                        "append '  # <why the checker is wrong here>'")
