"""Protocol rules: RPL004 (handler surface), RPL005 (replication contract).

Both check, at parse time, protocol conformance that the simulators only
exercise dynamically — deep inside a query, possibly behind a fault
plan.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted, method_arity
from ..engine import (Finding, ParsedModule, Project, finding_at, in_scope,
                      in_shared_scope)

__all__ = ["check_rpl004", "check_rpl005"]


# ---------------------------------------------------------------------------
# RPL004 -- partial QueryHandler implementations fail at query time
# ---------------------------------------------------------------------------

#: Required protocol methods -> positional arity excluding ``self``
#: (see ``repro/core/handler.py``; the table mirrors the paper's six
#: abstract functions plus ``finalize``).
_HANDLER_REQUIRED = {
    "initial_state": 0,
    "compute_local_state": 2,
    "compute_global_state": 2,
    "update_local_state": 1,
    "compute_local_answer": 2,
    "is_link_relevant": 2,
    "link_priority": 1,
    "finalize": 1,
}
#: Optional hooks with defaults in the ABC -> expected arity.
_HANDLER_OPTIONAL = {
    "neutral_local_state": 0,
    "seed_satisfied": 1,
    "probe_score": 1,
    "answer_size": 1,
}


def _is_abstract(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        if dotted(base) in ("ABC", "abc.ABC"):
            return True
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                if dotted(decorator) in ("abstractmethod",
                                         "abc.abstractmethod"):
                    return True
    return False


def check_rpl004(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL004: ``QueryHandler`` subclasses implement the full protocol.

    The RIPPLE templates call the six abstract handler functions (plus
    ``finalize``) dynamically, so a missing or mis-signatured method only
    explodes once a query actually reaches it — possibly deep inside a
    fault-injected simulation.  This rule checks presence and positional
    arity of every protocol method at parse time.
    """
    if not in_shared_scope(module, project):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(dotted(base) in ("QueryHandler", "handler.QueryHandler")
                   for base in node.bases):
            continue
        if _is_abstract(node):
            continue
        methods = {item.name: item for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        for name, arity in _HANDLER_REQUIRED.items():
            fn = methods.get(name)
            if fn is None:
                yield finding_at(
                    module, node, "RPL004",
                    f"handler class '{node.name}' is missing protocol "
                    f"method '{name}' (see repro/core/handler.py)")
                continue
            actual = method_arity(fn)
            if actual is not None and actual != arity:
                yield finding_at(
                    module, fn, "RPL004",
                    f"handler method '{node.name}.{name}' takes {actual} "
                    f"positional argument(s), protocol expects {arity}")
        for name, arity in _HANDLER_OPTIONAL.items():
            fn = methods.get(name)
            if fn is None:
                continue
            actual = method_arity(fn)
            if actual is not None and actual != arity:
                yield finding_at(
                    module, fn, "RPL004",
                    f"handler hook '{node.name}.{name}' takes {actual} "
                    f"positional argument(s), protocol expects {arity}")


# ---------------------------------------------------------------------------
# RPL005 -- replication contract of churn-capable overlays
# ---------------------------------------------------------------------------

def _class_slots(cls: ast.ClassDef) -> frozenset[str] | None:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__slots__" in targets and isinstance(
                    node.value, (ast.Tuple, ast.List)):
                return frozenset(
                    element.value for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str))
    return None


def check_rpl005(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL005: churn-capable overlays honor the replication contract.

    ``ReplicaDirectory`` can only heal an overlay that (i) exposes
    ``replica_targets(peer, count)`` for structural replica placement and
    (ii) whose peers carry ``replicas`` and ``alive`` slots.  Any class
    that declares a ``physical_id`` (split logical/physical identity)
    must be fully ``PeerLike`` — ``peer_id``, ``store``, ``links`` — or
    liveness checks through ``physical_id()`` silently dereference the
    wrong machine.
    """
    if not in_scope(module, ("repro/overlays",)):
        return
    classes = [node for node in ast.walk(module.tree)
               if isinstance(node, ast.ClassDef)]
    churny = []
    for cls in classes:
        methods = {item.name: item for item in cls.body
                   if isinstance(item, ast.FunctionDef)}
        if cls.name.endswith("Overlay") and \
                ("join" in methods or "leave" in methods):
            churny.append(cls)
            fn = methods.get("replica_targets")
            if fn is None:
                yield finding_at(
                    module, cls, "RPL005",
                    f"churn-capable overlay '{cls.name}' does not define "
                    "replica_targets(peer, count); ReplicaDirectory cannot "
                    "place copies, so crashed zones are unrecoverable")
            else:
                arity = method_arity(fn)
                if arity is not None and arity != 2:
                    yield finding_at(
                        module, fn, "RPL005",
                        f"'{cls.name}.replica_targets' takes {arity} "
                        "positional argument(s), the replication contract "
                        "expects (peer, count)")
    if churny:
        for cls in classes:
            slots = _class_slots(cls)
            if slots is None or "store" not in slots:
                continue  # not a peer class
            for needed in ("replicas", "alive"):
                if needed not in slots:
                    yield finding_at(
                        module, cls, "RPL005",
                        f"peer class '{cls.name}' lacks the '{needed}' "
                        "slot required by the replication/fault machinery")
    for cls in classes:
        slots = _class_slots(cls)
        if slots is not None and "physical_id" in slots:
            methods = {item.name for item in cls.body
                       if isinstance(item, ast.FunctionDef)}
            missing = [n for n in ("peer_id", "store")
                       if n not in slots and n not in methods]
            if "links" not in methods:
                missing.append("links")
            if missing:
                yield finding_at(
                    module, cls, "RPL005",
                    f"class '{cls.name}' declares 'physical_id' but lacks "
                    f"{missing}; split-identity stand-ins must be fully "
                    "PeerLike (see repro/overlays/replication.py)")
