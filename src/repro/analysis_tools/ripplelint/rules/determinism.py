"""Determinism rules: RPL001 (randomness), RPL002 (clocks), RPL013 (hash order).

These protect the repo's central guarantee — bit-identical replay of any
seeded run — against the three ways CPython leaks nondeterminism into a
program: global random state, the wall clock, and hash-randomized
iteration order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted, walk_with_function_stack
from ..engine import (Finding, ParsedModule, Project, finding_at,
                      in_shared_scope, sim_scope)

__all__ = ["check_rpl001", "check_rpl002", "check_rpl013"]


# ---------------------------------------------------------------------------
# RPL001 -- unseeded randomness breaks deterministic replay
# ---------------------------------------------------------------------------

#: ``np.random`` members that merely *construct* seeded generators.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "Philox", "SFC64", "MT19937",
})


def check_rpl001(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL001: no unseeded randomness in shipped code.

    Replay under a seeded ``FaultPlan`` is bit-identical only while every
    random draw flows from an explicitly seeded ``np.random.Generator``
    (threaded through constructors) or :func:`repro.common.hashing.mix`.
    The process-global ``random`` module and the legacy ``np.random.<fn>``
    module-level draws are hidden global state and are banned outright.
    """
    if not in_shared_scope(module, project):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield finding_at(
                        module, node, "RPL001",
                        "import of the process-global 'random' module; "
                        "thread a seeded np.random.Generator instead")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield finding_at(
                    module, node, "RPL001",
                    "import from the process-global 'random' module; "
                    "thread a seeded np.random.Generator instead")
        elif isinstance(node, ast.Call):
            path = dotted(node.func)
            if path is None:
                continue
            parts = path.split(".")
            if (len(parts) == 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _NP_RANDOM_ALLOWED):
                yield finding_at(
                    module, node, "RPL001",
                    f"legacy global-state draw '{path}'; use a seeded "
                    "np.random.default_rng(...) generator")


# ---------------------------------------------------------------------------
# RPL002 -- wall-clock reads where virtual time rules
# ---------------------------------------------------------------------------

_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: The single sanctioned wall-clock shim: a module-private helper named
#: ``_wallclock`` whose body is the only place the rule permits real
#: clock reads (see ``repro/experiments/__main__.py``).
_WALLCLOCK_HELPER = "_wallclock"


def check_rpl002(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL002: no wall-clock reads outside a ``_wallclock`` helper.

    Simulation code (``core/``, ``net/``, ``overlays/``, ``queries/``)
    runs on virtual time — ``EventSimulator.now`` and hop counts — so a
    real clock read is always a bug there.  The one legitimate consumer
    (experiment progress reporting) must route through a module-private
    ``_wallclock()`` helper, which keeps every real clock read greppable
    and explicitly allowlisted.
    """
    if not in_shared_scope(module, project):
        return
    for node, functions in walk_with_function_stack(module.tree):
        if _WALLCLOCK_HELPER in functions:
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FNS:
                    yield finding_at(
                        module, node, "RPL002",
                        f"wall-clock import 'from time import {alias.name}'; "
                        "simulation code runs on virtual time "
                        f"(route real timing through {_WALLCLOCK_HELPER}())")
        if not isinstance(node, ast.Call):
            continue
        path = dotted(node.func)
        if path is None:
            continue
        parts = path.split(".")
        if parts[0] == "time" and len(parts) == 2 and parts[1] in _TIME_FNS:
            yield finding_at(
                module, node, "RPL002",
                f"wall-clock read '{path}()'; simulation code runs on "
                f"virtual time (route real timing through "
                f"{_WALLCLOCK_HELPER}())")
        elif (parts[-1] in _DATETIME_FNS and len(parts) >= 2
                and "datetime" in parts[:-1]):
            yield finding_at(
                module, node, "RPL002",
                f"wall-clock read '{path}()'; simulation code runs on "
                f"virtual time (route real timing through "
                f"{_WALLCLOCK_HELPER}())")


# ---------------------------------------------------------------------------
# RPL013 -- hash-randomized iteration order breaks bit-identical replay
# ---------------------------------------------------------------------------

#: Callables whose result does not depend on the order their (sole
#: iterable) argument is consumed in.
_ORDER_INSENSITIVE_SINKS = frozenset({
    "sum", "len", "min", "max", "any", "all", "set", "frozenset",
    "sorted",
})

#: Callables that *capture* iteration order into a sequence.
_ORDER_CAPTURING = frozenset({"list", "tuple"})

#: Methods whose result is a set regardless of receiver typing noise.
_SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: Annotation spellings that mark a parameter/variable as a set.
_SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted(node)
    return name is not None and name.split(".")[-1] in _SET_ANNOTATIONS


def _is_set_expr(node: ast.AST, local_sets: frozenset[str]) -> bool:
    """Syntactic set-typed-ness: literals, constructors, set algebra,
    ``os.environ``/``globals()``/``vars()``, and locally traced names."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and \
                func.id in ("set", "frozenset", "globals", "vars", "locals"):
            return True
        if isinstance(func, ast.Attribute) and \
                func.attr in _SET_RETURNING_METHODS:
            return True
        return False
    if isinstance(node, ast.Attribute):
        return dotted(node) == "os.environ"
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left, local_sets) or \
            _is_set_expr(node.right, local_sets)
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, local_sets) or \
            _is_set_expr(node.orelse, local_sets)
    return False


def _local_set_names(scope: ast.AST) -> frozenset[str]:
    """Names bound to set-typed expressions within ``scope``.

    Two passes give simple transitivity (``a = set(); b = a``); this is
    deliberately assignment-only inference — attributes and containers
    stay untracked, the module-prefix/reachability scope plus the
    dynamic ``PYTHONHASHSEED`` A/B job cover what escapes it.
    """
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_is_set(arg.annotation):
                names.add(arg.arg)
    for _pass in (0, 1):
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                if _is_set_expr(node.value, frozenset(names)):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and (
                        _annotation_is_set(node.annotation)
                        or (node.value is not None and _is_set_expr(
                            node.value, frozenset(names)))):
                    names.add(node.target.id)
    return frozenset(names)


def _iteration_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module itself plus each function definition, innermost last."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def check_rpl013(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL013: no order-sensitive iteration over sets in sim-reachable code.

    ``for x in some_set``, a list/generator comprehension over a set, or
    ``list(some_set)`` observes CPython's hash-randomized order: the run
    is still *correct* per-answer but no longer bit-identical across
    interpreter launches, which silently breaks ``replay(trace) ==
    QueryStats`` and every seeded golden.  Iterations wrapped in
    ``sorted(...)``, set-to-set comprehensions, and reductions through
    order-insensitive sinks (``sum``/``len``/``min``/``max``/``any``/
    ``all``/set algebra) are exempt — their results cannot encode the
    order.  Scope: the sim-prefix fallback plus everything the call
    graph proves reachable from the simulation entry points.
    """
    emitted: set[int] = set()
    for scope in _iteration_scopes(module.tree):
        local_sets = _local_set_names(scope)
        if not local_sets and not _scope_mentions_sets(scope):
            continue
        # Comprehensions feeding an order-insensitive sink call, e.g.
        # ``sum(x for x in seen)`` or ``max(f(p) for p in peers_set)``.
        sanctioned: set[int] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in _ORDER_INSENSITIVE_SINKS \
                    and len(node.args) >= 1:
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        sanctioned.add(id(arg))
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not scope:
                continue  # inner functions get their own scope pass
            for found in _check_iteration_node(module, project, node,
                                               local_sets, sanctioned):
                if id(node) not in emitted:
                    emitted.add(id(node))
                    yield found


def _scope_mentions_sets(scope: ast.AST) -> bool:
    """Cheap pre-filter: any set-ish syntax at all in the scope?"""
    for node in ast.walk(scope):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and \
                node.id in ("set", "frozenset", "globals", "vars", "locals"):
            return True
        if isinstance(node, ast.Attribute) and (
                node.attr == "environ"
                or node.attr in _SET_RETURNING_METHODS):
            return True
    return False


def _check_iteration_node(module: ParsedModule, project: Project | None,
                          node: ast.AST, local_sets: frozenset[str],
                          sanctioned: set[int]) -> Iterator[Finding]:
    message = ("iterates a set/frozenset (hash-randomized order) in "
               "sim-reachable code; wrap the iterable in sorted(...) or "
               "reduce through an order-insensitive sink "
               "(sum/len/min/max/set algebra)")
    if isinstance(node, (ast.For, ast.AsyncFor)):
        if _is_set_expr(node.iter, local_sets) and \
                sim_scope(module, node.lineno, project):
            yield finding_at(module, node, "RPL013", message)
    elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
        if id(node) in sanctioned:
            return
        for comp in node.generators:
            if _is_set_expr(comp.iter, local_sets) and \
                    sim_scope(module, node.lineno, project):
                yield finding_at(module, node, "RPL013", message)
                return
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _ORDER_CAPTURING and len(node.args) == 1:
        if _is_set_expr(node.args[0], local_sets) and \
                sim_scope(module, node.lineno, project):
            yield finding_at(
                module, node, "RPL013",
                f"{node.func.id}(...) over a set captures hash-randomized "
                "order in sim-reachable code; use sorted(...) instead")
