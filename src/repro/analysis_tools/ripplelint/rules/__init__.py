"""The ripplelint rule catalogue.

Each submodule groups related invariants; this package assembles them
into the ordered :data:`RULES` registry the engine and CLI consume.
Every checker shares one signature — ``check(module, project)`` — where
``project`` is the whole-program :class:`~..engine.Project` (or ``None``
for bare-source fixture lints, in which case rules fall back to their
module-prefix scopes).
"""

from __future__ import annotations

from ..engine import Rule
from .cachingrules import check_rpl016
from .determinism import check_rpl001, check_rpl002, check_rpl013
from .hygiene import (check_rpl006, check_rpl007, check_rpl008,
                      check_rpl009)
from .loops import check_rpl011, check_rpl012
from .protocols import check_rpl004, check_rpl005
from .storerules import check_rpl003, check_rpl014
from .tracing import check_rpl010, check_rpl015

__all__ = ["RULES"]

RULES: tuple[Rule, ...] = tuple(
    Rule(id=rule_id, summary=(checker.__doc__ or "").strip().splitlines()[0],
         check=checker)
    for rule_id, checker in [
        ("RPL001", check_rpl001),
        ("RPL002", check_rpl002),
        ("RPL003", check_rpl003),
        ("RPL004", check_rpl004),
        ("RPL005", check_rpl005),
        ("RPL006", check_rpl006),
        ("RPL007", check_rpl007),
        ("RPL008", check_rpl008),
        ("RPL009", check_rpl009),
        ("RPL010", check_rpl010),
        ("RPL011", check_rpl011),
        ("RPL012", check_rpl012),
        ("RPL013", check_rpl013),
        ("RPL014", check_rpl014),
        ("RPL015", check_rpl015),
        ("RPL016", check_rpl016),
    ]
)
