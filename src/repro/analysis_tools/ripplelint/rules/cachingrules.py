"""Caching rules: RPL016 (query-answer caching goes through CacheDirectory).

The result cache is sound only because every entry carries its
``(peer, store version)`` touched-set evidence and every mutation path
pushes an invalidation at it (store listeners, overlay epochs, crash
promotions).  An ad-hoc ``dict`` keyed by query parameters has none of
that: it keeps serving the old answer after the data under it moved,
and nothing in the test matrix can pin the staleness because the dict
is invisible to the invalidation plumbing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import attr_chain
from ..engine import Finding, ParsedModule, Project, finding_at, in_scope, \
    sim_scope

__all__ = ["check_rpl016"]

#: Container names that announce memoized answers.  Matching the *name*
#: is deliberate: the rule is about intent, and code that caches under
#: an innocent name is code review's job, not a linter's.
_CACHE_TOKENS = ("cache", "memo")

#: Dict methods that write an entry in place.
_WRITE_METHODS = frozenset({"setdefault", "update"})

#: The sanctioned caching implementations, and the competitor baselines
#: (SPEERTO's super-peer skyline cache is part of the *reproduced*
#: algorithm — reproducing its staleness behaviour is the point).
_EXEMPT = ("repro/net/resultcache.py", "repro/common/store.py",
           "repro/baselines")


def _cache_named(node: ast.AST) -> str | None:
    """The dotted chain of an attribute/subscript target when its leaf
    names a cache (``self._answer_cache``, ``memo``), else None."""
    chain = attr_chain(node)
    if not chain:
        return None
    leaf = chain[-1].lower()
    if any(token in leaf for token in _CACHE_TOKENS):
        return ".".join(chain)
    return None


def check_rpl016(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL016: no ad-hoc dict caching of query answers in sim code.

    Writing into a cache-named container (``…cache[key] = answer``,
    ``…memo.setdefault(key, answer)``) anywhere the simulation can reach
    builds a second cache with no invalidation story: ``CacheDirectory``
    entries freeze the ``(peer, store version)`` set the answer came
    from and are dropped the moment any of it moves, while a bare dict
    outlives every mutation, split, and crash promotion underneath it.
    Route the lookup through :class:`repro.net.resultcache.CacheDirectory`
    (or scope the state to one run so there is nothing to invalidate).
    ``@lru_cache`` on pure functions of immutable arguments is out of
    scope — no store state, nothing to go stale.  The store's own
    version-keyed kernel cache and the competitor baselines are exempt.
    """
    if in_scope(module, _EXEMPT):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                name = _cache_named(target)
                if name and sim_scope(module, target.lineno, project):
                    yield finding_at(
                        module, target, "RPL016",
                        f"ad-hoc cache write '{name}[...] = ...' in "
                        "sim-reachable code; query-answer caching must go "
                        "through CacheDirectory, whose entries carry "
                        "(peer, store version) evidence for exact "
                        "invalidation")
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _WRITE_METHODS:
            name = _cache_named(node.func.value)
            if name and sim_scope(module, node.lineno, project):
                yield finding_at(
                    module, node, "RPL016",
                    f"ad-hoc cache write '{name}.{node.func.attr}(...)' "
                    "in sim-reachable code; query-answer caching must go "
                    "through CacheDirectory, whose entries carry "
                    "(peer, store version) evidence for exact "
                    "invalidation")
