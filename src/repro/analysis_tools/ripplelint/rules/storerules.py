"""Store rules: RPL003 (versioned mutation API), RPL014 (handler purity).

Both protect ``LocalStore``'s invalidation discipline: every mutation
goes through the versioned API, and the *query plane* — handler code —
never mutates at all.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import attr_chain, dotted
from ..engine import (Finding, ParsedModule, Project, finding_at, in_scope,
                      in_shared_scope)

__all__ = ["check_rpl003", "check_rpl014"]


# ---------------------------------------------------------------------------
# RPL003 -- out-of-band LocalStore mutation defeats cache invalidation
# ---------------------------------------------------------------------------

_STORE_FIELDS = frozenset({"_buf", "_size", "_version", "_cache"})
_STORE_METHODS = frozenset({"_invalidate", "_reserve", "_score_index"})
_STORE_MODULE = "repro/common/store.py"


def check_rpl003(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL003: no access to ``LocalStore`` internals outside the store.

    Every mutation must bump ``LocalStore.version`` (which drops the
    version-keyed computation cache and invalidates replicas).  Touching
    ``_buf``/``_size``/``_version``/``_cache`` — or calling the private
    maintenance methods — from outside ``repro/common/store.py`` bypasses
    that machinery and silently serves stale cached kernels.
    """
    if not in_shared_scope(module, project) \
            or module.package == _STORE_MODULE:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr in _STORE_FIELDS:
            yield finding_at(
                module, node, "RPL003",
                f"access to LocalStore internal '{node.attr}' outside the "
                "versioned mutation API; use insert/bulk_load/extract/"
                "take_all (mutation) or array/cached (reads)")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _STORE_METHODS:
                yield finding_at(
                    module, node, "RPL003",
                    f"call to LocalStore private method '{func.attr}()' "
                    "outside the store; cache consistency is the store's "
                    "own job")


# ---------------------------------------------------------------------------
# RPL014 -- handler purity: the query plane reads, it never mutates
# ---------------------------------------------------------------------------

#: The LocalStore mutating API (the *sanctioned* mutation surface that
#: RPL003 funnels everyone through — and that handlers may not touch at
#: all: handler code computes over stores, the data plane loads them).
_STORE_MUTATORS = frozenset({"insert", "bulk_load", "extract", "take_all"})

#: Attribute-chain names that identify simulation infrastructure state.
_INFRA_NAMES = frozenset({"peer", "peers", "overlay", "store", "links"})

#: Modules exempt from the closure walk: the store mutates itself, and
#: the overlay constructors/loaders are the data plane that mutation
#: belongs to.
_EXEMPT_PREFIXES = ("repro/common/store.py", "repro/overlays")


def _mutation_findings(module: ParsedModule, fn: ast.AST,
                       owner: str) -> Iterator[Finding]:
    """Peer/overlay/store mutations inside ``fn``, attributed to ``owner``."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _STORE_MUTATORS:
            chain = attr_chain(node.func)
            if any(part in _INFRA_NAMES for part in chain[:-1]):
                yield finding_at(
                    module, node, "RPL014",
                    f"{owner} calls LocalStore mutator "
                    f"'{node.func.attr}()'; handler code computes over "
                    "stores, only the data plane loads them")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                chain = attr_chain(target)
                # ``self.k = ...`` is the handler's own state machine;
                # what it may not do is write *through* simulation
                # infrastructure (peer.alive, overlay.links, store
                # internals) reached from any root.
                if any(part in _INFRA_NAMES for part in chain[:-1]) or \
                        (chain and chain[0] in _INFRA_NAMES):
                    yield finding_at(
                        module, target, "RPL014",
                        f"{owner} assigns through simulation state "
                        f"('{'.'.join(chain)}'); handlers must be pure "
                        "observers of peers, overlays, and stores")


def _handler_classes(module: ParsedModule) -> list[ast.ClassDef]:
    found = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and any(
                (dotted(base) or "").split(".")[-1] == "QueryHandler"
                for base in node.bases):
            found.append(node)
    return found


def _handler_reachable(project: Project) -> set[str]:
    """Qualnames reachable from any QueryHandler subclass method.

    Cached on the project; computed once per lint run.  The closure is
    taken over the conservative call graph, so a helper becomes
    handler-tainted the moment any handler method may call it.
    """
    cached = getattr(project, "_handler_reachable", None)
    if cached is not None:
        return cached
    roots = {
        method.qualname
        for cls in project.symbols.subclasses_of("QueryHandler")
        for method in cls.methods.values()}
    reachable = project.callgraph.reachable_from(roots)
    setattr(project, "_handler_reachable", reachable)
    return reachable


def check_rpl014(module: ParsedModule,
                 project: Project | None) -> Iterator[Finding]:
    """RPL014: handler code may not mutate peer, overlay, or store state.

    The RIPPLE decomposition is only correct because handler callbacks
    are pure functions of ``(state, store)``: the framework may reorder
    them across peers, replay them against replicas after a fault, and
    batch them in the arena engine.  A handler that writes through a
    peer, an overlay, or a store — directly in a method body or in any
    helper the call graph says a handler method may reach — breaks
    replay determinism and replica equivalence in ways no golden test
    pins down.  ``self.…`` assignment is fine (that *is* the handler's
    state); writing through simulation infrastructure is not.  The store
    module and the overlay data plane are exempt: loading stores is
    their job.
    """
    if in_scope(module, _EXEMPT_PREFIXES):
        return
    emitted: set[tuple[int, int]] = set()

    def _dedup(findings: Iterator[Finding]) -> Iterator[Finding]:
        for finding in findings:
            key = (finding.line, finding.col)
            if key not in emitted:
                emitted.add(key)
                yield finding

    for cls in _handler_classes(module):
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from _dedup(_mutation_findings(
                    module, item, f"handler method '{cls.name}.{item.name}'"))
    if project is None:
        return
    name = module.module_name
    if name is None:
        return
    reachable = _handler_reachable(project)
    for qualname, info in project.symbols.functions.items():
        if info.module != name or qualname not in reachable:
            continue
        if info.cls is not None:
            cls_leaf = info.cls.rsplit(".", 1)[-1]
            owner = f"handler-reachable method '{cls_leaf}.{info.name}'"
        else:
            owner = f"handler-reachable function '{info.name}'"
        yield from _dedup(_mutation_findings(module, info.node, owner))
