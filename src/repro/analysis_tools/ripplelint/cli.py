"""ripplelint's command line: scan, baseline, and changed-only modes.

Exit codes are part of the CI contract: ``0`` clean (or all findings
baselined), ``1`` at least one (non-baselined) finding, ``2`` usage
error (argparse).  ``--format github`` emits problem-matcher lines that
annotate the PR diff.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from . import baseline as baseline_mod
from .engine import Rule, iter_python_files, lint_paths
from .rules import RULES

__all__ = ["main"]


def _git(*args: str) -> str | None:
    """Stdout of a git command, or None on failure (not a repo, bad ref)."""
    try:
        proc = subprocess.run(["git", *args], capture_output=True,
                              text=True, check=False)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def _diff_base(explicit: str) -> str:
    """The ref to diff against: explicit, else merge-base with main."""
    if explicit:
        return explicit
    for candidate in ("origin/main", "main"):
        merged = _git("merge-base", "HEAD", candidate)
        if merged is not None and merged.strip():
            return merged.strip()
    return "HEAD"


def _changed_paths(requested: Sequence[str], base: str) -> list[str]:
    """Changed-in-git python files that fall under the requested paths.

    Union of ``git diff --name-only <base>`` and untracked files, so a
    brand-new module is linted before its first commit.  Deleted files
    drop out naturally (they no longer exist on disk).
    """
    listed: set[str] = set()
    for output in (_git("diff", "--name-only", base, "--"),
                   _git("ls-files", "--others", "--exclude-standard")):
        if output:
            listed.update(line.strip() for line in output.splitlines()
                          if line.strip())
    scoped = {file.resolve() for file in iter_python_files(requested)}
    changed = []
    for name in sorted(listed):
        path = Path(name)
        if path.exists() and path.resolve() in scoped:
            changed.append(name)
    return changed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis_tools.ripplelint",
        description="AST-based invariant checks for the RIPPLE codebase")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="'github' emits ::error problem-matcher lines")
    parser.add_argument("--rule", action="append", metavar="RPLxxx",
                        help="restrict to specific rule ids (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--baseline", metavar="FILE", type=Path,
                        help="JSON baseline: with --write-baseline, record "
                             "current findings; otherwise only findings "
                             "absent from FILE fail the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="(re)record --baseline FILE from this run "
                             "instead of comparing against it")
    parser.add_argument("--changed", nargs="?", const="", default=None,
                        metavar="BASE",
                        help="lint only files changed since BASE (default: "
                             "merge-base with origin/main), still judging "
                             "reachability over the whole program")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0
    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    rules: Sequence[Rule] = RULES
    if args.rule:
        wanted = set(args.rule)
        unknown = wanted - {rule.id for rule in RULES}
        if unknown:
            parser.error(f"unknown rule id(s): {sorted(unknown)}")
        rules = [rule for rule in RULES if rule.id in wanted]

    paths: Sequence[str] = args.paths
    if args.changed is not None:
        base = _diff_base(args.changed)
        paths = _changed_paths(args.paths, base)
        if not paths:
            print("ripplelint: no changed python files in scope",
                  file=sys.stderr)
            return 0

    findings = lint_paths(paths, rules)

    if args.baseline is not None and args.write_baseline:
        baseline_mod.write(args.baseline, findings)
        print(f"ripplelint: baseline of {len(findings)} finding(s) "
              f"written to {args.baseline}", file=sys.stderr)
        return 0
    if args.baseline is not None:
        try:
            known = baseline_mod.load(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            parser.error(f"cannot read baseline {args.baseline}: {error}")
        findings, baselined = baseline_mod.compare(findings, known)
        if baselined:
            print(f"ripplelint: {len(baselined)} known finding(s) excused "
                  f"by {args.baseline}", file=sys.stderr)

    for finding in findings:
        print(finding.render(args.format))
    if findings:
        print(f"ripplelint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
