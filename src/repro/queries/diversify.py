"""k-diversification with RIPPLE (Section 6) — the first distributed one.

Given a query point ``q``, the k-diversification query finds a set ``O`` of
``k`` tuples minimizing Equation 1::

    f(O, q) = lam * max_{x in O} dr(x, q) - (1 - lam) * min_{y,z in O} dv(y, z)

(low max-distance-to-q = relevant, high min-pairwise-distance = diverse;
``lam`` trades them off).  The problem is NP-hard, so Section 6.3 solves
it greedily: build an initial set, then repeatedly swap one member for a
better outsider (Algorithms 22-23), where each "find the best outsider"
is a *single tuple diversification query* solved exactly by RIPPLE
(Algorithms 16-21).

The marginal cost of adding ``t`` to ``O`` (Equation 3) simplifies to::

    phi(t, q, O) = lam * max(0, dr(t,q) - maxrel)
                 + (1 - lam) * max(0, minpair - min_x dv(t, x))

whose four linear clauses are exactly the paper's four cases.  ``phi``
needs ``|O| >= 2``; while the initial set is still growing we score
candidates with the standard greedy marginal (maximal-marginal-relevance
style)::

    phi_grow(t, q, O) = lam * dr(t, q) - (1 - lam) * min_x dv(t, x)

both minimized, and both admitting a per-region lower bound ``phi^-``
from ``mindist``/``maxdist`` — which is all RIPPLE needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..common.geometry import (Point, Rect, as_point, maxdist, mindist,
                               minkowski_distance)
from ..common.store import LocalStore
from ..core.handler import QueryHandler
from ..core.regions import Region
from ..net.context import QueryResult, QueryStats

__all__ = [
    "DiversificationObjective",
    "SingleDiversificationHandler",
    "SingleQueryEngine",
    "RippleDiversifier",
    "greedy_diversify",
    "diversify_reference",
]

_EPS = 1e-12


class DiversificationObjective:
    """Equation 1's objective plus the marginal scores and region bounds.

    ``p`` selects the Minkowski metric for both relevance and diversity
    distances (the paper uses L1 for MIRFLICKR).
    """

    def __init__(self, query: Sequence[float], lam: float, p: float = 1):
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        self.query: Point = as_point(query)
        self.lam = float(lam)
        self.p = p
        self._q = np.asarray(self.query, dtype=float)

    # -- distances ----------------------------------------------------------

    def _dist_batch(self, array: np.ndarray, point: Sequence[float]
                    ) -> np.ndarray:
        diff = np.abs(np.asarray(array, dtype=float)
                      - np.asarray(point, dtype=float))
        if self.p == 1:
            return diff.sum(axis=1)
        if math.isinf(self.p):
            return diff.max(axis=1)
        return (diff ** self.p).sum(axis=1) ** (1.0 / self.p)

    def _set_features(self, members: Sequence[Point]
                      ) -> tuple[float, float]:
        """``(maxrel, minpair)`` of a member set (inf when undefined)."""
        if not members:
            return -math.inf, math.inf
        arr = np.asarray(members, dtype=float)
        maxrel = float(self._dist_batch(arr, self.query).max())
        if len(members) < 2:
            return maxrel, math.inf
        minpair = math.inf
        for i in range(len(members) - 1):
            dists = self._dist_batch(arr[i + 1:], arr[i])
            minpair = min(minpair, float(dists.min()))
        return maxrel, minpair

    # -- objective and marginals ---------------------------------------------

    def f(self, members: Sequence[Point]) -> float:
        """Equation 1 (minimized).  Needs ``|O| >= 2``."""
        if len(members) < 2:
            raise ValueError("f(O) needs at least two members")
        maxrel, minpair = self._set_features(members)
        return self.lam * maxrel - (1.0 - self.lam) * minpair

    def phi_batch(self, array: np.ndarray, members: Sequence[Point]
                  ) -> np.ndarray:
        """Equation 3 for every row of ``array`` (vectorized)."""
        maxrel, minpair = self._set_features(members)
        rel = self._dist_batch(array, self.query)
        div = self._min_dist_to_set(array, members)
        return (self.lam * np.maximum(0.0, rel - maxrel)
                + (1.0 - self.lam) * np.maximum(0.0, minpair - div))

    def phi(self, tuple_: Sequence[float], members: Sequence[Point]) -> float:
        return float(self.phi_batch(
            np.asarray([tuple_], dtype=float), members)[0])

    def phi_grow_batch(self, array: np.ndarray, members: Sequence[Point]
                       ) -> np.ndarray:
        """The growth-phase marginal (see module docstring)."""
        rel = self._dist_batch(array, self.query)
        if not members:
            return self.lam * rel
        div = self._min_dist_to_set(array, members)
        return self.lam * rel - (1.0 - self.lam) * div

    def _min_dist_to_set(self, array: np.ndarray,
                         members: Sequence[Point]) -> np.ndarray:
        if not members:
            return np.full(len(array), math.inf)
        out = np.full(len(array), math.inf)
        for member in members:
            out = np.minimum(out, self._dist_batch(array, member))
        return out

    # -- region bounds ---------------------------------------------------------

    def phi_lower_bound(self, rect: Rect, members: Sequence[Point],
                        grow: bool) -> float:
        """``phi^-``: a lower bound of the marginal over a whole region.

        ``phi`` increases with the candidate's distance to ``q`` and
        decreases with its distance to the set, so the bound plugs in
        ``mindist`` to ``q`` and ``maxdist`` to each member (Algorithm 20's
        ``phi^-``).
        """
        rel_lo = mindist(self.query, rect, self.p)
        div_hi = min((maxdist(m, rect, self.p) for m in members),
                     default=math.inf)
        if grow:
            if not members:
                return self.lam * rel_lo
            return self.lam * rel_lo - (1.0 - self.lam) * div_hi
        maxrel, minpair = self._set_features(members)
        return (self.lam * max(0.0, rel_lo - maxrel)
                + (1.0 - self.lam) * max(0.0, minpair - div_hi))

    # -- local scans -----------------------------------------------------------

    def candidate_key(self, score: float, point: Point):
        """Deterministic total order on candidates.

        Marginal scores tie in bulk (e.g. with ``|O| = 1`` and equal
        relevance/diversity metrics, ``phi_grow`` is constant), so every
        engine — centralized, RIPPLE, flooding — breaks ties the same way:
        prefer the more relevant candidate, then lexicographic.
        """
        return (score, minkowski_distance(point, self.query, self.p), point)

    def best_local(self, store: LocalStore, members: Sequence[Point],
                   exclude: Sequence[Point], grow: bool
                   ) -> tuple[float, Point] | None:
        """``getMostDiverseLocalObject``: the local tuple minimizing phi.

        Tuples already in ``exclude`` are masked out (the answer must come
        from outside the current set, Equation 2).  Ties resolve through
        :meth:`candidate_key`.
        """
        if len(store) == 0:
            return None
        array = store.array
        scores = (self.phi_grow_batch(array, members) if grow
                  else self.phi_batch(array, members))
        mask = np.ones(len(array), dtype=bool)
        for point in exclude:
            mask &= ~np.all(array == np.asarray(point, dtype=float), axis=1)
        if not mask.any():
            return None
        eligible = np.flatnonzero(mask)
        floor = scores[eligible].min()
        tied = eligible[scores[eligible] == floor]
        if len(tied) > 1:
            rel = self._dist_batch(array[tied], self.query)
            tied = tied[rel == rel.min()]
            best = min(tied, key=lambda i: as_point(array[i]))
        else:
            best = tied[0]
        return float(scores[best]), as_point(array[best])


#: A candidate-ordering key: (phi score, distance to q, the tuple itself).
#: All engines order candidates this way, so that the heavy score ties the
#: marginal functions produce (see :meth:`candidate_key`) resolve the same
#: everywhere.  Region pruning compares keys lexicographically against a
#: componentwise lower bound, which is sound because componentwise <=
#: implies lexicographic <=.
DivKey = tuple[float, float, tuple]

_NO_CANDIDATE: DivKey = (math.inf, math.inf, ())


def threshold_key(tau: float) -> DivKey:
    """The state key encoding "strictly better than ``tau``" (used when
    Algorithm 23 passes an explicit improvement threshold)."""
    return (tau, -math.inf, ())


@dataclass(frozen=True, slots=True)
class DivState:
    """The single-tuple query state: the best candidate key known.

    The paper's scalar threshold tau is ``key[0]``; the remaining
    components only disambiguate exact score ties.
    """

    key: DivKey = _NO_CANDIDATE

    @property
    def tau(self) -> float:
        return self.key[0]


class SingleDiversificationHandler(QueryHandler):
    """RIPPLE callbacks for the single tuple diversification query
    (Algorithms 16-21)."""

    def __init__(self, objective: DiversificationObjective,
                 members: Sequence[Point], *,
                 exclude: Sequence[Point] = (), grow: bool = False):
        self.objective = objective
        self.members = tuple(members)
        self.exclude = tuple(exclude) or self.members
        self.grow = grow

    def _best_key(self, store: LocalStore) -> DivKey | None:
        """The peer's best candidate key, cached on the store.

        Both the local state (Algorithm 16) and the local answer
        (Algorithm 18) need the same ``getMostDiverseLocalObject`` scan;
        the store memoizes it per handler instance (one handler = one
        single-tuple sub-query) and store version, halving the per-peer
        work of every sub-query.
        """
        return store.cached(("div-best", self),
                            lambda: self._compute_best_key(store))

    def _compute_best_key(self, store: LocalStore) -> DivKey | None:
        best = self.objective.best_local(store, self.members, self.exclude,
                                         self.grow)
        if best is None:
            return None
        return self.objective.candidate_key(best[0], best[1])

    # -- states (Algorithms 16, 17, 19) ---------------------------------------

    def initial_state(self) -> DivState:
        return DivState()

    def compute_local_state(self, store: LocalStore,
                            global_state: DivState) -> DivState:
        best = self._best_key(store)
        if best is not None and best < global_state.key:
            return DivState(best)
        return DivState(global_state.key)

    def compute_global_state(self, global_state: DivState,
                             local_state: DivState) -> DivState:
        """Algorithm 17 sets the global state to the local one, which is
        valid because Algorithm 16 folded the received threshold into it;
        taking the min additionally covers neutral (re-visit) local
        states, which must not erase the inherited threshold."""
        return DivState(min(global_state.key, local_state.key))

    def update_local_state(self, states: Sequence[DivState]) -> DivState:
        return DivState(min((s.key for s in states), default=_NO_CANDIDATE))

    # -- answers (Algorithm 18) --------------------------------------------------

    def compute_local_answer(self, store: LocalStore,
                             local_state: DivState) -> Point | None:
        best = self._best_key(store)
        if best is not None and best == local_state.key:
            return best[2]
        return None

    def answer_size(self, answer) -> int:
        return 0 if answer is None else 1

    def finalize(self, answers: Sequence[Point | None]
                 ) -> tuple[float, Point] | None:
        candidates = [a for a in answers if a is not None]
        if not candidates:
            return None
        scorer = (self.objective.phi_grow_batch if self.grow
                  else self.objective.phi_batch)
        scores = scorer(np.asarray(candidates, dtype=float), self.members)
        best = min(range(len(candidates)),
                   key=lambda i: self.objective.candidate_key(
                       float(scores[i]), candidates[i]))
        return float(scores[best]), candidates[best]

    # -- link decisions (Algorithms 20, 21) ----------------------------------------

    def _bound(self, region: Region) -> DivKey:
        return min(
            (self.objective.phi_lower_bound(rect, self.members, self.grow),
             mindist(self.objective.query, rect, self.objective.p),
             rect.lo)
            for rect in region.cover())

    def is_link_relevant(self, region: Region, global_state: DivState) -> bool:
        return self._bound(region) < global_state.key

    def link_priority(self, region: Region) -> DivKey:
        return self._bound(region)

    # -- seeding -------------------------------------------------------------------

    def seed_satisfied(self, state: DivState) -> bool:
        return state.tau < math.inf

    def probe_score(self, state: DivState) -> float:
        return -state.tau


class SingleQueryEngine(Protocol):
    """Anything that can answer single tuple diversification queries.

    Two implementations exist: :class:`RippleDiversifier` (this module)
    and the CAN flooding baseline
    (:class:`repro.baselines.div_baseline.FloodingDiversifier`).  Sharing
    the greedy driver between them enforces the paper's fairness device:
    both heuristics produce the same result at each step and the metrics
    capture pure processing cost.
    """

    def solve_single(self, objective: DiversificationObjective,
                     members: Sequence[Point], *, tau: float,
                     exclude: Sequence[Point], grow: bool
                     ) -> tuple[tuple[float, Point] | None, QueryStats]:
        ...  # pragma: no cover - protocol


class RippleDiversifier:
    """RIPPLE-based engine for single tuple diversification queries."""

    def __init__(self, overlay, initiator, *, r: int = 0,
                 seeded: bool = True, strict: bool = True, sink=None):
        self.overlay = overlay
        self.initiator = initiator
        self.r = r
        self.seeded = seeded
        self.strict = strict
        #: Trace sink shared by every single-tuple sub-query; a recorded
        #: diversification trace holds one root span per round.
        self.sink = sink

    def solve_single(self, objective, members, *, tau=math.inf,
                     exclude=(), grow=False):
        from ..core.framework import run_ripple
        from .drivers import run_seeded

        handler = SingleDiversificationHandler(
            objective, members, exclude=exclude, grow=grow)
        restriction = self.overlay.domain()
        initial = DivState() if math.isinf(tau) else DivState(threshold_key(tau))
        # Improvement queries (Algorithm 23) arrive with an explicit
        # threshold that prunes from the first hop, so only cold-start
        # queries benefit from routing to a seed first.
        if self.seeded and math.isinf(tau):
            domain = restriction.cover()[0]
            seed_point = tuple(min(max(v, l), h - 1e-12) for v, l, h in zip(
                objective.query, domain.lo, domain.hi))
            result = run_seeded(self.initiator, handler, self.r,
                                restriction=restriction,
                                seed_point=seed_point, strict=self.strict,
                                initial_state=initial, sink=self.sink)
        else:
            result = run_ripple(self.initiator, handler, self.r,
                                restriction=restriction, strict=self.strict,
                                initial_state=initial, sink=self.sink)
        return result.answer, result.stats


def greedy_diversify(
    engine: SingleQueryEngine,
    objective: DiversificationObjective,
    k: int,
    *,
    max_iters: int = 10,
) -> QueryResult:
    """Algorithms 22-23: greedy construction plus swap-based improvement.

    Returns a :class:`QueryResult` whose answer is ``(members, f_value)``
    with the accumulated cost of every distributed sub-query (sub-queries
    run back to back, so latencies add).
    """
    if k < 2:
        raise ValueError("k-diversification needs k >= 2")
    stats = QueryStats()
    members: list[Point] = []

    # initialize (Algorithm 22 line 1): k single-tuple queries, growing O.
    for _ in range(k):
        answer, cost = engine.solve_single(objective, members,
                                           tau=math.inf, exclude=members,
                                           grow=True)
        stats = stats.combine_sequential(cost)
        if answer is None:
            break  # fewer than k distinct tuples exist in the network
        members.append(answer[1])

    if len(members) >= 2:
        # improvement iterations (Algorithm 22 lines 2-9).
        for _ in range(max_iters):
            improved, members, cost = _improve(engine, objective, members)
            stats = stats.combine_sequential(cost)
            if not improved:
                break

    value = objective.f(members) if len(members) >= 2 else math.nan
    return QueryResult(answer=(members, value), stats=stats)


def _improve(engine: SingleQueryEngine,
             objective: DiversificationObjective,
             members: list[Point]) -> tuple[bool, list[Point], QueryStats]:
    """Algorithm 23: find the single best swap, if any improves f."""
    stats = QueryStats()
    ordered = sorted(
        members,
        key=lambda t: -objective.phi(t, _without(members, t)))
    best_value = objective.f(members)
    t_in: Point | None = None
    t_out: Point | None = None
    for candidate_out in ordered:
        base = _without(members, candidate_out)
        # The replacement must make the new set beat the best set known so
        # far: phi(t, base) < best_value - f(base)  (Alg. 23 lines 5-9).
        tau = best_value - objective.f(base) - _EPS
        answer, cost = engine.solve_single(objective, base, tau=tau,
                                           exclude=members, grow=False)
        stats = stats.combine_sequential(cost)
        if answer is not None:
            t_out, t_in = candidate_out, answer[1]
            best_value = objective.f([*base, t_in])
    if t_in is None or t_out is None:
        return False, members, stats
    return True, [*_without(members, t_out), t_in], stats


def _without(members: Sequence[Point], item: Point) -> list[Point]:
    out = list(members)
    out.remove(item)
    return out


def diversify_reference(
    array: np.ndarray,
    objective: DiversificationObjective,
    k: int,
    *,
    max_iters: int = 10,
) -> tuple[list[Point], float]:
    """Centralized oracle running the same greedy heuristic over all data.

    Used by tests to check that the distributed engines make exactly the
    same greedy decisions.
    """
    store = LocalStore(array.shape[1])
    store.bulk_load(array)

    class _LocalEngine:
        def solve_single(self, obj, members, *, tau, exclude, grow):
            best = obj.best_local(store, members, exclude, grow)
            if best is None or best[0] >= tau:
                return None, QueryStats()
            return best, QueryStats()

    result = greedy_diversify(_LocalEngine(), objective, k,
                              max_iters=max_iters)
    return result.answer
