"""Range queries: the foil the paper contrasts rank queries against.

Section 1: for a range query "the search area is explicitly defined in
the query", so RIPPLE's state machinery is trivial — no knowledge gained
while processing can shrink the search area any further.  The handler
exists (a) to serve actual range workloads over the same overlays and
(b) as the degenerate case that exercises the framework templates with a
stateless query, which the test-suite uses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..common.geometry import Point, Rect, as_point
from ..common.store import LocalStore
from ..core.handler import QueryHandler
from ..core.regions import Region

__all__ = ["RangeHandler", "range_reference"]


class RangeHandler(QueryHandler):
    """Retrieve every tuple inside an axis-aligned query box."""

    def __init__(self, box: Rect):
        self.box = box

    # The state is inert: nothing about the search area is learned.
    def initial_state(self) -> None:
        return None

    def compute_local_state(self, store: LocalStore, global_state) -> None:
        return None

    def compute_global_state(self, global_state, local_state) -> None:
        return None

    def update_local_state(self, states: Sequence[None]) -> None:
        return None

    def compute_local_answer(self, store: LocalStore,
                             local_state) -> list[Point]:
        if len(store) == 0:
            return []
        array = store.array
        inside = np.all((array >= self.box.lo) & (array < self.box.hi),
                        axis=1)
        return [as_point(row) for row in array[inside]]

    def finalize(self, answers: Sequence[Sequence[Point]]) -> list[Point]:
        return sorted(point for answer in answers for point in answer)

    def is_link_relevant(self, region: Region, global_state) -> bool:
        return any(rect.intersects(self.box) for rect in region.cover())

    def link_priority(self, region: Region) -> float:
        # all relevant regions are equally necessary; keep link order
        return 0.0


def range_reference(array: np.ndarray, box: Rect) -> list[Point]:
    """Centralized oracle for the half-open box query."""
    array = np.asarray(array, dtype=float)
    inside = np.all((array >= box.lo) & (array < box.hi), axis=1)
    return sorted(as_point(row) for row in array[inside])
