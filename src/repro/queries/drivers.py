"""Seeded query drivers: route first, then ripple.

A rank query started cold at an arbitrary peer cannot prune anything until
its state certifies enough tuples (Algorithm 8's ``m < k`` clause), so the
parallel extreme degenerates to flooding on sparse networks.  Every
distributed rank-query system this paper builds on avoids that by starting
work where the answer lives: SSP "starts only at the peer responsible for
the region containing the origin of the data space", DSL roots its
multicast hierarchy at the origin-corner peer, and the Section 5.2 MIDAS
optimization aims links at boundary peers for the same reason.

The drivers here reconstruct that behaviour for RIPPLE (see DESIGN.md,
"Substitutions"): the initiator first routes an O(log n) lookup toward a
query-specific *seed point* (the maximizer of the scoring function, the
domain origin for skylines).  Peers along the route piggyback their local
states and candidate tuples onto the lookup, so the ripple phase starts at
the seed peer with a warm global state and prunes from its first hop.
Routing hops count toward latency; routing peers process the query and
count toward congestion.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..common.geometry import Point
from ..core.framework import PeerLike, execute
from ..core.handler import QueryHandler
from ..core.regions import Region
from ..net.context import QueryContext, QueryResult, QueryStats
from ..net.routing import greedy_route
from ..obs.trace import TraceSink, state_size

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from ..net.resultcache import CacheDirectory

__all__ = ["ExecutorFn", "run_seeded"]

#: The ripple-phase engine contract: anything signature-compatible with
#: :func:`repro.core.framework.execute`.  The batched wavefront engine
#: (:func:`repro.overlays.arena.wavefront_execute`) is the in-repo
#: alternative implementation.
ExecutorFn = Callable[..., Any]

#: Upper bound on best-first probe visits; a safety valve, never the
#: stopping rule in practice (the handler's ``seed_satisfied`` is).
_PROBE_BUDGET = 256

#: The probe stops after this many consecutive visits without improving
#: the handler's ``probe_score`` (once ``seed_satisfied`` holds).
_PROBE_PATIENCE = 5


def run_seeded(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int,
    *,
    restriction: Region,
    seed_point: Sequence[float] | Point,
    strict: bool = True,
    initial_state=None,
    sink: TraceSink | None = None,
    executor: ExecutorFn | None = None,
    cache: "CacheDirectory | None" = None,
) -> QueryResult:
    """Route to the peer owning ``seed_point``, then ripple from there.

    ``executor`` swaps the ripple-phase engine (default
    :func:`~repro.core.framework.execute`); routing and probing are
    always scalar — they touch O(log n) peers.

    Every peer on the route contributes its local state to the query's
    global state and ships its local candidates to the initiator, exactly
    as a processed peer would; the ripple phase then starts at the seed
    peer with that warm state.  Routed-through peers are marked processed,
    so the main phase treats them as already-visited (they may legally be
    reached again, contributing nothing twice).

    With a ``cache`` attached the drive consults it first: an exact hit
    returns the remembered answer with zero-cost stats (no messages, no
    peers touched), a semantic hit seeds the initial global state so
    links prune before the first hop, and a completed miss is stored
    back keyed on the peers it actually processed.  Warm answers are
    bit-identical to cold ones (see :mod:`repro.net.resultcache`).

    With a trace ``sink`` attached, the whole drive records under one
    ``query`` root span: routing and probing emit ``process`` spans at
    hop-accurate virtual times, so the trace's critical path spans the
    route, the probe, and the ripple phase end to end.
    """
    seeded_state = None
    if cache is not None:
        found = cache.lookup(handler, restriction)
        if found.is_exact:
            stats = QueryStats()
            if sink is not None and sink.enabled:
                span = sink.begin_span(
                    "query", initiator.peer_id, 0, region=repr(restriction),
                    r=r, cache="exact")
                sink.event("cache-hit", 0, span=span, saved=found.saved)
                sink.end_span(span, 0)
                sink.on_stats(stats)
            return QueryResult(found.answer, stats)
        if found.kind == "seed" and initial_state is None:
            seeded_state = found.state
    seed_peer, path = greedy_route(initiator, seed_point)
    ctx = QueryContext(strict=strict)
    if sink is not None:
        ctx.sink = sink
    if initial_state is None:
        state = handler.initial_state() if seeded_state is None \
            else seeded_state
    else:
        state = initial_state
    query_span = 0
    if ctx.sink.enabled:
        query_span = ctx.sink.begin_span(
            "query", initiator.peer_id, 0, region=repr(restriction), r=r,
            seed_point=tuple(float(v) for v in seed_point))
        if seeded_state is not None:
            ctx.sink.event("cache-seed", 0, span=query_span,
                           size=state_size(seeded_state))
        elif cache is not None:
            ctx.sink.event("cache-miss", 0, span=query_span)
    for hop, peer in enumerate(path[:-1]):
        state, _ = _probe_peer(ctx, handler, peer, state, initiator.peer_id,
                               t=hop, parent_span=query_span)
        ctx.on_forward()
        if ctx.sink.enabled:
            ctx.sink.event("forward", hop, span=query_span,
                           target=path[hop + 1].peer_id)
    base_latency = len(path) - 1
    state, probe_hops = _best_first_probe(
        ctx, handler, seed_peer, state, initiator.peer_id,
        base_t=base_latency, parent_span=query_span)
    engine = executor if executor is not None else execute
    result = engine(seed_peer, handler, r, restriction=restriction, ctx=ctx,
                    initial_state=state,
                    base_latency=base_latency + probe_hops,
                    answers_to=initiator.peer_id,
                    parent_span=query_span or None)
    if ctx.sink.enabled:
        ctx.sink.end_span(query_span, result.stats.latency)
    if cache is not None:
        cache.store(handler, restriction, result, ctx.processed)
    return result


def _probe_peer(ctx: QueryContext, handler: QueryHandler, peer: PeerLike,
                state, initiator_id, *, t: int = 0,
                parent_span: int | None = None) -> tuple[object, object]:
    """Process one peer during seeding.

    Returns the enriched global state plus the peer's own local state.
    ``t`` is the hop-accurate virtual time the lookup reaches the peer.
    """
    if not ctx.begin_processing(peer.peer_id):
        return state, handler.neutral_local_state()
    ctx.revisitable.add(peer.peer_id)
    local = handler.compute_local_state(peer.store, state)
    state = handler.compute_global_state(state, local)
    span = 0
    if ctx.sink.enabled:
        span = ctx.sink.begin_span("process", peer.peer_id, t,
                                   parent=parent_span or None,
                                   phase="seeding", processes=True,
                                   state_size=state_size(local))
    answer = handler.compute_local_answer(peer.store, local)
    if peer.peer_id == initiator_id:
        ctx.collected_answers.append(answer)
    else:
        size = handler.answer_size(answer)
        ctx.on_answer(answer, size)
        if ctx.sink.enabled and size > 0:
            ctx.sink.event("answer", t, span=span, size=size)
    if ctx.sink.enabled:
        ctx.sink.end_span(span, t)
    return state, local


def _best_first_probe(ctx: QueryContext, handler: QueryHandler,
                      seed_peer: PeerLike, state, initiator_id, *,
                      base_t: int = 0, parent_span: int | None = None
                      ) -> tuple[object, int]:
    """Sequentially visit the most promising regions around the seed.

    A short branch-and-bound walk: pop the best-priority link region seen
    so far, process its peer, push that peer's links, and stop once the
    states *gathered by the probe itself* satisfy the handler
    (``seed_satisfied``).  Judging saturation on the probe's own harvest —
    not on whatever the routing path happened to contribute — matters:
    the probe chases the best regions of the domain, so its harvest
    approximates the true answer's scores, giving the parallel extreme
    (r = 0) a pruning-grade threshold before it fans out.  With
    ``seed_satisfied`` returning True immediately (the default) the probe
    degenerates to processing the seed peer only.
    """
    counter = itertools.count()
    frontier: list[tuple[float, int, PeerLike, Region]] = []

    def push_links(peer: PeerLike) -> None:
        for link in peer.links():
            if link.peer.peer_id not in ctx.processed:
                heapq.heappush(frontier, (handler.link_priority(link.region),
                                          next(counter), link.peer,
                                          link.region))

    state, gathered = _probe_peer(ctx, handler, seed_peer, state,
                                  initiator_id, t=base_t,
                                  parent_span=parent_span)
    hops = 0
    stale = 0
    push_links(seed_peer)
    while frontier and hops < _PROBE_BUDGET:
        if handler.seed_satisfied(gathered) and stale >= _PROBE_PATIENCE:
            break
        _, _, peer, region = heapq.heappop(frontier)
        if peer.peer_id in ctx.processed:
            continue
        if not handler.is_link_relevant(region, state):
            continue
        ctx.on_forward()
        if ctx.sink.enabled:
            ctx.sink.event("forward", base_t + hops, span=parent_span or 0,
                           target=peer.peer_id)
        hops += 1
        before = handler.probe_score(gathered)
        state, local = _probe_peer(ctx, handler, peer, state, initiator_id,
                                   t=base_t + hops, parent_span=parent_span)
        gathered = handler.update_local_state((gathered, local))
        stale = stale + 1 if handler.probe_score(gathered) <= before else 0
        push_links(peer)
    return state, hops
