"""RIPPLE query instantiations: top-k, skyline, diversification, ranges."""

from .diversify import (DiversificationObjective, RippleDiversifier,
                        SingleDiversificationHandler, diversify_reference,
                        greedy_diversify)
from .drivers import run_seeded
from .rangeq import RangeHandler, range_reference
from .skyline import (SkylineHandler, distributed_skyline,
                      k_skyband_of_array, merge_skylines, skyline_of,
                      skyline_of_array, skyline_reference)
from .topk import TopKHandler, TopKState, distributed_topk, topk_reference

__all__ = [
    "DiversificationObjective", "RangeHandler", "RippleDiversifier",
    "SingleDiversificationHandler", "SkylineHandler", "TopKHandler",
    "TopKState", "distributed_skyline", "distributed_topk",
    "diversify_reference", "greedy_diversify", "k_skyband_of_array",
    "merge_skylines", "range_reference", "run_seeded", "skyline_of",
    "skyline_of_array", "skyline_reference", "topk_reference",
]
