"""Top-k query processing with RIPPLE (Section 4, Algorithms 4-9).

Scores are maximized: the answer is the ``k`` tuples of highest score
under a unimodal scoring function ``f`` (Section 4), pruned through the
region upper bound ``f^+`` (Algorithm 8) and prioritized by it
(Algorithm 9).

**State representation.**  The paper sketches the abstract state as a
scalar certificate ``(m, tau)`` — ``m`` tuples scoring at least ``tau``
retrieved so far (Algorithms 4, 5, 7).  A scalar certificate loses
information: a peer holding one excellent and one poor tuple can only
report the pair's *minimum* score, so the merged threshold stalls far
below the true ``k``-th score and pruning never tightens.  Section 3
explicitly leaves the state open ("a set of local/remote records, or
bounds/guarantees for these tuples"), so we carry the lossless version:
the **multiset of the best k scores retrieved so far** plus a ``floor``
(the strongest threshold any certificate along the way established).  The
scalar ``(m, tau)`` of the pseudocode is the projection
``(len(scores), tau())`` of this state, and every algorithm below reduces
to its printed counterpart when stores hold at most one tuple.  See
DESIGN.md ("Substitutions").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..common.geometry import Point
from ..common.scoring import ScoringFunction
from ..common.store import LocalStore
from ..core.handler import QueryHandler
from ..core.regions import Region

__all__ = ["TopKState", "TopKHandler", "distributed_topk", "topk_reference"]


@dataclass(frozen=True, slots=True)
class TopKState:
    """The best scores retrieved so far, plus the strongest known floor.

    ``scores`` is descending and holds at most ``k`` entries; ``floor`` is
    a sound global lower bound on the ``k``-th best score (tuples scoring
    below it can never appear in the answer).  The scalar certificate of
    the paper's pseudocode is ``(len(scores), min(scores))``.
    """

    scores: tuple[float, ...] = ()
    floor: float = -math.inf

    @property
    def count(self) -> int:
        return len(self.scores)


class TopKHandler(QueryHandler):
    """RIPPLE callbacks for ``top-k`` under scoring function ``fn``.

    ``epsilon`` enables approximate retrieval in the spirit of KLEE
    (Section 2.1): a region is pruned unless it could contain a tuple
    beating the certified threshold by more than a ``(1 + epsilon)``
    slack, cutting traffic at the price of a bounded answer error — every
    returned score is within ``epsilon * |tau|`` of a true top-k score.
    ``epsilon = 0`` (the default) is exact.
    """

    def __init__(self, fn: ScoringFunction, k: int, *, epsilon: float = 0.0):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.fn = fn
        self.k = k
        self.epsilon = epsilon

    def tau(self, state: TopKState) -> float:
        """The pruning threshold this state certifies.

        The ``k``-th best retrieved score once ``k`` tuples are known,
        else the inherited floor; ``-inf`` means nothing can be pruned yet
        (the ``m < k`` clause of Algorithm 8).
        """
        if len(state.scores) >= self.k:
            return max(state.floor, state.scores[self.k - 1])
        return state.floor

    def _merge(self, states: Sequence[TopKState]) -> TopKState:
        scores = sorted((s for state in states for s in state.scores),
                        reverse=True)[: self.k]
        floors = [state.floor for state in states]
        merged = TopKState(tuple(scores), max(floors, default=-math.inf))
        # A full merged list is itself a certificate; remember it.
        return TopKState(merged.scores, max(merged.floor, self.tau(merged)))

    # -- states (Algorithms 4, 5, 7) --------------------------------------

    def initial_state(self) -> TopKState:
        return TopKState()

    def compute_local_state(self, store: LocalStore,
                            global_state: TopKState) -> TopKState:
        """Algorithm 4: the best local scores that can still matter.

        ``top_scoring`` rides on the store's cached per-``fn`` score
        index, so this scan and the answer scan of Algorithm 6 score the
        peer's array once per query (and once across an entire sweep of
        queries on a static network).
        """
        cutoff = self.tau(global_state)
        retrieved = store.top_scoring(self.fn, self.k, above=cutoff)
        return TopKState(tuple(score for score, _ in retrieved), cutoff)

    def compute_global_state(self, global_state: TopKState,
                             local_state: TopKState) -> TopKState:
        """Algorithm 5: fold the local certificate into the global one."""
        return self._merge((global_state, local_state))

    def update_local_state(self, states: Sequence[TopKState]) -> TopKState:
        """Algorithm 7: the strongest certificate the states support."""
        return self._merge(states)

    # -- answers (Algorithm 6) --------------------------------------------

    def compute_local_answer(self, store: LocalStore,
                             local_state: TopKState) -> list[Point]:
        return store.scoring_at_least(self.fn, self.tau(local_state))

    def finalize(self, answers: Sequence[Sequence[Point]]
                 ) -> list[tuple[float, Point]]:
        """Merge the collected local answers into the global top-k.

        Returns ``(score, tuple)`` pairs, best first, with deterministic
        lexicographic tie-breaking.
        """
        scored = sorted(((self.fn.score(t), t)
                         for answer in answers for t in answer),
                        key=lambda pair: (-pair[0], pair[1]))
        return scored[: self.k]

    # -- link decisions (Algorithms 8, 9) ----------------------------------

    def _region_upper_bound(self, region: Region) -> float:
        return max(self.fn.upper_bound(rect) for rect in region.cover())

    def is_link_relevant(self, region: Region, global_state: TopKState) -> bool:
        tau = self.tau(global_state)
        if tau == -math.inf:
            return True
        slack = self.epsilon * abs(tau)
        return self._region_upper_bound(region) >= tau + slack

    def link_priority(self, region: Region) -> float:
        return -self._region_upper_bound(region)

    # -- seeding ------------------------------------------------------------

    def seed_satisfied(self, state: TopKState) -> bool:
        """The seed probe may stop once ``k`` tuples back the threshold."""
        return len(state.scores) >= self.k

    def probe_score(self, state: TopKState) -> float:
        """Probe until the harvested ``k``-th best score stops improving."""
        return self.tau(state)


def distributed_topk(
    initiator,
    fn: ScoringFunction,
    k: int,
    *,
    restriction: Region,
    r: int = 0,
    seeded: bool = True,
    strict: bool = True,
    sink=None,
    executor=None,
    cache=None,
):
    """End-to-end distributed top-k from ``initiator``.

    With ``seeded`` (the default, used by all experiments) the query first
    routes toward the scoring function's peak and probes best-first until
    ``k`` tuples back the threshold, so the ripple phase starts with a
    warm state; without it, Algorithm 3 runs cold from the initiator.
    ``cache`` (a :class:`~repro.net.resultcache.CacheDirectory`) enables
    exact and semantic answer reuse; it requires the seeded driver.
    Returns a :class:`~repro.net.context.QueryResult` whose ``answer`` is
    a list of ``(score, tuple)`` pairs, best first.
    """
    from ..core.framework import run_ripple
    from .drivers import run_seeded

    handler = TopKHandler(fn, k)
    if not seeded:
        if cache is not None:
            raise ValueError("answer caching requires the seeded driver")
        return run_ripple(initiator, handler, r,
                          restriction=restriction, strict=strict, sink=sink,
                          executor=executor)
    domain = restriction.cover()[0]
    seed_point = tuple(min(v, h - 1e-12)
                       for v, h in zip(fn.peak(domain), domain.hi))
    return run_seeded(initiator, handler, r, restriction=restriction,
                      seed_point=seed_point, strict=strict, sink=sink,
                      executor=executor, cache=cache)


def topk_reference(array, fn: ScoringFunction, k: int) -> list[tuple[float, Point]]:
    """Centralized oracle: top-k over the full dataset, same tie-breaking."""
    from ..common.geometry import as_point

    scored = sorted(((float(fn.score(row)), as_point(row)) for row in array),
                    key=lambda pair: (-pair[0], pair[1]))
    return scored[:k]
