"""Skyline query processing with RIPPLE (Section 5, Algorithms 10-15).

The abstract state is a *partial skyline*: a set of tuples none of which
dominates another, refined as more of the network is seen.  Lower values
are better on every dimension (Section 5.1); flip attributes beforehand
for max-oriented data (:func:`repro.data.nba.to_minimization`).

Pruning (Algorithm 14): a link is irrelevant when some already-known tuple
dominates its entire region.  Prioritization (Algorithm 15): regions
closer to the origin first, because tuples near the origin dominate the
most.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..common.geometry import Point, Rect, as_point, dominates, mindist
from ..common.store import LocalStore
from ..core.handler import QueryHandler
from ..core.regions import Region

__all__ = [
    "skyline_of",
    "skyline_of_array",
    "merge_skylines",
    "skyline_reference",
    "SkylineHandler",
]

SkylineState = tuple[Point, ...]


def skyline_of(points: Iterable[Point]) -> list[Point]:
    """The maximal (non-dominated) tuples of a small point collection.

    Sorting by coordinate sum first means any dominator of a point
    precedes it, so one pass against the kept list suffices.
    """
    ordered = sorted(set(points), key=lambda p: (sum(p), p))
    kept: list[Point] = []
    for point in ordered:
        if not any(dominates(other, point) for other in kept):
            kept.append(point)
    return kept


def skyline_of_array(array: np.ndarray) -> np.ndarray:
    """Vectorized skyline of an ``(m, d)`` array (lower is better)."""
    array = np.asarray(array, dtype=float)
    if len(array) == 0:
        return array
    # Dominators must precede the points they dominate.  Sorting by the
    # coordinate sum almost ensures that, but floating addition can
    # collapse distinct sums (a + tiny == a), so break ties
    # lexicographically — a dominator is componentwise <= its victim, so
    # it also precedes it lexicographically.
    sums = array.sum(axis=1)
    keys = tuple(array[:, dim] for dim in range(array.shape[1] - 1, -1, -1))
    order = np.lexsort(keys + (sums,))
    data = array[order]
    kept_rows: list[np.ndarray] = []
    kept_matrix = np.empty((0, array.shape[1]))
    for row in data:
        if len(kept_rows):
            not_worse = np.all(kept_matrix <= row, axis=1)
            strictly = np.any(kept_matrix < row, axis=1)
            if np.any(not_worse & strictly):
                continue
        kept_rows.append(row)
        kept_matrix = np.vstack([kept_matrix, row]) if len(kept_rows) > 1 \
            else row[None, :]
    return np.array(kept_rows)


def k_skyband_of_array(array: np.ndarray, k: int, *,
                       maximize: bool = False) -> np.ndarray:
    """The k-skyband: tuples dominated by fewer than ``k`` others.

    The 1-skyband is the skyline.  The *max-oriented* k-skyband (higher
    values dominate) contains the top-k answer of every monotone
    increasing scoring function — the property SPEERTO's precomputation
    rests on (Section 2.1).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    array = np.asarray(array, dtype=float)
    if len(array) == 0:
        return array
    data = -array if maximize else array
    keep = []
    for i, row in enumerate(data):
        not_worse = np.all(data <= row, axis=1)
        strictly = np.any(data < row, axis=1)
        if int((not_worse & strictly).sum()) < k:
            keep.append(i)
    return array[keep]


def merge_skylines(first: Sequence[Point], second: Sequence[Point]
                   ) -> list[Point]:
    """Skyline of the union of two sets that are each already skylines.

    The all-pairs dominance test vectorizes across the two sides, which
    is what makes simulating skyline queries over hundreds of peers cheap
    (each peer merges already-reduced states, never raw collections).
    """
    first = [p for p in dict.fromkeys(first)]
    second = [p for p in dict.fromkeys(second) if p not in set(first)]
    if not first or not second:
        return sorted([*first, *second])
    a = np.asarray(first, dtype=float)
    b = np.asarray(second, dtype=float)
    # dominated[i, j] == True iff a[i] dominates b[j]
    le = a[:, None, :] <= b[None, :, :]
    lt = a[:, None, :] < b[None, :, :]
    a_dominates_b = le.all(axis=2) & lt.any(axis=2)
    b_dominates_a = (b[:, None, :] <= a[None, :, :]).all(axis=2) \
        & (b[:, None, :] < a[None, :, :]).any(axis=2)
    keep_a = ~b_dominates_a.any(axis=0)
    keep_b = ~a_dominates_b.any(axis=0)
    return sorted([p for p, k in zip(first, keep_a) if k]
                  + [p for p, k in zip(second, keep_b) if k])


def skyline_reference(array: np.ndarray,
                      constraint: Rect | None = None) -> list[Point]:
    """Centralized oracle: the (optionally constrained) skyline, sorted.

    The skyline is a set of *values*: duplicate tuples collapse, matching
    the set semantics of the distributed states.
    """
    array = np.asarray(array, dtype=float)
    if constraint is not None and len(array):
        inside = np.all((array >= constraint.lo) & (array < constraint.hi),
                        axis=1)
        array = array[inside]
    return sorted({as_point(row) for row in skyline_of_array(array)})


def distributed_skyline(
    initiator,
    dims: int,
    *,
    restriction: Region,
    r: int = 0,
    seeded: bool = True,
    strict: bool = True,
    constraint: Rect | None = None,
):
    """End-to-end distributed skyline from ``initiator``.

    With ``seeded`` (default) the query first routes to the peer owning
    the preference origin — where the most dominating tuples live, the
    same starting point SSP and DSL use — and ripples out from there with
    a warm partial skyline.  Pass ``constraint`` for a constrained skyline
    (the skyline among tuples inside the box).  Returns a
    :class:`~repro.net.context.QueryResult` whose ``answer`` is the sorted
    global skyline.
    """
    from ..core.framework import run_ripple
    from .drivers import run_seeded

    handler = SkylineHandler(dims, constraint=constraint)
    if not seeded:
        return run_ripple(initiator, handler, r,
                          restriction=restriction, strict=strict)
    return run_seeded(initiator, handler, r, restriction=restriction,
                      seed_point=handler.origin, strict=strict)


class SkylineHandler(QueryHandler):
    """RIPPLE callbacks for (optionally constrained) skyline queries.

    The unconstrained query carries no parameters (Section 5.1);
    ``origin`` is the preference origin used for link prioritization, the
    zero vector by default.  With a ``constraint`` box the query becomes
    the constrained skyline DSL processes (Section 2.2): the skyline of
    the tuples inside the box, with the box's lower-left corner as the
    natural origin and links outside the box pruned outright.
    """

    def __init__(self, dims: int, *, origin: Sequence[float] | None = None,
                 constraint: Rect | None = None):
        if dims <= 0:
            raise ValueError("dims must be positive")
        if constraint is not None and constraint.dims != dims:
            raise ValueError("constraint dimensionality mismatch")
        self.dims = dims
        self.constraint = constraint
        if origin is not None:
            self.origin: Point = tuple(float(v) for v in origin)
        elif constraint is not None:
            self.origin = constraint.lo
        else:
            self.origin = (0.0,) * dims

    # -- local skylines -----------------------------------------------------

    def _local_skyline(self, store: LocalStore) -> list[Point]:
        array = store.array
        if self.constraint is not None and len(array):
            inside = np.all((array >= self.constraint.lo)
                            & (array < self.constraint.hi), axis=1)
            array = array[inside]
        return [as_point(row) for row in skyline_of_array(array)]

    # -- states (Algorithms 10, 11, 13) -------------------------------------

    def initial_state(self) -> SkylineState:
        return ()

    def compute_local_state(self, store: LocalStore,
                            global_state: SkylineState) -> SkylineState:
        """Algorithm 10: local skyline points that survive the global view."""
        local = self._local_skyline(store)
        merged = set(merge_skylines(global_state, local))
        return tuple(sorted(p for p in local if p in merged))

    def compute_global_state(self, global_state: SkylineState,
                             local_state: SkylineState) -> SkylineState:
        """Algorithm 11: skyline of the received view plus local survivors."""
        return tuple(merge_skylines(global_state, local_state))

    def update_local_state(self, states: Sequence[SkylineState]) -> SkylineState:
        """Algorithm 13: skyline of the union of the received states."""
        merged: Sequence[Point] = ()
        for state in states:
            merged = merge_skylines(merged, state)
        return tuple(merged)

    # -- answers (Algorithm 12) ----------------------------------------------

    def compute_local_answer(self, store: LocalStore,
                             local_state: SkylineState) -> list[Point]:
        """The locally stored tuples among the state's survivors."""
        if not local_state:
            return []
        local = set(self._local_skyline(store))
        return [point for point in local_state if point in local]

    def finalize(self, answers: Sequence[Sequence[Point]]) -> list[Point]:
        return sorted(skyline_of(
            [point for answer in answers for point in answer]))

    # -- link decisions (Algorithms 14, 15) -----------------------------------

    def is_link_relevant(self, region: Region,
                         global_state: SkylineState) -> bool:
        if self.constraint is not None and not any(
                rect.intersects(self.constraint) for rect in region.cover()):
            return False
        return self._not_dominated(region, global_state)

    def _not_dominated(self, region: Region,
                       global_state: SkylineState) -> bool:
        """False iff known tuples dominate every reachable part of the region."""
        for rect in region.cover():
            if not any(rect.dominated_by(s) for s in global_state):
                return True
        return False

    def link_priority(self, region: Region) -> float:
        return min(mindist(self.origin, rect) for rect in region.cover())
