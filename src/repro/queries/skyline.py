"""Skyline query processing with RIPPLE (Section 5, Algorithms 10-15).

The abstract state is a *partial skyline*: a set of tuples none of which
dominates another, refined as more of the network is seen.  Lower values
are better on every dimension (Section 5.1); flip attributes beforehand
for max-oriented data (:func:`repro.data.nba.to_minimization`).

Pruning (Algorithm 14): a link is irrelevant when some already-known tuple
dominates its entire region.  Prioritization (Algorithm 15): regions
closer to the origin first, because tuples near the origin dominate the
most.

Kernel design (see docs/ALGORITHMS.md, "Kernel complexity & caching"):
the array kernels are sort-first and block-vectorized — candidates are
processed in chunks tested against the surviving skyline in one NumPy
dominance reduction, and survivors land in a preallocated buffer instead
of being re-copied per insertion.  The per-peer local skyline is cached
on the :class:`~repro.common.store.LocalStore` (keyed by constraint,
invalidated by store version), so one query reduces each peer's array at
most once and repeated queries over a static network not at all.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..common.geometry import Point, Rect, as_point, dominates, mindist
from ..common.store import LocalStore
from ..core.handler import QueryHandler
from ..core.regions import Region

__all__ = [
    "skyline_of",
    "skyline_of_array",
    "k_skyband_of_array",
    "merge_skylines",
    "skyline_reference",
    "SkylineHandler",
]

SkylineState = tuple[Point, ...]

#: Candidate rows folded into the survivor set per vectorized dominance
#: test.  Large enough to amortize NumPy call overhead, small enough that
#: the (block, survivors, dims) comparison tensor stays cache-friendly.
_BLOCK = 256


def skyline_of(points: Iterable[Point]) -> list[Point]:
    """The maximal (non-dominated) tuples of a small point collection.

    Sorting by coordinate sum first means any dominator of a point
    precedes it, so one pass against the kept list suffices.
    """
    ordered = sorted(set(points), key=lambda p: (sum(p), p))
    kept: list[Point] = []
    for point in ordered:
        if not any(dominates(other, point) for other in kept):
            kept.append(point)
    return kept


def _dominance_order(array: np.ndarray) -> np.ndarray:
    """A permutation placing every dominator before the points it dominates.

    Sorting by the coordinate sum almost ensures that, but floating
    addition can collapse distinct sums (a + tiny == a), so ties break
    lexicographically — a dominator is componentwise <= its victim, so it
    also precedes it lexicographically.
    """
    sums = array.sum(axis=1)
    keys = tuple(array[:, dim] for dim in range(array.shape[1] - 1, -1, -1))
    return np.lexsort(keys + (sums,))


def skyline_of_array(array: np.ndarray) -> np.ndarray:
    """Vectorized skyline of an ``(m, d)`` array (lower is better).

    Sort-first, block-filtered: candidates arrive in dominance order and
    each block is cleared against the surviving skyline in one vectorized
    dominance reduction, with survivors accumulating in a preallocated
    index buffer — O(m) bookkeeping total instead of the O(s^2) copying an
    incrementally re-stacked survivor matrix costs.  Exact duplicates are
    collapsed up front (and re-expanded at the end), which turns the
    dominance test into a single componentwise ``<=`` reduction: among
    distinct rows, ``all(a <= b)`` already implies strict improvement
    somewhere, so the separate ``<`` tensor of the textbook test vanishes.
    """
    array = np.asarray(array, dtype=float)
    if len(array) == 0:
        return array
    data = array[_dominance_order(array)]
    # Collapse exact duplicates (adjacent after sorting): `counts` re-expands
    # surviving rows at the end, preserving the duplicate-keeping semantics.
    distinct = np.empty(len(data), dtype=bool)
    distinct[0] = True
    np.any(data[1:] != data[:-1], axis=1, out=distinct[1:])
    if distinct.all():
        uniq, counts = data, None
    else:
        starts = np.flatnonzero(distinct)
        counts = np.diff(np.append(starts, len(data)))
        uniq = data[starts]
    n = len(uniq)
    kept = np.empty(n, dtype=np.intp)
    count = 0
    live = np.arange(n)
    while len(live):
        # The head of the live queue was not eliminated by any confirmed
        # skyline point, and sorting put every potential dominator first —
        # so after one pairwise pass within the block, its survivors are
        # confirmed skyline members.  (Transitivity makes rows that are
        # themselves dominated valid witnesses, so no iteration is needed;
        # each row trivially satisfies <= with itself, hence `> 1`.)
        index = live[:_BLOCK]
        tail = live[_BLOCK:]
        block = uniq[index]
        if len(block) > 1:
            le = (block[:, None, :] <= block[None, :, :]).all(2)
            alive = le.sum(axis=0) <= 1
            block, index = block[alive], index[alive]
        kept[count : count + len(index)] = index
        count += len(index)
        # Prune the tail against the new skyline points: a dominated row
        # is dropped the first time a dominator confirms, so it is never
        # compared again — the practical win over re-testing every
        # candidate against the full survivor set.
        if len(tail) and len(block):
            rest = uniq[tail]
            dominated = (block[None, :, :] <= rest[:, None, :]).all(2).any(1)
            live = tail[~dominated]
        else:
            live = tail
    kept = kept[:count]
    if counts is None:
        return uniq[kept].copy()
    return np.repeat(uniq[kept], counts[kept], axis=0)


def k_skyband_of_array(array: np.ndarray, k: int, *,
                       maximize: bool = False) -> np.ndarray:
    """The k-skyband: tuples dominated by fewer than ``k`` others.

    The 1-skyband is the skyline.  The *max-oriented* k-skyband (higher
    values dominate) contains the top-k answer of every monotone
    increasing scoring function — the property SPEERTO's precomputation
    rests on (Section 2.1).  Dominance counts are computed block-wise
    (one ``(block, m, d)`` comparison tensor per chunk), keeping the
    all-pairs scan vectorized at bounded memory.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    array = np.asarray(array, dtype=float)
    if len(array) == 0:
        return array
    data = -array if maximize else array
    # Dominance counts only depend on the row's value, so compute them per
    # distinct row, weighting each candidate dominator by its multiplicity:
    # #dominators(u) = sum_{v <= u} count(v) - count(u), the subtraction
    # removing u itself and its exact duplicates (componentwise <= but not
    # strictly better anywhere).
    uniq, inverse, counts = np.unique(data, axis=0, return_inverse=True,
                                      return_counts=True)
    weights = counts.astype(np.int64)
    dominators = np.empty(len(uniq), dtype=np.int64)
    for start in range(0, len(uniq), _BLOCK):
        stop = min(start + _BLOCK, len(uniq))
        block = uniq[start:stop]
        # np.unique sorts rows lexicographically, and a dominator of a
        # distinct row is lexicographically smaller — so only the prefix
        # up to the block's end can contain dominators, halving the
        # all-pairs tensor on average.
        le = (uniq[None, :stop, :] <= block[:, None, :]).all(axis=2)
        dominators[start:stop] = le @ weights[:stop]
    dominators -= weights
    return array[(dominators < k)[inverse]]


def merge_skylines(*collections: Sequence[Point]) -> list[Point]:
    """Skyline of the union of point collections, each an antichain.

    Accepts any number of collections (every caller's inputs are already
    individually dominance-free: local skylines and previously merged
    states), so a peer folding the states of all its children pays one
    vectorized union-skyline instead of a chain of pairwise merges.

    Because each input is an antichain, dominance can only occur *across*
    collections, and among deduplicated rows componentwise ``<=`` already
    implies strict dominance.  When the cross-collection comparison work
    is well below the all-pairs work of a union reduction — the common
    per-hop shape of one large global state against one small local
    skyline — each collection is tested directly against the others and
    the surviving tuples pass through without an ndarray round-trip.
    Otherwise (many similar-sized parts) one union-skyline kernel call
    wins and handles the general case.
    """
    seen: set[Point] = set()
    groups: list[list[Point]] = []
    for collection in collections:
        fresh = []
        for point in collection:
            if point not in seen:
                seen.add(point)
                fresh.append(point)
        if fresh:
            groups.append(fresh)
    total = len(seen)
    if total <= 1 or len(groups) == 1:
        return sorted(seen)
    cross = sum(len(group) * (total - len(group)) for group in groups)
    if 3 * cross >= total * total:
        union = [point for group in groups for point in group]
        survivors = skyline_of_array(np.asarray(union, dtype=float))
        return sorted(as_point(row) for row in survivors)
    arrays = [np.asarray(group, dtype=float) for group in groups]
    kept: list[Point] = []
    for i, (group, block) in enumerate(zip(groups, arrays)):
        rest = [other for j, other in enumerate(arrays) if j != i]
        other = rest[0] if len(rest) == 1 else np.concatenate(rest)
        dominated = (other[None, :, :] <= block[:, None, :]).all(2).any(1)
        kept.extend(point for point, dead in zip(group, dominated)
                    if not dead)
    return sorted(kept)


def skyline_reference(array: np.ndarray,
                      constraint: Rect | None = None) -> list[Point]:
    """Centralized oracle: the (optionally constrained) skyline, sorted.

    The skyline is a set of *values*: duplicate tuples collapse, matching
    the set semantics of the distributed states.
    """
    array = np.asarray(array, dtype=float)
    if constraint is not None and len(array):
        inside = np.all((array >= constraint.lo) & (array < constraint.hi),
                        axis=1)
        array = array[inside]
    return sorted({as_point(row) for row in skyline_of_array(array)})


def distributed_skyline(
    initiator,
    dims: int,
    *,
    restriction: Region,
    r: int = 0,
    seeded: bool = True,
    strict: bool = True,
    constraint: Rect | None = None,
    sink=None,
    executor=None,
    cache=None,
):
    """End-to-end distributed skyline from ``initiator``.

    With ``seeded`` (default) the query first routes to the peer owning
    the preference origin — where the most dominating tuples live, the
    same starting point SSP and DSL use — and ripples out from there with
    a warm partial skyline.  Pass ``constraint`` for a constrained skyline
    (the skyline among tuples inside the box).  ``cache`` (a
    :class:`~repro.net.resultcache.CacheDirectory`) enables exact and
    semantic answer reuse; it requires the seeded driver.  Returns a
    :class:`~repro.net.context.QueryResult` whose ``answer`` is the sorted
    global skyline.
    """
    from ..core.framework import run_ripple
    from .drivers import run_seeded

    handler = SkylineHandler(dims, constraint=constraint)
    if not seeded:
        if cache is not None:
            raise ValueError("answer caching requires the seeded driver")
        return run_ripple(initiator, handler, r,
                          restriction=restriction, strict=strict, sink=sink,
                          executor=executor)
    return run_seeded(initiator, handler, r, restriction=restriction,
                      seed_point=handler.origin, strict=strict, sink=sink,
                      executor=executor, cache=cache)


class SkylineHandler(QueryHandler):
    """RIPPLE callbacks for (optionally constrained) skyline queries.

    The unconstrained query carries no parameters (Section 5.1);
    ``origin`` is the preference origin used for link prioritization, the
    zero vector by default.  With a ``constraint`` box the query becomes
    the constrained skyline DSL processes (Section 2.2): the skyline of
    the tuples inside the box, with the box's lower-left corner as the
    natural origin and links outside the box pruned outright.
    """

    def __init__(self, dims: int, *, origin: Sequence[float] | None = None,
                 constraint: Rect | None = None):
        if dims <= 0:
            raise ValueError("dims must be positive")
        if constraint is not None and constraint.dims != dims:
            raise ValueError("constraint dimensionality mismatch")
        self.dims = dims
        self.constraint = constraint
        if origin is not None:
            self.origin: Point = tuple(float(v) for v in origin)
        elif constraint is not None:
            self.origin = constraint.lo
        else:
            self.origin = (0.0,) * dims

    # -- local skylines -----------------------------------------------------

    def _local_skyline(self, store: LocalStore) -> SkylineState:
        """The peer's local (constrained) skyline, cached on the store.

        Both the local state (Algorithm 10) and the local answer
        (Algorithm 12) need this reduction; the store memoizes it per
        constraint and store version, so each peer runs the kernel at most
        once per query — and not at all on re-queries of a static network.
        """
        return store.cached(("local-skyline", self.constraint),
                            lambda: self._compute_local_skyline(store))

    def _compute_local_skyline(self, store: LocalStore) -> SkylineState:
        array = store.array
        if self.constraint is not None and len(array):
            inside = np.all((array >= self.constraint.lo)
                            & (array < self.constraint.hi), axis=1)
            array = array[inside]
        return tuple(as_point(row) for row in skyline_of_array(array))

    # -- states (Algorithms 10, 11, 13) -------------------------------------

    def initial_state(self) -> SkylineState:
        return ()

    def compute_local_state(self, store: LocalStore,
                            global_state: SkylineState) -> SkylineState:
        """Algorithm 10: local skyline points that survive the global view."""
        local = self._local_skyline(store)
        merged = set(merge_skylines(global_state, local))
        return tuple(sorted(p for p in local if p in merged))

    def compute_global_state(self, global_state: SkylineState,
                             local_state: SkylineState) -> SkylineState:
        """Algorithm 11: skyline of the received view plus local survivors."""
        return tuple(merge_skylines(global_state, local_state))

    def update_local_state(self, states: Sequence[SkylineState]) -> SkylineState:
        """Algorithm 13: skyline of the union of the received states."""
        return tuple(merge_skylines(*states))

    # -- answers (Algorithm 12) ----------------------------------------------

    def compute_local_answer(self, store: LocalStore,
                             local_state: SkylineState) -> list[Point]:
        """The locally stored tuples among the state's survivors."""
        if not local_state:
            return []
        local = set(self._local_skyline(store))
        return [point for point in local_state if point in local]

    def finalize(self, answers: Sequence[Sequence[Point]]) -> list[Point]:
        return sorted(skyline_of(
            [point for answer in answers for point in answer]))

    # -- link decisions (Algorithms 14, 15) -----------------------------------

    def is_link_relevant(self, region: Region,
                         global_state: SkylineState) -> bool:
        if self.constraint is not None and not any(
                rect.intersects(self.constraint) for rect in region.cover()):
            return False
        return self._not_dominated(region, global_state)

    def _not_dominated(self, region: Region,
                       global_state: SkylineState) -> bool:
        """False iff known tuples dominate every reachable part of the region."""
        for rect in region.cover():
            if not any(rect.dominated_by(s) for s in global_state):
                return True
        return False

    def link_priority(self, region: Region) -> float:
        return min(mindist(self.origin, rect) for rect in region.cover())
