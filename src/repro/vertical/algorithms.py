"""Vertical top-k algorithms: FA, TA, TPUT, and approximate KLEE.

The lineage Section 2.1 sketches:

* **FA** (Fagin's Algorithm [6]) — sorted-access every list in lockstep
  until ``k`` objects have been seen in *all* lists; random-access the
  partially seen rest; the top-k is among them.
* **TA** (Threshold Algorithm [6]) — after each lockstep row, fully
  resolve every newly seen object by random access and stop as soon as
  ``k`` resolved scores reach the row threshold ``f(v_1 .. v_m)``;
  instance-optimal.
* **TPUT** (Three-Phase Uniform Threshold [4]) — three round-trips
  instead of object-at-a-time interaction: fetch top-``k`` prefixes,
  lower-bound the k-th score by partial sums, fetch everything above
  ``tau / m`` from each list, then random-access the candidates.
* **KLEE** [11] — approximate two-phase variant: like TPUT but skipping
  the final exact resolution, scoring candidates by their (optimistic)
  upper bounds; trades a bounded error for one round-trip less.

All operate on weighted sums with non-negative weights (monotone
aggregation).  Costs are reported as sorted/random access counts plus the
number of communication rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import AccessStats, VerticalNetwork

__all__ = ["VerticalResult", "fagin", "threshold_algorithm", "tput", "klee"]


@dataclass(frozen=True)
class VerticalResult:
    """Top-k ``(score, object_id)`` pairs plus the access cost."""

    answer: list[tuple[float, int]]
    stats: AccessStats


def _weights(network: VerticalNetwork, weights) -> np.ndarray:
    weights = (np.ones(network.attributes)
               if weights is None else np.asarray(weights, dtype=float))
    if len(weights) != network.attributes:
        raise ValueError("one weight per attribute required")
    if (weights < 0).any():
        raise ValueError("monotone aggregation needs non-negative weights")
    return weights


def _rank(network: VerticalNetwork, objects, weights, k) -> list:
    scored = sorted(((network.score(obj, weights), obj) for obj in objects),
                    key=lambda pair: (-pair[0], pair[1]))
    return [(score, obj) for score, obj in scored[:k]]


def fagin(network: VerticalNetwork, k: int, weights=None) -> VerticalResult:
    """Fagin's Algorithm: lockstep until k objects are seen everywhere."""
    weights = _weights(network, weights)
    stats = AccessStats()
    seen_in: dict[int, int] = {}
    fully_seen = 0
    depth = 0
    while fully_seen < k and depth < network.objects:
        stats.rounds += 1
        for peer in network.peers:
            pair = peer.sorted_access(depth, stats)
            if pair is None:
                continue
            obj, _ = pair
            seen_in[obj] = seen_in.get(obj, 0) + 1
            if seen_in[obj] == network.attributes:
                fully_seen += 1
        depth += 1
    # resolve every partially seen object by random access
    stats.rounds += 1
    for obj, count in seen_in.items():
        if count < network.attributes:
            for peer in network.peers:
                peer.random_access(obj, stats)
    return VerticalResult(_rank(network, seen_in, weights, k), stats)


def threshold_algorithm(network: VerticalNetwork, k: int,
                        weights=None) -> VerticalResult:
    """TA: stop once k resolved objects reach the row threshold."""
    weights = _weights(network, weights)
    stats = AccessStats()
    resolved: dict[int, float] = {}
    depth = 0
    while depth < network.objects:
        stats.rounds += 1
        row_values = []
        for peer in network.peers:
            pair = peer.sorted_access(depth, stats)
            if pair is None:
                row_values.append(0.0)
                continue
            obj, value = pair
            row_values.append(value)
            if obj not in resolved:
                score = sum(
                    w * (value if p is peer else p.random_access(obj, stats))
                    for p, w in zip(network.peers, weights))
                resolved[obj] = score
        threshold = float(np.dot(weights, row_values))
        top = sorted(resolved.values(), reverse=True)[:k]
        if len(top) >= k and top[-1] >= threshold:
            break
        depth += 1
    return VerticalResult(_rank(network, resolved, weights, k), stats)


def tput(network: VerticalNetwork, k: int, weights=None) -> VerticalResult:
    """TPUT: three uniform-threshold phases, exact answer."""
    weights = _weights(network, weights)
    stats = AccessStats()

    # Phase 1: top-k prefix of each list; lower-bound the k-th score.
    partial: dict[int, float] = {}
    for peer, w in zip(network.peers, weights):
        for obj, value in peer.sorted_prefix(k, stats):
            partial[obj] = partial.get(obj, 0.0) + w * value
    stats.rounds += 1
    tau = sorted(partial.values(), reverse=True)[:k][-1] if partial else 0.0

    # Phase 2: fetch everything with attribute value >= tau / (m * w).
    positive = [(peer, w) for peer, w in zip(network.peers, weights)
                if w > 0]
    candidates: dict[int, dict[int, float]] = {}
    for peer, w in positive:
        per_list = tau / (len(positive) * w)
        for obj, value in peer.above_threshold(per_list, stats):
            candidates.setdefault(obj, {})[peer.attribute] = value
    stats.rounds += 1

    # Refine: an object can still make the top-k only if its upper bound
    # (known values plus per-list thresholds for the unknown) reaches tau.
    survivors = []
    for obj, known in candidates.items():
        upper = sum(w * known.get(peer.attribute,
                                  tau / (len(positive) * w))
                    for peer, w in positive)
        if upper >= tau:
            survivors.append(obj)

    # Phase 3: random-access the survivors' missing attributes.
    for obj in survivors:
        known = candidates[obj]
        for peer in network.peers:
            if peer.attribute not in known:
                peer.random_access(obj, stats)
    stats.rounds += 1
    return VerticalResult(_rank(network, survivors, weights, k), stats)


def klee(network: VerticalNetwork, k: int, weights=None,
         *, prefix_factor: int = 3) -> VerticalResult:
    """KLEE-style approximate top-k in two round-trips.

    Phase 1 fetches a deeper prefix (``prefix_factor * k``) from each
    list; phase 2 ranks the gathered candidates by *optimistic* scores,
    substituting each list's last seen value for unknown attributes — no
    random accesses at all.  The answer is approximate; the guarantee is
    that every reported score upper-bounds the true score by at most the
    sum of the lists' prefix tails.
    """
    weights = _weights(network, weights)
    stats = AccessStats()
    known: dict[int, dict[int, float]] = {}
    tails = np.zeros(network.attributes)
    for peer, w in zip(network.peers, weights):
        prefix = peer.sorted_prefix(prefix_factor * k, stats)
        for obj, value in prefix:
            known.setdefault(obj, {})[peer.attribute] = value
        tails[peer.attribute] = prefix[-1][1] if prefix else 0.0
    stats.rounds += 2
    estimates = []
    for obj, values in known.items():
        estimate = sum(w * values.get(j, tails[j])
                       for j, w in enumerate(weights))
        estimates.append((estimate, obj))
    estimates.sort(key=lambda pair: (-pair[0], pair[1]))
    return VerticalResult(estimates[:k], stats)
