"""The vertically distributed setting of Section 2.1.

In the vertical variant of distributed top-k, each peer maintains *all*
tuples but stores the values of a single attribute, kept as a list sorted
descending by value.  Middleware algorithms (TA, FA, TPUT, KLEE) interact
with attribute peers through two primitives whose counts are the
classical cost metrics:

* **sorted access** — the next ``(object, value)`` pair in score order;
* **random access** — the value of a given object.

RIPPLE targets the horizontal setting, but the paper's related work
defines these algorithms as the baseline landscape, so the reproduction
includes them; they also serve as reference implementations for the
library's users who face vertical partitionings.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AttributePeer", "VerticalNetwork", "AccessStats"]


class AccessStats:
    """Cost ledger: the classical middleware access counts."""

    def __init__(self) -> None:
        self.sorted_accesses = 0
        self.random_accesses = 0
        self.rounds = 0

    @property
    def total_accesses(self) -> int:
        return self.sorted_accesses + self.random_accesses

    def __repr__(self) -> str:
        return (f"AccessStats(sorted={self.sorted_accesses}, "
                f"random={self.random_accesses}, rounds={self.rounds})")


class AttributePeer:
    """One vertical peer: a single attribute of every object, sorted."""

    def __init__(self, attribute: int, values: np.ndarray):
        self.attribute = attribute
        self._values = np.asarray(values, dtype=float)
        self._order = np.argsort(-self._values, kind="stable")

    def __len__(self) -> int:
        return len(self._values)

    def sorted_access(self, rank: int, stats: AccessStats
                      ) -> tuple[int, float] | None:
        """The rank-th best ``(object_id, value)``, or None past the end."""
        if rank >= len(self._order):
            return None
        stats.sorted_accesses += 1
        obj = int(self._order[rank])
        return obj, float(self._values[obj])

    def sorted_prefix(self, depth: int, stats: AccessStats
                      ) -> list[tuple[int, float]]:
        """The best ``depth`` pairs (bulk sorted access)."""
        depth = min(depth, len(self._order))
        stats.sorted_accesses += depth
        return [(int(obj), float(self._values[obj]))
                for obj in self._order[:depth]]

    def above_threshold(self, threshold: float, stats: AccessStats
                        ) -> list[tuple[int, float]]:
        """Every pair with value >= threshold (TPUT's phase-two scan)."""
        out = []
        for obj in self._order:
            value = float(self._values[obj])
            if value < threshold:
                break
            stats.sorted_accesses += 1
            out.append((int(obj), value))
        return out

    def random_access(self, obj: int, stats: AccessStats) -> float:
        stats.random_accesses += 1
        return float(self._values[obj])


class VerticalNetwork:
    """A set of attribute peers over one object collection."""

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] < 2:
            raise ValueError("need an (objects, >=2 attributes) matrix")
        self.data = data
        self.peers = [AttributePeer(j, data[:, j])
                      for j in range(data.shape[1])]

    @property
    def objects(self) -> int:
        return self.data.shape[0]

    @property
    def attributes(self) -> int:
        return self.data.shape[1]

    def score(self, obj: int, weights: np.ndarray) -> float:
        return float(self.data[obj] @ weights)

    def reference_topk(self, k: int, weights) -> list[tuple[float, int]]:
        """Centralized oracle: ``(score, object_id)`` pairs, best first."""
        weights = np.asarray(weights, dtype=float)
        scores = self.data @ weights
        order = np.lexsort((np.arange(len(scores)), -scores))
        return [(float(scores[i]), int(i)) for i in order[:k]]
