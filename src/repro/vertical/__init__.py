"""Vertically distributed top-k (the Section 2.1 baseline lineage)."""

from .algorithms import VerticalResult, fagin, klee, threshold_algorithm, tput
from .network import AccessStats, AttributePeer, VerticalNetwork

__all__ = [
    "AccessStats",
    "AttributePeer",
    "VerticalNetwork",
    "VerticalResult",
    "fagin",
    "klee",
    "threshold_algorithm",
    "tput",
]
