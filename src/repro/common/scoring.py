"""Scoring functions for top-k queries.

Section 4 of the paper requires a *unimodal* scoring function ``f`` (a
function with a unique local maximum; every monotone function qualifies)
together with an upper bound ``f^+`` over a region: the best score any
tuple inside the region could possibly attain.  ``f^+`` drives both link
pruning (Algorithm 8) and link prioritization (Algorithm 9).

Scores are *maximized*: the top-k answer holds the ``k`` tuples of highest
score.  Every implementation is vectorized over NumPy arrays so that peers
can scan their local store in bulk.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from .geometry import Point, Rect, mindist

__all__ = ["ScoringFunction", "LinearScore", "NearestScore"]


class ScoringFunction(ABC):
    """A unimodal scoring function with a per-region upper bound."""

    @abstractmethod
    def score(self, point: Sequence[float]) -> float:
        """Score of a single tuple (higher is better)."""

    @abstractmethod
    def score_batch(self, array: np.ndarray) -> np.ndarray:
        """Scores of an ``(m, d)`` array of tuples, as an ``(m,)`` array."""

    @abstractmethod
    def upper_bound(self, rect: Rect) -> float:
        """The paper's ``f^+``: max possible score of any tuple in ``rect``."""

    @abstractmethod
    def peak(self, rect: Rect) -> Point:
        """The point of ``rect`` where the (unimodal) score is maximal.

        Used by the seeded drivers to decide where a top-k query should
        start processing.
        """


class LinearScore(ScoringFunction):
    """Weighted sum ``f(t) = sum_i w_i * t_i``.

    The classic monotone top-k scoring function (e.g. aggregating NBA
    per-game statistics).  ``f^+`` is attained at the corner of the region
    selected by the signs of the weights.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        self.weights = tuple(float(w) for w in weights)
        self._w = np.asarray(self.weights, dtype=float)
        self._maximize = tuple(w >= 0 for w in self.weights)

    def score(self, point: Sequence[float]) -> float:
        return float(np.dot(self._w, np.asarray(point, dtype=float)))

    def score_batch(self, array: np.ndarray) -> np.ndarray:
        return np.asarray(array, dtype=float) @ self._w

    def upper_bound(self, rect: Rect) -> float:
        return self.score(rect.corner(self._maximize))

    def peak(self, rect: Rect) -> Point:
        return rect.corner(self._maximize)

    def __repr__(self) -> str:
        return f"LinearScore({list(self.weights)})"


class NearestScore(ScoringFunction):
    """Proximity score ``f(t) = -||t - q||_p``: top-k = k-nearest-neighbors.

    Unimodal but not monotone — it peaks at the query point ``q`` — which
    exercises the framework beyond corner-evaluated bounds: ``f^+`` over a
    region is ``-mindist(q, region)``.
    """

    def __init__(self, query: Sequence[float], p: float = 2) -> None:
        self.query: Point = tuple(float(v) for v in query)
        self.p = p
        self._q = np.asarray(self.query, dtype=float)

    def score(self, point: Sequence[float]) -> float:
        diff = np.abs(np.asarray(point, dtype=float) - self._q)
        return -float(np.linalg.norm(diff, ord=self.p))

    def score_batch(self, array: np.ndarray) -> np.ndarray:
        diff = np.asarray(array, dtype=float) - self._q
        return -np.linalg.norm(diff, ord=self.p, axis=1)

    def upper_bound(self, rect: Rect) -> float:
        return -mindist(self.query, rect, self.p)

    def peak(self, rect: Rect) -> Point:
        return rect.clamp(self.query)

    def __repr__(self) -> str:
        return f"NearestScore(q={list(self.query)}, p={self.p})"
