"""Per-peer tuple storage.

Each peer of a DHT stores the tuples whose keys fall inside its zone.  The
store keeps them in a single ``(m, d)`` NumPy array so local scans (top-k,
skyline seeds, best-phi) are vectorized, while everything that crosses the
simulated network remains plain tuples (see :mod:`repro.common.geometry`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .geometry import Point, Rect, as_point
from .scoring import ScoringFunction

__all__ = ["LocalStore"]

_GROWTH = 1.6


class LocalStore:
    """A grow-only columnar buffer of d-dimensional tuples.

    The store over-allocates (amortized O(1) inserts) and exposes the live
    prefix through :attr:`array`.  Removal happens only wholesale, when a
    zone splits or merges (:meth:`extract`, :meth:`take_all`).
    """

    def __init__(self, dims: int, points: Iterable[Sequence[float]] = ()):
        if dims <= 0:
            raise ValueError("dims must be positive")
        self.dims = dims
        self._buf = np.empty((8, dims), dtype=float)
        self._size = 0
        for point in points:
            self.insert(point)

    # -- capacity -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def array(self) -> np.ndarray:
        """Read-only view of the live tuples, shape ``(len(self), dims)``."""
        view = self._buf[: self._size]
        view.flags.writeable = False
        return view

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= len(self._buf):
            return
        capacity = max(needed, int(len(self._buf) * _GROWTH) + 1)
        buf = np.empty((capacity, self.dims), dtype=float)
        buf[: self._size] = self._buf[: self._size]
        self._buf = buf

    # -- mutation -----------------------------------------------------------

    def insert(self, point: Sequence[float]) -> None:
        if len(point) != self.dims:
            raise ValueError(f"expected {self.dims}-d point, got {len(point)}-d")
        self._reserve(1)
        self._buf[self._size] = point
        self._size += 1

    def bulk_load(self, array: np.ndarray) -> None:
        array = np.asarray(array, dtype=float)
        if array.ndim != 2 or array.shape[1] != self.dims:
            raise ValueError(f"expected (m, {self.dims}) array, got {array.shape}")
        self._reserve(len(array))
        self._buf[self._size : self._size + len(array)] = array
        self._size += len(array)

    def extract(self, rect: Rect) -> np.ndarray:
        """Remove and return all tuples inside ``rect`` (half-open).

        Used when a zone splits: the tuples of the new sibling zone move to
        the joining peer.
        """
        live = self._buf[: self._size]
        inside = np.all((live >= rect.lo) & (live < rect.hi), axis=1)
        moved = live[inside].copy()
        kept = live[~inside]
        self._buf[: len(kept)] = kept
        self._size = len(kept)
        return moved

    def take_all(self) -> np.ndarray:
        """Remove and return every tuple (zone merge on peer departure)."""
        out = self._buf[: self._size].copy()
        self._size = 0
        return out

    # -- scans --------------------------------------------------------------

    def iter_points(self) -> Iterator[Point]:
        for row in self.array:
            yield as_point(row)

    def top_scoring(
        self,
        fn: ScoringFunction,
        limit: int,
        *,
        above: float = -np.inf,
    ) -> list[tuple[float, Point]]:
        """Up to ``limit`` best local tuples with score >= ``above``.

        Returns ``(score, tuple)`` pairs in descending score order — the
        local retrieval primitive of Algorithm 4.
        """
        if self._size == 0 or limit <= 0:
            return []
        scores = fn.score_batch(self.array)
        eligible = np.flatnonzero(scores >= above)
        if len(eligible) == 0:
            return []
        order = eligible[np.argsort(-scores[eligible], kind="stable")][:limit]
        return [(float(scores[i]), as_point(self._buf[i])) for i in order]

    def scoring_at_least(self, fn: ScoringFunction, tau: float) -> list[Point]:
        """Every local tuple with score >= ``tau`` (Algorithm 6)."""
        if self._size == 0:
            return []
        scores = fn.score_batch(self.array)
        return [as_point(self._buf[i]) for i in np.flatnonzero(scores >= tau)]
