"""Per-peer tuple storage.

Each peer of a DHT stores the tuples whose keys fall inside its zone.  The
store keeps them in a single ``(m, d)`` NumPy array so local scans (top-k,
skyline seeds, best-phi) are vectorized, while everything that crosses the
simulated network remains plain tuples (see :mod:`repro.common.geometry`).

For fault tolerance the store is also the unit of *replication*: a
:class:`Replica` is a version-stamped mirror of another peer's store,
installed on structurally chosen neighbors by
:class:`~repro.overlays.replication.ReplicaDirectory`.  The mirror rides
the same consistency machinery as the computation cache — every mutation
bumps :attr:`LocalStore.version`, and :meth:`Replica.refresh` re-snapshots
exactly when the owner's version moved, so a replica is never silently
stale and never copied needlessly (split/merge handoffs during churn bump
the version too, invalidating the mirrors of both stores involved).

Beyond raw storage the store is also the *per-peer computation cache*: a
rank query makes a peer reduce its local array more than once (the local
state and the local answer both derive from the same reduction), and
benchmark sweeps issue many queries against an unchanging network.  Both
reuse patterns are served by :meth:`LocalStore.cached`, a version-keyed
memo table: every mutation bumps :attr:`LocalStore.version` and drops all
cached entries, so a cached value is always consistent with the live
array.  The built-in :meth:`top_scoring` / :meth:`scoring_at_least` scans
share one cached *score index* (scores plus descending sort order) per
scoring function.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence, TypeVar

import numpy as np

from .geometry import Point, Rect, as_point
from .scoring import ScoringFunction

__all__ = ["LocalStore", "Replica"]

_GROWTH = 1.6

#: Entries kept per store before the memo table is wiped wholesale.  The
#: cap bounds memory on static networks serving many distinct queries
#: (each scoring function / handler is its own key); it is far above what
#: a single query needs, so the per-query double-work elimination is never
#: affected.
_CACHE_CAP = 64

_T = TypeVar("_T")


class LocalStore:
    """A grow-only columnar buffer of d-dimensional tuples.

    The store over-allocates (amortized O(1) inserts) and exposes the live
    prefix through :attr:`array`.  Removal happens only wholesale, when a
    zone splits or merges (:meth:`extract`, :meth:`take_all`).
    """

    #: Class-wide switch for the computation cache; benchmark harnesses
    #: flip it off to measure the uncached (pre-cache) behaviour.
    cache_enabled: bool = True

    #: True for arena-backed read-only views (:meth:`view_of`): the buffer
    #: is a slice of a shared substrate array, so mutation is forbidden.
    _frozen: bool = False

    def __init__(self, dims: int, points: Iterable[Sequence[float]] = ()) -> None:
        if dims <= 0:
            raise ValueError("dims must be positive")
        self.dims = dims
        self._buf = np.empty((8, dims), dtype=float)
        self._size = 0
        self._version = 0
        self._cache: dict[Hashable, Any] = {}
        self._listeners: list[Callable[[], None]] = []
        self.cache_hits = 0
        self.cache_misses = 0
        for point in points:
            self.insert(point)

    @classmethod
    def view_of(cls, array: np.ndarray) -> "LocalStore":
        """A zero-copy read-only store over an ``(m, d)`` array slice.

        The arena substrate keeps every peer's tuples as one row range of
        a shared array; this constructor wraps such a range in the full
        store API (kernels, score index, computation cache) without
        copying.  The view is frozen: mutators raise, and the underlying
        rows are marked non-writeable.
        """
        array = np.asarray(array, dtype=float)
        if array.ndim != 2 or array.shape[1] == 0:
            raise ValueError(f"expected a (m, d) array, got shape {array.shape}")
        store = cls.__new__(cls)
        store.dims = array.shape[1]
        # A private view: freezing its writeable flag never mutates the
        # caller's array object.
        store._buf = array.view()
        store._buf.flags.writeable = False
        store._size = len(array)
        store._version = 0
        store._cache = {}
        store._listeners = []
        store.cache_hits = 0
        store.cache_misses = 0
        store._frozen = True
        return store

    # -- capacity -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def array(self) -> np.ndarray:
        """Read-only view of the live tuples, shape ``(len(self), dims)``."""
        view = self._buf[: self._size]
        view.flags.writeable = False
        return view

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= len(self._buf):
            return
        capacity = max(needed, int(len(self._buf) * _GROWTH) + 1)
        buf = np.empty((capacity, self.dims), dtype=float)
        buf[: self._size] = self._buf[: self._size]
        self._buf = buf

    # -- computation cache --------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter.

        Bumped by every mutation (:meth:`insert`, :meth:`bulk_load`,
        :meth:`extract`, :meth:`take_all`); cached results are valid for
        exactly one version.
        """
        return self._version

    def _invalidate(self) -> None:
        self._version += 1
        if self._cache:
            self._cache.clear()
        for listener in self._listeners:
            listener()

    def subscribe(self, listener: Callable[[], None]) -> Callable[[], None]:
        """Register ``listener`` to fire after every version bump.

        The callback runs synchronously inside the mutating call, after
        the version moved and the computation cache was dropped — the
        hook :class:`~repro.net.resultcache.CacheDirectory` uses for
        push-style exact invalidation of cached query answers.  Returns
        the listener so subscribing can be inlined; duplicate
        subscriptions fire once per subscription.
        """
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Callable[[], None]) -> None:
        """Remove one earlier subscription of ``listener`` (no-op when
        absent), so directories tracking departed peers can detach."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def cached(self, key: Hashable, compute: Callable[[], _T]) -> _T:
        """Memoize ``compute()`` against the current store version.

        ``key`` identifies the computation (e.g. a query constraint or a
        scoring function); the entry is dropped as soon as the store
        mutates, so callers never observe stale results.  Cached values
        are shared — treat them as immutable.
        """
        if not self.cache_enabled:
            return compute()
        try:
            value = self._cache[key]
        except KeyError:
            self.cache_misses += 1
            if len(self._cache) >= _CACHE_CAP:
                self._cache.clear()
            value = self._cache[key] = compute()
        else:
            self.cache_hits += 1
        return value

    def prime(self, key: Hashable, value: Any) -> None:
        """Seed the computation cache with an externally computed value.

        The batched wavefront kernels (:mod:`repro.overlays.arena`)
        evaluate one grouped reduction for every store touched in an
        expansion wave, then *prime* each store's cache with its slice of
        the result; the handlers subsequently call :meth:`cached` (via
        ``top_scoring`` / the local-skyline memo) and hit the primed
        entry instead of recomputing per peer.  The caller guarantees the
        value equals what ``compute()`` would have produced for the
        current version — bit for bit, since primed results flow into
        answers.  No-op when caching is disabled or the key is already
        present; never bumps hit/miss counters (those track the scalar
        protocol).
        """
        if not self.cache_enabled or key in self._cache:
            return
        if len(self._cache) >= _CACHE_CAP:
            self._cache.clear()
        self._cache[key] = value

    def _score_index(self, fn: ScoringFunction
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(scores, order, sorted_desc)`` for ``fn``, cached per version.

        ``order`` is the stable descending argsort of ``scores`` (ties
        keep insertion order) and ``sorted_desc = scores[order]``, which
        turns every threshold scan into a binary search over a prefix.
        """
        def compute() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            scores = fn.score_batch(self.array)
            order = np.argsort(-scores, kind="stable")
            return scores, order, scores[order]

        return self.cached(("score-index", fn), compute)

    # -- mutation -----------------------------------------------------------

    def _writable(self) -> None:
        if self._frozen:
            raise TypeError("arena store views are read-only; mutate the "
                            "substrate by rebuilding the arena")

    def insert(self, point: Sequence[float]) -> None:
        self._writable()
        if len(point) != self.dims:
            raise ValueError(f"expected {self.dims}-d point, got {len(point)}-d")
        self._reserve(1)
        self._buf[self._size] = point
        self._size += 1
        self._invalidate()

    def bulk_load(self, array: np.ndarray) -> None:
        self._writable()
        array = np.asarray(array, dtype=float)
        if array.ndim != 2 or array.shape[1] != self.dims:
            raise ValueError(f"expected (m, {self.dims}) array, got {array.shape}")
        self._reserve(len(array))
        self._buf[self._size : self._size + len(array)] = array
        self._size += len(array)
        self._invalidate()

    def extract(self, rect: Rect) -> np.ndarray:
        """Remove and return all tuples inside ``rect`` (half-open).

        Used when a zone splits: the tuples of the new sibling zone move to
        the joining peer.
        """
        self._writable()
        live = self._buf[: self._size]
        inside = np.all((live >= rect.lo) & (live < rect.hi), axis=1)
        moved = live[inside].copy()
        kept = live[~inside]
        self._buf[: len(kept)] = kept
        self._size = len(kept)
        self._invalidate()
        return moved

    def take_all(self) -> np.ndarray:
        """Remove and return every tuple (zone merge on peer departure)."""
        self._writable()
        out = self._buf[: self._size].copy()
        self._size = 0
        self._invalidate()
        return out

    # -- scans --------------------------------------------------------------

    def iter_points(self) -> Iterator[Point]:
        for row in self.array:
            yield as_point(row)

    def top_scoring(
        self,
        fn: ScoringFunction,
        limit: int,
        *,
        above: float = -np.inf,
    ) -> list[tuple[float, Point]]:
        """Up to ``limit`` best local tuples with score >= ``above``.

        Returns ``(score, tuple)`` pairs in descending score order — the
        local retrieval primitive of Algorithm 4.  Backed by the cached
        score index, so repeated scans under the same scoring function
        (local state *and* local answer of one query, or many queries of a
        sweep) reduce the array exactly once per store version.
        """
        if self._size == 0 or limit <= 0:
            return []
        scores, order, sorted_desc = self._score_index(fn)
        # Entries scoring >= above form a prefix of the descending order.
        cut = int(np.searchsorted(-sorted_desc, -above, side="right"))
        if cut == 0:
            return []
        return [(float(scores[i]), as_point(self._buf[i]))
                for i in order[: min(cut, limit)]]

    def scoring_at_least(self, fn: ScoringFunction, tau: float) -> list[Point]:
        """Every local tuple with score >= ``tau`` (Algorithm 6)."""
        if self._size == 0:
            return []
        scores, _, _ = self._score_index(fn)
        return [as_point(self._buf[i]) for i in np.flatnonzero(scores >= tau)]


class Replica:
    """A version-stamped mirror of another peer's :class:`LocalStore`.

    ``owner_id`` names the peer whose tuples are mirrored; ``store`` is a
    private copy (so queries served from the replica get the full store
    API — kernels, score index, computation cache — without touching the
    owner), and ``version`` records the owner-store version the snapshot
    reflects.  :meth:`refresh` models the owner pushing updates to its
    replica holders while alive: it re-snapshots only when the owner's
    version moved, making maintenance free on static networks.
    """

    __slots__ = ("owner_id", "store", "version")

    def __init__(self, owner_id: Hashable, owner_store: LocalStore) -> None:
        self.owner_id = owner_id
        self.store = LocalStore(owner_store.dims)
        self.version: int = -1
        self.refresh(owner_store)

    def refresh(self, owner_store: LocalStore) -> bool:
        """Re-snapshot from the owner if it mutated; True when copied."""
        if owner_store.version == self.version \
                and owner_store.dims == self.store.dims:
            return False
        self.store = LocalStore(owner_store.dims)
        if len(owner_store):
            self.store.bulk_load(owner_store.array)
        self.version = owner_store.version
        return True

    def __repr__(self) -> str:
        return (f"Replica(owner={self.owner_id!r}, tuples={len(self.store)}, "
                f"version={self.version})")
