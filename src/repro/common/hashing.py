"""Deterministic integer mixing.

The simulator must be reproducible across processes, so anywhere a peer
makes a "random but stable" choice (e.g. which peer inside a sibling
subtree to link to) we derive it from a splitmix64-style mix of structural
integers instead of Python's per-process ``hash``.

:func:`mix_array` is the batched form: it evaluates :func:`mix` over
whole NumPy arrays of operands at once (64-bit wraparound arithmetic on
``uint64``), producing bit-identical values — the arena builders use it
to resolve millions of link-target descents without a Python-level loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - scalar helpers stay NumPy-free
    import numpy as np

__all__ = ["mix", "mix_array", "path_key"]

_MASK = (1 << 64) - 1


def mix(*values: int) -> int:
    """Mix any number of integers into a well-scrambled 64-bit value."""
    acc = 0x9E3779B97F4A7C15
    for value in values:
        acc = (acc + (value & _MASK) + 0x9E3779B97F4A7C15) & _MASK
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _MASK
        acc ^= acc >> 31
    return acc


def mix_array(*values: "int | np.ndarray") -> "np.ndarray":
    """Vectorized :func:`mix`: each operand is a scalar or a ``uint64`` array.

    Operands broadcast against each other; the result equals
    ``[mix(*row) for row in zip(*broadcast(values))]`` bit for bit, but is
    computed with a constant number of NumPy operations per operand.  All
    arithmetic is modulo ``2**64`` (``uint64`` wraparound), exactly like
    the masked Python-integer arithmetic of the scalar form.
    """
    import numpy as np

    with np.errstate(over="ignore"):
        acc = np.asarray(np.uint64(0x9E3779B97F4A7C15))
        golden = np.uint64(0x9E3779B97F4A7C15)
        m1 = np.uint64(0xBF58476D1CE4E5B9)
        m2 = np.uint64(0x94D049BB133111EB)
        for value in values:
            operand = np.asarray(value).astype(np.uint64)
            acc = acc + operand + golden
            acc = acc ^ (acc >> np.uint64(30))
            acc = acc * m1
            acc = acc ^ (acc >> np.uint64(27))
            acc = acc * m2
            acc = acc ^ (acc >> np.uint64(31))
    return acc


def path_key(path: tuple[int, ...]) -> int:
    """A unique integer for a binary tree path (1-prefixed bit string)."""
    key = 1
    for bit in path:
        key = (key << 1) | bit
    return key
