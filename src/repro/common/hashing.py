"""Deterministic integer mixing.

The simulator must be reproducible across processes, so anywhere a peer
makes a "random but stable" choice (e.g. which peer inside a sibling
subtree to link to) we derive it from a splitmix64-style mix of structural
integers instead of Python's per-process ``hash``.
"""

from __future__ import annotations

__all__ = ["mix", "path_key"]

_MASK = (1 << 64) - 1


def mix(*values: int) -> int:
    """Mix any number of integers into a well-scrambled 64-bit value."""
    acc = 0x9E3779B97F4A7C15
    for value in values:
        acc = (acc + (value & _MASK) + 0x9E3779B97F4A7C15) & _MASK
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _MASK
        acc ^= acc >> 31
    return acc


def path_key(path: tuple[int, ...]) -> int:
    """A unique integer for a binary tree path (1-prefixed bit string)."""
    key = 1
    for bit in path:
        key = (key << 1) | bit
    return key
