"""Geometric primitives shared by every overlay and query handler.

The domain of a RIPPLE deployment is the unit hyper-rectangle ``[0, 1]^d``
(any axis-aligned box works).  Overlays carve the domain into *zones* (one
per peer) and, from each peer's viewpoint, into *regions* (one per link).
Query handlers never look at remote tuples directly; they reason about
regions through the bound helpers defined here:

* :func:`mindist` / :func:`maxdist` — distance bounds between a point and a
  box, used by the diversification lower bound ``phi^-``.
* :func:`dominates` / :meth:`Rect.dominated_by` — Pareto dominance between
  points and of a whole box by a point, used by skyline pruning.
* :meth:`Rect.corner` — the corner maximizing a monotone scoring function,
  used by the top-k upper bound ``f^+``.

All coordinates are plain Python floats held in tuples, which keeps regions
hashable, cheap to copy across simulated "messages", and independent from
the NumPy arrays used *inside* peers for bulk scans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - geometry stays NumPy-free at runtime
    import numpy as np

Point = tuple[float, ...]

__all__ = [
    "Point",
    "Rect",
    "Interval",
    "Frustum",
    "as_point",
    "minkowski_distance",
    "l1_distance",
    "l2_distance",
    "linf_distance",
    "mindist",
    "maxdist",
    "mindist_batch",
    "dominates",
    "contains_batch",
]


def as_point(values: Iterable[float]) -> Point:
    """Coerce an iterable of coordinates into a canonical ``Point`` tuple."""
    return tuple(float(v) for v in values)


# ---------------------------------------------------------------------------
# Distances
# ---------------------------------------------------------------------------

def minkowski_distance(a: Sequence[float], b: Sequence[float], p: float) -> float:
    """The L_p distance between two points of equal dimensionality."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    if p == 1:
        return sum(abs(x - y) for x, y in zip(a, b))
    if p == 2:
        return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))
    if math.isinf(p):
        return max(abs(x - y) for x, y in zip(a, b))
    return sum(abs(x - y) ** p for x, y in zip(a, b)) ** (1.0 / p)


def l1_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Manhattan distance; the metric the paper uses for MIRFLICKR."""
    return minkowski_distance(a, b, 1)


def l2_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance."""
    return minkowski_distance(a, b, 2)


def linf_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Chebyshev distance."""
    return minkowski_distance(a, b, math.inf)


# ---------------------------------------------------------------------------
# Pareto dominance
# ---------------------------------------------------------------------------

def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (lower values are better).

    ``a`` dominates ``b`` when it is no worse on every dimension and
    strictly better on at least one (Section 5.1 of the paper).
    """
    strictly_better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


# ---------------------------------------------------------------------------
# Axis-aligned rectangles
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned box ``[lo_i, hi_i]`` per dimension.

    ``Rect`` doubles as the *zone* of a peer and as the *region* of a link
    in tree-structured overlays (MIDAS), where sibling subtrees correspond
    to boxes.  Zones tile the domain half-open (a point on a shared face
    belongs to the zone with the lower coordinates, see :meth:`contains`),
    while bound computations treat boxes as closed, which is the
    conservative direction for pruning.
    """

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo/hi dimensionality mismatch")
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty rectangle: lo={self.lo} hi={self.hi}")

    @classmethod
    def unit(cls, dims: int) -> "Rect":
        """The unit domain ``[0, 1]^dims``."""
        return cls((0.0,) * dims, (1.0,) * dims)

    @property
    def dims(self) -> int:
        return len(self.lo)

    @property
    def center(self) -> Point:
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def volume(self) -> float:
        out = 1.0
        for l, h in zip(self.lo, self.hi):
            out *= h - l
        return out

    def extent(self, dim: int) -> float:
        return self.hi[dim] - self.lo[dim]

    def contains(self, point: Sequence[float], *, closed: bool = False) -> bool:
        """Half-open membership test (closed on the domain's upper faces).

        Half-open semantics (``lo_i <= p_i < hi_i``) make sibling zones a
        partition: every domain point belongs to exactly one zone.  Pass
        ``closed=True`` for the conservative closed-box test used when
        pruning.
        """
        if closed:
            return all(l <= p <= h for p, l, h in zip(point, self.lo, self.hi))
        return all(l <= p < h for p, l, h in zip(point, self.lo, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        return all(sl <= ol and oh <= sh
                   for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi))

    def intersects(self, other: "Rect") -> bool:
        """True when the closed boxes share at least a face point."""
        return all(sl <= oh and ol <= sh
                   for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi))

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping box, or ``None`` when the interiors are disjoint.

        Degenerate (zero-volume) overlaps count as empty: two zones that
        merely abut do not share any half-open domain point.
        """
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l >= h for l, h in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def split(self, dim: int, value: float) -> tuple["Rect", "Rect"]:
        """Split along ``dim`` at ``value`` into (lower, upper) halves."""
        if not self.lo[dim] < value < self.hi[dim]:
            raise ValueError(
                f"split value {value} outside ({self.lo[dim]}, {self.hi[dim]})")
        lo_hi = tuple(value if i == dim else h for i, h in enumerate(self.hi))
        hi_lo = tuple(value if i == dim else l for i, l in enumerate(self.lo))
        return Rect(self.lo, lo_hi), Rect(hi_lo, self.hi)

    def corner(self, maximize: Sequence[bool]) -> Point:
        """The corner picking ``hi`` where ``maximize[i]`` else ``lo``.

        A monotone scoring function attains its box-wide extremum at a
        corner, which yields the paper's ``f^+`` upper bound.
        """
        return tuple(h if m else l
                     for l, h, m in zip(self.lo, self.hi, maximize))

    def clamp(self, point: Sequence[float]) -> Point:
        """The closest point of the box to ``point``."""
        return tuple(min(max(p, l), h)
                     for p, l, h in zip(point, self.lo, self.hi))

    def dominated_by(self, point: Sequence[float]) -> bool:
        """True iff ``point`` dominates *every* tuple that could lie here.

        Equivalent to ``point`` dominating the box's most preferable corner
        ``lo`` (lower values are better), the test of Algorithm 14.
        """
        return dominates(point, self.lo)

    def sample(self, rng: "np.random.Generator") -> Point:
        """A uniform random point of the box (``rng``: numpy Generator)."""
        return tuple(float(rng.uniform(l, h)) for l, h in zip(self.lo, self.hi))


def mindist(point: Sequence[float], rect: Rect, p: float = 2) -> float:
    """Minimum L_p distance from ``point`` to any point of ``rect``."""
    return minkowski_distance(point, rect.clamp(point), p)


def maxdist(point: Sequence[float], rect: Rect, p: float = 2) -> float:
    """Maximum L_p distance from ``point`` to any point of ``rect``."""
    farthest = tuple(l if abs(q - l) >= abs(q - h) else h
                     for q, l, h in zip(point, rect.lo, rect.hi))
    return minkowski_distance(point, farthest, p)


# ---------------------------------------------------------------------------
# Batched box tests (the wavefront / arena hot path)
# ---------------------------------------------------------------------------
#
# The scalar helpers above are per-hop primitives: one point, one box.  A
# batched wavefront evaluates them for every tuple (or every link) touched
# in one expansion wave, so the arena kernels consume array forms.  Both
# accept per-row bounds — ``lo``/``hi`` broadcast against ``points`` — and
# reproduce the scalar results exactly (same comparisons, no re-ordering
# of floating-point work).

def contains_batch(points: "np.ndarray", lo: "np.ndarray", hi: "np.ndarray",
                   *, closed: bool = False) -> "np.ndarray":
    """Vectorized :meth:`Rect.contains`: one boolean per row of ``points``.

    ``points`` is ``(m, d)``; ``lo``/``hi`` are ``(d,)`` (one box for all
    rows) or ``(m, d)`` (a box per row).  Matches the scalar test bit for
    bit: half-open ``lo <= p < hi`` by default, closed boxes with
    ``closed=True``.
    """
    import numpy as np

    points = np.asarray(points, dtype=float)
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    upper = points <= hi if closed else points < hi
    return np.logical_and(points >= lo, upper).all(axis=-1)


def mindist_batch(point: Sequence[float], lo: "np.ndarray",
                  hi: "np.ndarray", p: float = 2) -> "np.ndarray":
    """Vectorized :func:`mindist` from one ``point`` to many boxes.

    ``lo``/``hi`` are ``(m, d)`` stacked box bounds; returns the ``(m,)``
    minimum L_p distances.  The clamp is computed exactly like
    :meth:`Rect.clamp` (min/max per coordinate), so for the metrics the
    handlers use (``p`` in {1, 2, inf}) each row is bit-identical to the
    scalar ``mindist(point, Rect(lo[i], hi[i]), p)``; for other ``p`` the
    vectorized ``x ** (1/p)`` root may differ from libm by one ulp.
    """
    import numpy as np

    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    q = np.asarray(tuple(float(v) for v in point))
    delta = np.abs(np.minimum(np.maximum(q, lo), hi) - q)
    if p == 1:
        return delta.sum(axis=-1)
    if math.isinf(p):
        return delta.max(axis=-1)
    if p == 2:
        return np.sqrt((delta * delta).sum(axis=-1))
    return (delta ** p).sum(axis=-1) ** (1.0 / p)


# ---------------------------------------------------------------------------
# Ring intervals (Chord regions)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open arc ``[start, end)`` on the unit ring ``[0, 1)``.

    Chord keys live on a ring, so an interval may *wrap* around 1.0
    (``start > end``).  ``start == end`` denotes the full ring, which is
    what a single-peer network's sole region covers.
    """

    start: float
    end: float

    @property
    def wraps(self) -> bool:
        return self.start > self.end

    def length(self) -> float:
        if self.start == self.end:
            return 1.0
        if self.wraps:
            return 1.0 - self.start + self.end
        return self.end - self.start

    def contains(self, key: float) -> bool:
        key %= 1.0
        if self.start == self.end:
            return True
        if self.wraps:
            return key >= self.start or key < self.end
        return self.start <= key < self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlap arc, or ``None``; assumes at most one overlap run.

        Chord restriction areas shrink monotonically along a query path, so
        one of the two arcs always contains an endpoint of the other and
        the overlap is a single arc; a double overlap cannot arise there.
        """
        if self.start == self.end:
            return other
        if other.start == other.end:
            return self
        for candidate_start in (self.start, other.start):
            if self.contains(candidate_start) and other.contains(candidate_start):
                remaining = []
                for arc in (self, other):
                    span = (arc.end - candidate_start) % 1.0
                    if span == 0.0 and arc.contains(candidate_start):
                        span = arc.length()
                    remaining.append(span)
                length = min(remaining)
                if length <= 0.0:
                    continue
                return Interval(candidate_start, (candidate_start + length) % 1.0)
        return None


# ---------------------------------------------------------------------------
# Frustum regions (CAN)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Frustum:
    """A pyramidal frustum between a slice of a domain face and a zone face.

    Section 3.1 assigns to each CAN neighbor the frustum whose *top* is the
    shared face between the peer's zone and that neighbor, and whose *base*
    is the corresponding slice of the domain boundary face (a trapezoid in
    2-d).  The frustum extends along ``axis`` from ``base_coord`` (on the
    domain boundary) to ``top_coord`` (the zone face); its cross-section
    interpolates linearly between ``base`` and ``top`` boxes over the
    remaining dimensions.

    ``base``/``top`` are full-dimensional :class:`Rect` objects that are
    flat along ``axis`` — this keeps all bound computations reusable.
    """

    axis: int
    base: Rect
    top: Rect

    @property
    def dims(self) -> int:
        return self.base.dims

    @property
    def base_coord(self) -> float:
        return self.base.lo[self.axis]

    @property
    def top_coord(self) -> float:
        return self.top.lo[self.axis]

    def bounding_box(self) -> Rect:
        """The tight axis-aligned hull, used for conservative pruning."""
        lo = tuple(min(a, b) for a, b in zip(self.base.lo, self.top.lo))
        hi = tuple(max(a, b) for a, b in zip(self.base.hi, self.top.hi))
        return Rect(lo, hi)

    def contains(self, point: Sequence[float]) -> bool:
        """Exact membership via linear interpolation of the cross-section."""
        lo_a, hi_a = sorted((self.base_coord, self.top_coord))
        coord = point[self.axis]
        if not lo_a <= coord <= hi_a:
            return False
        span = self.top_coord - self.base_coord
        t = 0.0 if span == 0.0 else (coord - self.base_coord) / span
        for dim in range(self.dims):
            if dim == self.axis:
                continue
            lo = self.base.lo[dim] + t * (self.top.lo[dim] - self.base.lo[dim])
            hi = self.base.hi[dim] + t * (self.top.hi[dim] - self.base.hi[dim])
            if not lo <= point[dim] <= hi:
                return False
        return True
