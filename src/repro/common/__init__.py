"""Shared substrate: geometry, scoring, storage, deterministic hashing."""

from .geometry import (Frustum, Interval, Point, Rect, dominates,
                       l1_distance, l2_distance, linf_distance, maxdist,
                       mindist, minkowski_distance)
from .hashing import mix, path_key
from .scoring import LinearScore, NearestScore, ScoringFunction
from .store import LocalStore

__all__ = [
    "Frustum", "Interval", "LinearScore", "LocalStore", "NearestScore",
    "Point", "Rect", "ScoringFunction", "dominates", "l1_distance",
    "l2_distance", "linf_distance", "maxdist", "mindist",
    "minkowski_distance", "mix", "path_key",
]
