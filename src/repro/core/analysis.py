"""Worst-case latency analysis of RIPPLE over MIDAS (Section 3.2).

With MIDAS underneath, restriction areas are subtrees, so worst-case
latency is a function of the subtree depth ``delta`` and the ripple
parameter ``r`` (Lemmas 1-3):

* ``fast``  (Lemma 1):  ``L_f(delta) = Delta - delta``
* ``slow``  (Lemma 2):  ``L_s(delta) = 2**(Delta - delta) - 1``
* ``ripple``(Lemma 3):  ``L_r(delta, r) = sum_{l=delta+1..Delta}
  (1 + L_r(l, r - 1))`` with ``L_r(delta, 0) = Delta - delta`` and
  ``L_r(Delta, r) = 0``.

The paper reports closed forms for ``r = 1, 2, 3`` and conjectures
``L_r(delta, r) = O((Delta - delta)**(r + 1))``.  This module evaluates
the recurrence exactly; the test-suite checks it against both the closed
forms and latencies measured on complete overlays with pruning disabled.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "fast_latency",
    "slow_latency",
    "ripple_latency",
    "ripple_latency_closed_form",
]


def fast_latency(depth: int, delta: int = 0) -> int:
    """Lemma 1: worst-case latency of Algorithm 1 within a subtree."""
    _validate(depth, delta)
    return depth - delta


def slow_latency(depth: int, delta: int = 0) -> int:
    """Lemma 2: worst-case latency of Algorithm 2 within a subtree."""
    _validate(depth, delta)
    return 2 ** (depth - delta) - 1


def ripple_latency(depth: int, r: int, delta: int = 0) -> int:
    """Lemma 3: worst-case latency of Algorithm 3, evaluated exactly."""
    _validate(depth, delta)
    if r < 0:
        raise ValueError("r must be non-negative")

    @lru_cache(maxsize=None)
    def recurse(d: int, rr: int) -> int:
        if d == depth:
            return 0
        if rr == 0:
            return depth - d
        return sum(1 + recurse(level, rr - 1)
                   for level in range(d + 1, depth + 1))

    return recurse(delta, r)


def ripple_latency_closed_form(depth: int, r: int, delta: int = 0) -> float:
    """Closed forms of Lemma 3's recurrence for ``r in {1, 2, 3}``.

    For ``r = 1`` this is the paper's printed polynomial.  The paper's
    printed polynomials for ``r = 2, 3`` do not satisfy its own recurrence
    as stated — they equal the correct polynomial evaluated at ``x - 1``
    (an index slip; e.g. the paper gives ``L_r(delta, 2) = 1`` for
    ``Delta - delta = 2`` while the recurrence yields 3).  The forms below
    are re-derived by telescoping the recurrence and are verified against
    it exactly in the test-suite.  All are ``Theta(x**(r+1))``, supporting
    the paper's ``O(log^r n)`` conjecture either way.
    """
    _validate(depth, delta)
    x = depth - delta
    if r == 1:
        return x * (x + 1) / 2
    if r == 2:
        return (x ** 3 + 5 * x) / 6
    if r == 3:
        return x + x ** 2 * (x - 1) ** 2 / 24 + 5 * x * (x - 1) / 12
    raise ValueError(f"no closed form given for r={r}")


def _validate(depth: int, delta: int) -> None:
    if depth < 0 or not 0 <= delta <= depth:
        raise ValueError(f"need 0 <= delta <= depth, got {delta}, {depth}")
