"""Region abstraction used by the RIPPLE templates.

Section 3.1: each peer associates a *region* with every link such that (i)
a link's region covers the linked peer's zone and (ii) the regions of all
links partition the domain.  The framework needs exactly two operations on
regions, kept overlay-agnostic here:

* intersecting a region with the current *restriction area* ``R`` (which is
  itself a region), to confine forwarded queries — :meth:`Region.intersect`;
* bounding what tuples the region could contain, for pruning and for link
  prioritization.  Handlers consume a conservative *cover* of axis-aligned
  rectangles — :meth:`Region.cover` — so every query-specific bound
  (``f^+``, dominance, ``phi^-``) reduces to per-rectangle geometry.

Concrete shapes: :class:`RectRegion` (MIDAS sibling subtrees, and the whole
domain), :class:`ArcRegion` (Chord finger arcs over the 1-d ring), and
:class:`FrustumRegion` / :class:`FrustumIntersection` (CAN pyramidal
frustums, whose restriction chains are represented exactly but covered by
bounding boxes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..common.geometry import Frustum, Interval, Rect

__all__ = [
    "Region",
    "RectRegion",
    "ArcRegion",
    "FrustumRegion",
    "FrustumIntersection",
    "domain_region",
    "region_volume",
]


class Region(ABC):
    """A (possibly non-rectangular) area of the domain."""

    #: True when :meth:`cover` is exact (the union of the cover equals the
    #: region).  Overlays whose regions are only covered approximately must
    #: run the framework in non-strict visit mode.
    exact: bool = True

    @abstractmethod
    def intersect(self, other: "Region") -> "Region | None":
        """The overlap with ``other``, or None when (provably) empty."""

    @abstractmethod
    def cover(self) -> tuple[Rect, ...]:
        """Axis-aligned rectangles whose union contains the region."""

    @abstractmethod
    def contains(self, point: Sequence[float]) -> bool:
        """Exact point membership; drives greedy DHT routing."""


@dataclass(frozen=True)
class RectRegion(Region):
    """An axis-aligned box region (MIDAS subtrees nest, so intersections
    of live regions are again boxes)."""

    rect: Rect

    def intersect(self, other: Region) -> Region | None:
        if isinstance(other, RectRegion):
            overlap = self.rect.intersection(other.rect)
            return None if overlap is None else RectRegion(overlap)
        return other.intersect(self)

    def cover(self) -> tuple[Rect, ...]:
        return (self.rect,)

    def contains(self, point: Sequence[float]) -> bool:
        return self.rect.contains(point)


def domain_region(dims: int) -> RectRegion:
    """The unrestricted restriction area: the whole unit domain."""
    return RectRegion(Rect.unit(dims))


def region_volume(region: Region) -> float:
    """Volume of a region via its rectangle cover.

    Exact for rectangular and arc regions (their covers tile the region);
    an over-estimate for frustums (bounding boxes), which makes volume
    accounting — e.g. the fault engine's completeness metric — merely
    conservative there.
    """
    return sum(rect.volume() for rect in region.cover())


@dataclass(frozen=True)
class ArcRegion(Region):
    """A Chord region: a union of disjoint arcs of the unit key ring.

    A single finger region is one arc, but restriction areas shrink by
    intersection, and two ring arcs can overlap in *two* disjoint runs
    (when one of them wraps past 1.0), so the general shape is a small
    set of arcs.  Internally every arc is normalized to non-wrapping
    half-open pieces ``[start, end)`` with ``end <= 1``.
    """

    pieces: tuple[tuple[float, float], ...]

    @classmethod
    def from_interval(cls, interval: Interval) -> "ArcRegion":
        return cls(_normalize_arc(interval.start, interval.end))

    def intersect(self, other: Region) -> Region | None:
        if isinstance(other, RectRegion):
            if other.rect.dims != 1:
                raise TypeError("arc regions live on a 1-d ring")
            other = ArcRegion(((other.rect.lo[0], min(other.rect.hi[0],
                                                      1.0)),))
        if not isinstance(other, ArcRegion):
            raise TypeError(
                f"cannot intersect arc with {type(other).__name__}")
        pieces = []
        for lo_a, hi_a in self.pieces:
            for lo_b, hi_b in other.pieces:
                lo, hi = max(lo_a, lo_b), min(hi_a, hi_b)
                if lo < hi:
                    pieces.append((lo, hi))
        if not pieces:
            return None
        return ArcRegion(tuple(sorted(pieces)))

    def cover(self) -> tuple[Rect, ...]:
        return tuple(Rect((lo,), (hi,)) for lo, hi in self.pieces)

    def contains(self, point: Sequence[float]) -> bool:
        key = point[0] % 1.0
        return any(lo <= key < hi for lo, hi in self.pieces)

    def length(self) -> float:
        return sum(hi - lo for lo, hi in self.pieces)


def _normalize_arc(start: float, end: float
                   ) -> tuple[tuple[float, float], ...]:
    """Split a ring arc ``[start, end)`` into non-wrapping pieces."""
    start %= 1.0
    end %= 1.0
    if start == end:
        return ((0.0, 1.0),)
    if start < end:
        return ((start, end),)
    pieces = []
    if start < 1.0:
        pieces.append((start, 1.0))
    if end > 0.0:
        pieces.append((0.0, end))
    return tuple(pieces)


@dataclass(frozen=True)
class FrustumRegion(Region):
    """A CAN neighbor region: a pyramidal frustum (Section 3.1).

    Membership is exact (:meth:`Frustum.contains`) but the cover is the
    frustum's bounding box, so pruning is conservative and the framework
    must dedup re-visits instead of asserting single visits.
    """

    frustum: Frustum
    exact = False

    def intersect(self, other: Region) -> Region | None:
        if isinstance(other, RectRegion):
            box = self.frustum.bounding_box().intersection(other.rect)
            if box is None:
                return None
            if other.rect.contains_rect(self.frustum.bounding_box()):
                return self
            return FrustumIntersection((self.frustum,), box)
        if isinstance(other, FrustumRegion):
            return self.intersect(
                FrustumIntersection((other.frustum,), other.frustum.bounding_box()))
        if isinstance(other, FrustumIntersection):
            box = self.frustum.bounding_box().intersection(other.box)
            if box is None:
                return None
            return FrustumIntersection(other.frustums + (self.frustum,), box)
        raise TypeError(f"cannot intersect frustum with {type(other).__name__}")

    def cover(self) -> tuple[Rect, ...]:
        return (self.frustum.bounding_box(),)

    def contains(self, point: Sequence[float]) -> bool:
        return self.frustum.contains(point)


@dataclass(frozen=True)
class FrustumIntersection(Region):
    """A chain of frustum constraints with a cached bounding box.

    Restriction areas along a CAN query path are intersections of the
    frustums of every hop; the chain keeps membership exact while the
    bounding box keeps bound computations cheap.
    """

    frustums: tuple[Frustum, ...]
    box: Rect
    exact = False

    def intersect(self, other: Region) -> Region | None:
        if isinstance(other, RectRegion):
            box = self.box.intersection(other.rect)
            if box is None:
                return None
            return FrustumIntersection(self.frustums, box)
        if isinstance(other, (FrustumRegion, FrustumIntersection)):
            return other.intersect(self) if isinstance(other, FrustumRegion) else \
                self._merge(other)
        raise TypeError(
            f"cannot intersect frustum chain with {type(other).__name__}")

    def _merge(self, other: "FrustumIntersection") -> "Region | None":
        box = self.box.intersection(other.box)
        if box is None:
            return None
        return FrustumIntersection(self.frustums + other.frustums, box)

    def cover(self) -> tuple[Rect, ...]:
        return (self.box,)

    def contains(self, point: Sequence[float]) -> bool:
        return (self.box.contains(point, closed=True)
                and all(f.contains(point) for f in self.frustums))
